# Convenience targets for the verfploeter reproduction.

.PHONY: install test lint lint-cold lint-sarif bench bench-delta bench-columnar bench-obs bench-sharded bench-sharded-smoke bench-playbook docs examples report serve-smoke all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	PYTHONPATH=src python -m pytest tests/

lint:
	PYTHONPATH=src python -m repro.lint src tests benchmarks examples tools

# Cold lint: drop the incremental cache first, then relint everything.
lint-cold:
	rm -rf .reprolint_cache
	PYTHONPATH=src python -m repro.lint src tests benchmarks examples tools

# Machine-readable lint report for CI upload.
lint-sarif:
	PYTHONPATH=src python -m repro.lint src tests benchmarks examples tools --format=sarif --output=reprolint.sarif

bench:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only

bench-verbose:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s

# Regenerate the incremental-propagation perf baseline (BENCH_delta_routing.json).
bench-delta:
	PYTHONPATH=src python -m pytest benchmarks/bench_extension_delta_routing.py --benchmark-only -s

# Regenerate the columnar-results perf baseline (BENCH_columnar_scan.json).
bench-columnar:
	PYTHONPATH=src python -m pytest benchmarks/bench_extension_columnar_scan.py --benchmark-only -s

# Regenerate the observability-overhead baseline (BENCH_observability.json).
bench-obs:
	PYTHONPATH=src python -m pytest benchmarks/bench_extension_observability.py --benchmark-only -s

# Regenerate the sharded-scan perf baseline (BENCH_sharded_scan.json):
# the full million-block xlarge series.  Slow (builds a 1.4M-block
# topology); the smoke variant below runs in `make bench` and CI.
bench-sharded:
	REPRO_SHARDED_BENCH=full PYTHONPATH=src python -m pytest benchmarks/bench_extension_sharded_scan.py --benchmark-only -s

# Small-scale variant: two sharded series on one persistent ShardPool
# plus the pooled load join, all asserted bit-identical.
bench-sharded-smoke:
	PYTHONPATH=src python -m pytest benchmarks/bench_extension_sharded_scan.py --benchmark-only -s

# Regenerate the playbook-search perf baseline (BENCH_playbook.json):
# cache-accelerated search vs scratch, artifacts asserted byte-identical.
bench-playbook:
	PYTHONPATH=src python -m pytest benchmarks/bench_extension_playbook.py --benchmark-only -s

# Documentation gate: every intra-repo markdown link resolves, and the
# README quickstart (observer included) still runs end to end.
docs:
	python tools/checkdocs.py
	PYTHONPATH=src python examples/quickstart.py > /dev/null

examples:
	for script in examples/*.py; do echo "== $$script"; PYTHONPATH=src python $$script > /dev/null || exit 1; done

report:
	PYTHONPATH=src python -m repro paper --scenario broot --scale small --outdir repro-report

# Boot two same-seed mapping daemons, query every /v1 endpoint over
# real HTTP, and require byte-identical data responses.
serve-smoke:
	PYTHONPATH=src python tools/serve_smoke.py

all: lint docs test serve-smoke bench
