# Convenience targets for the verfploeter reproduction.

.PHONY: install test bench examples report all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script > /dev/null || exit 1; done

report:
	python -m repro paper --scenario broot --scale small --outdir repro-report

all: test bench
