# Convenience targets for the verfploeter reproduction.

.PHONY: install test lint bench bench-delta bench-columnar examples report all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

lint:
	PYTHONPATH=src python -m repro.lint src tests benchmarks examples

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

# Regenerate the incremental-propagation perf baseline (BENCH_delta_routing.json).
bench-delta:
	pytest benchmarks/bench_extension_delta_routing.py --benchmark-only -s

# Regenerate the columnar-results perf baseline (BENCH_columnar_scan.json).
bench-columnar:
	pytest benchmarks/bench_extension_columnar_scan.py --benchmark-only -s

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script > /dev/null || exit 1; done

report:
	python -m repro paper --scenario broot --scale small --outdir repro-report

all: lint test bench
