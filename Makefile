# Convenience targets for the verfploeter reproduction.

.PHONY: install test lint bench bench-delta bench-columnar bench-obs docs examples report all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

lint:
	PYTHONPATH=src python -m repro.lint src tests benchmarks examples

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

# Regenerate the incremental-propagation perf baseline (BENCH_delta_routing.json).
bench-delta:
	pytest benchmarks/bench_extension_delta_routing.py --benchmark-only -s

# Regenerate the columnar-results perf baseline (BENCH_columnar_scan.json).
bench-columnar:
	pytest benchmarks/bench_extension_columnar_scan.py --benchmark-only -s

# Regenerate the observability-overhead baseline (BENCH_observability.json).
bench-obs:
	pytest benchmarks/bench_extension_observability.py --benchmark-only -s

# Documentation gate: every intra-repo markdown link resolves, and the
# README quickstart (observer included) still runs end to end.
docs:
	python tools/checkdocs.py
	PYTHONPATH=src python examples/quickstart.py > /dev/null

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script > /dev/null || exit 1; done

report:
	python -m repro paper --scenario broot --scale small --outdir repro-report

all: lint docs test bench
