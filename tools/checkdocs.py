#!/usr/bin/env python3
"""Check intra-repository links in the project's markdown documentation.

Scans the repo's markdown surface (``docs/*.md`` plus the top-level
pages) for ``[text](target)`` links, resolves every non-external target
against the file containing it, and exits 1 listing the dead ones.
External links (``http://``, ``https://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped; ``path#anchor`` targets are
checked for the file part only.  Stdlib-only: run as
``python tools/checkdocs.py`` (or ``make docs``).
"""

from __future__ import annotations

import glob
import os
import re
import sys
from typing import List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Top-level pages checked in addition to everything under docs/.
TOP_LEVEL_PAGES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CONTRIBUTING.md",
    "ROADMAP.md",
    "CHANGES.md",
)

#: Inline markdown links, excluding images; target is group 1.
LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]^\[]*\]\(([^)\s]+)\)")

EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def documentation_files() -> List[str]:
    """Every markdown file this checker covers, repo-relative, sorted."""
    paths = [
        page
        for page in TOP_LEVEL_PAGES
        if os.path.exists(os.path.join(REPO_ROOT, page))
    ]
    docs_glob = os.path.join(REPO_ROOT, "docs", "*.md")
    paths.extend(
        os.path.relpath(path, REPO_ROOT) for path in glob.glob(docs_glob)
    )
    return sorted(paths)


def check_file(relative_path: str) -> List[Tuple[int, str]]:
    """(line, target) pairs for every dead intra-repo link in one file."""
    absolute = os.path.join(REPO_ROOT, relative_path)
    base_dir = os.path.dirname(absolute)
    dead: List[Tuple[int, str]] = []
    with open(absolute, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            for match in LINK_PATTERN.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL_SCHEMES):
                    continue
                file_part = target.split("#", 1)[0]
                if not file_part:  # pure in-page anchor
                    continue
                if not os.path.exists(os.path.join(base_dir, file_part)):
                    dead.append((line_number, target))
    return dead


def main() -> int:
    """Check every documentation file; 0 clean, 1 with dead links."""
    files = documentation_files()
    total_links = 0
    failures = 0
    for relative_path in files:
        dead = check_file(relative_path)
        with open(
            os.path.join(REPO_ROOT, relative_path), "r", encoding="utf-8"
        ) as handle:
            total_links += sum(
                1 for line in handle for _ in LINK_PATTERN.finditer(line)
            )
        for line_number, target in dead:
            failures += 1
            print(f"{relative_path}:{line_number}: dead link -> {target}")
    print(
        f"checkdocs: {len(files)} files, {total_links} links, "
        f"{failures} dead"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
