#!/usr/bin/env python3
"""Smoke-test the always-on mapping service over real HTTP.

Boots two same-seed daemons on a tiny scenario, drives each through the
same simulated reply stream, queries every ``/v1`` endpoint through an
actual TCP socket (``urllib`` against the ephemeral port the server
bound), and asserts:

- every endpoint answers 200 with well-formed JSON (and the error
  paths answer structured 4xx);
- load fractions sum to 1.0 with the ``UNK`` bucket included;
- the two daemons' data-endpoint responses are **byte-identical** —
  the service determinism contract, end to end through the HTTP stack.

Stdlib + repro only.  Run as ``python tools/serve_smoke.py`` (or
``make serve-smoke``); exits non-zero with a message on any failure.
"""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.request
from typing import Dict, List, Tuple

import numpy as np

from repro.core.scenarios import broot_like
from repro.core.verfploeter import Verfploeter
from repro.load.estimator import LoadEstimate
from repro.obs import Observer
from repro.service import MappingService, MeasurementState, replay_feed

ROUNDS = 3
ENDPOINTS = (
    "/v1/health",
    "/v1/load",
    "/v1/diff?rounds=1",
    "/v1/metrics",
)

#: Data endpoints that must be byte-identical across same-seed daemons
#: (health/metrics carry run-local counters like request tallies).
DETERMINISTIC_ENDPOINTS = (
    "/v1/load",
    "/v1/diff?rounds=1",
)


def boot_daemon() -> Tuple[MappingService, str, int]:
    """One fully ingested daemon on an ephemeral loopback port."""
    scenario = broot_like(scale="tiny", seed=7)
    observer = Observer.collecting()
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    routing = verfploeter.routing_for()
    estimate = LoadEstimate(scenario.day_load("smoke-day"))
    universe = np.array(verfploeter.hitlist.blocks, dtype=np.uint64)
    state = MeasurementState(
        routing.policy.site_codes,
        universe,
        estimate,
        window_rounds=2,
        ring_size=4,
        observer=observer,
    )
    feed = replay_feed(
        verfploeter, routing=routing, rounds=ROUNDS, batch_size=64
    )
    service = MappingService(state, feed, observer=observer)
    host, port = service.serve_http()
    service.ingest()
    return service, host, port


def fetch(host: str, port: int, path: str) -> Tuple[int, bytes]:
    """GET one path over real HTTP; returns (status, body bytes)."""
    url = f"http://{host}:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def main() -> int:
    """Run the smoke; returns a process exit code."""
    daemons = [boot_daemon() for _ in range(2)]
    failures: List[str] = []
    responses: List[Dict[str, bytes]] = []
    try:
        for service, host, port in daemons:
            bodies: Dict[str, bytes] = {}
            for path in ENDPOINTS:
                status, body = fetch(host, port, path)
                document = json.loads(body)
                if status != 200:
                    failures.append(f"{path}: expected 200, got {status}")
                    continue
                bodies[path] = body
                if path == "/v1/load":
                    shares = document["window"]["fractions"]
                    total = sum(shares.values())
                    if abs(total - 1.0) > 1e-9:
                        failures.append(
                            f"/v1/load fractions sum to {total!r}, not 1.0"
                        )
                    if "UNK" not in shares:
                        failures.append("/v1/load fractions missing UNK")
            # One mapped block fetched through the path parameter.
            status, body = fetch(host, port, "/v1/diff?rounds=1")
            sample = json.loads(body)["stable"]
            if sample < 1:
                failures.append("diff reports no stable blocks on a tiny run")
            for path, expect in (
                ("/v1/catchment/not-a-block", 400),
                ("/v1/diff?rounds=0", 400),
                ("/v1/diff?rounds=99", 400),
                ("/v1/nothing-here", 404),
            ):
                status, _ = fetch(host, port, path)
                if status != expect:
                    failures.append(f"{path}: expected {expect}, got {status}")
            responses.append(bodies)
    finally:
        for service, _, _ in daemons:
            service.shutdown()
    for path in DETERMINISTIC_ENDPOINTS:
        if responses[0].get(path) != responses[1].get(path):
            failures.append(f"{path}: two same-seed daemons differ")
    if failures:
        for failure in failures:
            print(f"serve-smoke: FAIL: {failure}")
        return 1
    print(
        f"serve-smoke: OK ({ROUNDS} rounds x 2 daemons, "
        f"{len(ENDPOINTS)} endpoints, byte-identical data responses)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
