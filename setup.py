"""Legacy setuptools shim.

The offline environment has no ``wheel`` package, so PEP 517/660 builds
fail; this shim lets ``pip install -e . --no-build-isolation`` use the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
