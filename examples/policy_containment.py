#!/usr/bin/env python3
"""Do catchments respect borders?  (paper §1's opening motivation)

The paper opens with two incidents: the Beijing I-Root site whose
catchment expanded outside China (exporting national DNS policy), and a
Tehran K-Root site seen serving networks outside Iran.  This example
runs the containment analysis on the Tangled testbed: for each site
hosted in a policy-sensitive location, how much of its catchment lies
outside the host country (leakage), and how much of the host country
escapes to foreign sites?

Run:  python examples/policy_containment.py
"""

from __future__ import annotations

from repro import Verfploeter, tangled_like
from repro.analysis.containment import (
    containment_report,
    country_site_matrix,
    format_containment_table,
)


def main() -> None:
    scenario = tangled_like(scale="small")
    verfploeter = Verfploeter(scenario.internet, scenario.service)
    scan = verfploeter.run_scan(dataset_id="containment", wire_level=False)
    print(f"mapped {scan.mapped_blocks} /24s across "
          f"{len(scenario.service.sites)} sites\n")

    # Sites with a meaningful host-country policy question.
    pairings = [("HND", "JP"), ("ENS", "NL"), ("CPH", "DK"), ("SAO", "BR")]
    reports = [
        containment_report(scan.catchment, scenario.internet.geodb, site, country)
        for site, country in pairings
    ]
    print(format_containment_table(reports))

    # The worst leaker, spelled out the way the paper describes the
    # I-Root incident.
    worst = max(reports, key=lambda report: report.leakage_fraction)
    print(f"\nworst leakage: {worst.site_code} serves "
          f"{worst.outside_at_site} /24s outside {worst.country_code} "
          f"({worst.leakage_fraction:.0%} of its catchment) — any "
          f"{worst.country_code}-specific policy applied at that site "
          "would reach foreign networks, the paper's I-Root-Beijing "
          "failure mode.")

    # And the flip side: who actually serves each sensitive country?
    print("\nwho serves each country (blocks per site):")
    for _, country in pairings:
        matrix = country_site_matrix(
            scan.catchment, scenario.internet.geodb, country
        )
        ranked = sorted(matrix.items(), key=lambda item: -item[1])
        summary = ", ".join(f"{site}:{count}" for site, count in ranked[:4])
        print(f"  {country}: {summary}")


if __name__ == "__main__":
    main()
