#!/usr/bin/env python3
"""Capacity and expansion planning for a CDN-scale anycast (paper §7).

Uses the two planning tools this library adds on top of the paper's
pipeline: site-failure what-ifs (where does a withdrawn site's load
land, and does any survivor overload?) and RTT-driven expansion
suggestions (the paper's future-work idea of using Verfploeter RTTs to
pick new site locations).

Run:  python examples/site_planning.py
"""

from __future__ import annotations

from repro import Verfploeter
from repro.analysis.placement import rtt_summary_by_site, suggest_sites
from repro.analysis.report import render_table
from repro.core.experiments import site_failure_study
from repro.core.planning import evaluate_site_addition
from repro.core.scenarios import cdn_like
from repro.load.estimator import LoadEstimate


def main() -> None:
    scenario = cdn_like(scale="small")
    verfploeter = Verfploeter(scenario.internet, scenario.service)
    print(f"{scenario.service.name}: {len(scenario.service.sites)} sites, "
          f"{scenario.internet.summary()['blocks']} /24s in topology")

    # One scan gives both the catchments and per-block RTTs.
    scan = verfploeter.run_scan(dataset_id="cdn-planning", wire_level=False)
    summary = rtt_summary_by_site(scan)
    print(render_table(
        ["site", "/24s", "median RTT (ms)"],
        [(site, blocks, f"{median:.0f}")
         for site, (blocks, median) in sorted(summary.items())],
        title="\nper-site catchment size and latency",
    ))

    # Failure what-ifs for the three biggest sites.
    estimate = LoadEstimate(scenario.day_load("cdn-day"))
    fractions = scan.catchment.fractions()
    biggest = sorted(fractions, key=lambda s: -fractions[s])[:3]
    results = site_failure_study(verfploeter, estimate, sites=biggest)
    rows = []
    for result in results:
        worst, factor = result.worst_overload()
        rows.append((result.withdrawn_site, worst,
                     f"{factor:.2f}x" if factor != float("inf") else "new"))
    print(render_table(
        ["withdrawn", "worst-hit survivor", "load multiple"],
        rows,
        title="\nfailure what-ifs for the three largest sites",
    ))

    # Where should the next sites go?  High-RTT, high-load regions.
    suggestions = suggest_sites(
        scan, scenario.internet.geodb, count=3, estimate=estimate
    )
    print("\nexpansion suggestions (load-weighted underserved regions):")
    for suggestion in suggestions:
        print(f"  {suggestion}")

    # Close the loop: deploy the top suggestion on a test prefix (paper
    # §3.1) and measure what it would actually capture and save.
    if suggestions:
        top = suggestions[0]
        result = evaluate_site_addition(
            scenario, "NEW", top.latitude, top.longitude
        )
        print(f"\ntrial deployment at ({top.latitude:+.0f}, "
              f"{top.longitude:+.0f}) via AS{result.site.upstream_asn} "
              f"({result.site.country_code}):")
        print(f"  captures {result.captured_blocks} /24s "
              f"({result.capture_fraction:.1%} of the catchment)")
        print(f"  mean RTT {result.mean_rtt_before_ms:.0f} -> "
              f"{result.mean_rtt_after_ms:.0f} ms "
              f"(saves {result.mean_rtt_saving_ms:.0f} ms)")
        if result.median_rtt_of_new_site_ms is not None:
            print(f"  median RTT inside the new catchment: "
                  f"{result.median_rtt_of_new_site_ms:.0f} ms")


if __name__ == "__main__":
    main()
