#!/usr/bin/env python3
"""Coverage comparison: RIPE Atlas vs Verfploeter (paper §5.1-5.3).

Measures the same anycast deployment with both systems and shows why
active probing from the service wins: Atlas covers only where physical
probes were deployed (mostly Europe), while Verfploeter's passive VPs
cover every ping-responsive /24 — including the regions where the two
systems *disagree* about who serves whom.

Run:  python examples/atlas_vs_verfploeter.py
"""

from __future__ import annotations

from repro import Verfploeter, tangled_like
from repro.analysis.coverage import format_coverage_table
from repro.analysis.maps import atlas_grid, catchment_grid, render_ascii_map
from repro.core.comparison import compare_coverage


def main() -> None:
    scenario = tangled_like(scale="small")
    verfploeter = Verfploeter(scenario.internet, scenario.service)
    routing = verfploeter.routing_for()

    # Verfploeter: one ping per /24 from the anycast prefix.
    scan = verfploeter.run_scan(routing=routing, dataset_id="STV")

    # Atlas: every deployed physical probe sends a CHAOS TXT
    # hostname.bind query; the answering site names itself.
    measurement = scenario.atlas.measure(routing, scenario.service)

    comparison = compare_coverage(measurement, scan, scenario.internet)
    print(format_coverage_table(comparison))

    print("\ncatchment split as seen by each system:")
    atlas_fractions = measurement.fractions()
    verf_fractions = scan.catchment.fractions()
    for site in scenario.service.site_codes:
        print(f"  {site}: Atlas {atlas_fractions.get(site, 0.0):6.1%}   "
              f"Verfploeter {verf_fractions.get(site, 0.0):6.1%}")

    print("\nAtlas view (one symbol per 4-degree cell):")
    print(render_ascii_map(atlas_grid(measurement, 4.0)))
    print("\nVerfploeter view:")
    print(render_ascii_map(
        catchment_grid(scan.catchment, scenario.internet.geodb, 4.0)
    ))

    # Where do the systems disagree?  Atlas blocks whose VP-reported
    # site differs from the Verfploeter-measured site for that block.
    disagreements = 0
    atlas_blocks = measurement.block_catchments()
    for block, atlas_site in atlas_blocks.items():
        verf_site = scan.catchment.site_of(block)
        if verf_site is not None and verf_site != atlas_site:
            disagreements += 1
    print(f"\nblocks measured by both systems that agree: "
          f"{len(atlas_blocks) - disagreements}/{len(atlas_blocks)}")
    print("Verfploeter additionally covers "
          f"{comparison.verf_unique_blocks} blocks Atlas cannot see at all.")


if __name__ == "__main__":
    main()
