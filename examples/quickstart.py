#!/usr/bin/env python3
"""Quickstart: map an anycast service's catchments with Verfploeter.

Builds the B-Root-like scenario (synthetic Internet + two-site anycast
deployment), runs one Verfploeter measurement round under a collecting
observer, and prints the catchment split, the scan statistics, the
pipeline's own metrics table, and an ASCII coverage map.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Observer, Verfploeter, broot_like
from repro.analysis.maps import catchment_grid, render_ascii_map


def main() -> None:
    # A deterministic scenario: synthetic Internet, B-Root-like anycast
    # service (LAX + MIA), skewed Atlas deployment, root-like workload.
    scenario = broot_like(scale="small")
    print(f"scenario: {scenario.service.name} "
          f"with sites {scenario.service.site_codes}")
    print(f"topology: {scenario.internet.summary()}")

    # Deploy Verfploeter on the service and run one measurement round:
    # one ICMP echo request per /24 from the anycast measurement
    # address; replies land at the BGP-selected site.  The observer
    # records spans and metrics along the way (docs/observability.md);
    # it is off by default and costs nothing when omitted.
    observer = Observer.collecting()
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    scan = verfploeter.run_scan(dataset_id="quickstart")

    stats = scan.stats
    print(f"\nprobed {stats.probes_sent} /24s in "
          f"{scan.duration_seconds:.0f} simulated seconds "
          f"({stats.traffic_megabytes:.2f} MB of probe traffic)")
    print(f"replies: {stats.replies_received} "
          f"(cleaned: {stats.duplicates} duplicates, "
          f"{stats.unsolicited} unsolicited, {stats.late} late)")
    print(f"mapped {scan.mapped_blocks} /24 blocks "
          f"({stats.response_rate:.0%} of probed)")

    print("\ncatchment split (fraction of mapped /24s):")
    for site, fraction in sorted(scan.catchment.fractions().items()):
        print(f"  {site}: {fraction:.1%}")

    # What the pipeline observed about itself: probes scheduled,
    # replies by cleaning verdict, per-site capture counts.
    print()
    print(observer.metrics.render_text(title="pipeline metrics"))

    print("\ncoverage map (dominant site per 4-degree cell):")
    grid = catchment_grid(scan.catchment, scenario.internet.geodb, 4.0)
    print(render_ascii_map(grid))


if __name__ == "__main__":
    main()
