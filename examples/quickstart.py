#!/usr/bin/env python3
"""Quickstart: map an anycast service's catchments with Verfploeter.

Builds the B-Root-like scenario (synthetic Internet + two-site anycast
deployment), runs one Verfploeter measurement round, and prints the
catchment split, the scan statistics, and an ASCII coverage map.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Verfploeter, broot_like
from repro.analysis.maps import catchment_grid, render_ascii_map


def main() -> None:
    # A deterministic scenario: synthetic Internet, B-Root-like anycast
    # service (LAX + MIA), skewed Atlas deployment, root-like workload.
    scenario = broot_like(scale="small")
    print(f"scenario: {scenario.service.name} "
          f"with sites {scenario.service.site_codes}")
    print(f"topology: {scenario.internet.summary()}")

    # Deploy Verfploeter on the service and run one measurement round:
    # one ICMP echo request per /24 from the anycast measurement
    # address; replies land at the BGP-selected site.
    verfploeter = Verfploeter(scenario.internet, scenario.service)
    scan = verfploeter.run_scan(dataset_id="quickstart")

    stats = scan.stats
    print(f"\nprobed {stats.probes_sent} /24s in "
          f"{scan.duration_seconds:.0f} simulated seconds "
          f"({stats.traffic_megabytes:.2f} MB of probe traffic)")
    print(f"replies: {stats.replies_received} "
          f"(cleaned: {stats.duplicates} duplicates, "
          f"{stats.unsolicited} unsolicited, {stats.late} late)")
    print(f"mapped {scan.mapped_blocks} /24 blocks "
          f"({stats.response_rate:.0%} of probed)")

    print("\ncatchment split (fraction of mapped /24s):")
    for site, fraction in sorted(scan.catchment.fractions().items()):
        print(f"  {site}: {fraction:.1%}")

    print("\ncoverage map (dominant site per 4-degree cell):")
    grid = catchment_grid(scan.catchment, scenario.internet.geodb, 4.0)
    print(render_ascii_map(grid))


if __name__ == "__main__":
    main()
