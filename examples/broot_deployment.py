#!/usr/bin/env python3
"""Pre-deployment planning for B-Root's anycast rollout (paper §5.4-5.5).

Walks the paper's operational story: before switching production
traffic to anycast, announce a *test prefix* from the candidate sites,
map its catchments with Verfploeter, weight them with historical
query-load logs from the unicast deployment, and predict how much
traffic each site will receive.  Then "deploy" and compare the
prediction against the measured split.

Run:  python examples/broot_deployment.py
"""

from __future__ import annotations

from repro import Verfploeter, broot_like
from repro.analysis.traffic_coverage import format_traffic_coverage, traffic_coverage
from repro.load.estimator import LoadEstimate
from repro.load.prediction import compare_prediction, measured_site_load
from repro.load.weighting import weight_catchment
from repro.netaddr.prefix import Prefix


def main() -> None:
    scenario = broot_like(scale="small")

    # --- step 1: measure catchments on a test prefix --------------------
    # The production /24 is announced alongside a covering /23; the
    # unused half serves as the test prefix, hitting the same BGP
    # policies without touching production traffic.
    test_service = scenario.service.test_prefix_clone(Prefix("199.9.15.0/24"))
    verfploeter = Verfploeter(scenario.internet, test_service)
    routing = verfploeter.routing_for()
    scan = verfploeter.run_scan(routing=routing, dataset_id="SBV-test-prefix")
    print(f"test-prefix scan mapped {scan.mapped_blocks} /24s")
    print("block-count split:",
          {k: f"{v:.1%}" for k, v in sorted(scan.catchment.fractions().items())})

    # --- step 2: calibrate with historical load -------------------------
    # Day-long query logs from the unicast deployment give per-/24
    # weights; raw block counts over-count quiet networks.
    history = scenario.day_load("2017-04-12", target_total_queries=2.2e6)
    estimate = LoadEstimate(history)
    print(f"\nhistorical load: {history.total_queries():,.0f} queries/day "
          f"from {len(history)} /24s")

    coverage = traffic_coverage(scan.catchment, estimate)
    print(format_traffic_coverage(coverage))

    prediction = weight_catchment(scan.catchment, estimate)
    print("\nload-weighted prediction:")
    for site in scenario.service.site_codes:
        print(f"  {site}: {prediction.fraction_of(site):.1%} of known load")
    print(f"  unmappable load: {prediction.unknown_fraction():.1%} "
          "(assumed to split like mapped load)")

    # --- step 3: deploy and validate -------------------------------------
    # After deployment the service's own logs reveal the true split:
    # every block's traffic lands somewhere, ping-responsive or not.
    measured = measured_site_load(routing, estimate)
    comparison = compare_prediction(prediction, measured)
    print("\npredicted vs measured load share:")
    for site in scenario.service.site_codes:
        print(f"  {site}: predicted {comparison.predicted[site]:.1%}  "
              f"measured {comparison.measured[site]:.1%}  "
              f"(error {comparison.error_of(site):.1%})")
    print(f"worst-site error: {comparison.max_error():.1%} — "
          "load-weighted Verfploeter predicts deployment load closely, "
          "as the paper found (81.6% predicted vs 81.4% measured).")


if __name__ == "__main__":
    main()
