#!/usr/bin/env python3
"""Anycast stability over a day (paper §6.3, Figure 9, Table 7).

Measures the nine-site Tangled testbed every 15 minutes, classifies
each /24 as stable / flipped / went-silent / came-back between rounds,
and shows that the rare catchment flips concentrate in a handful of
ASes with load-balanced paths — then uses the stability filter to
analyse genuine intra-AS catchment divisions (paper §6.2).

Run:  python examples/stability_study.py  [rounds]
"""

from __future__ import annotations

import sys

from repro import Verfploeter, tangled_like
from repro.analysis.divisions import format_as_division_table
from repro.analysis.flips import flip_table, format_flip_table, format_stability_table
from repro.core.experiments import run_stability_series


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    scenario = tangled_like(scale="small")
    verfploeter = Verfploeter(scenario.internet, scenario.service)

    print(f"measuring {scenario.service.name} "
          f"({len(scenario.service.sites)} sites) every 15 minutes, "
          f"{rounds} rounds...")
    series = run_stability_series(verfploeter, rounds=rounds,
                                  interval_seconds=900.0)

    print()
    print(format_stability_table(series, every=max(1, rounds // 6)))

    print()
    print(format_flip_table(flip_table(series, scenario.internet)))

    flipping = series.flipping_blocks()
    print(f"\n{len(flipping)} /24s flipped at least once; the rest held "
          "their catchment for the whole day — anycast is stable enough "
          "for TCP, except inside specific ASes (the paper's conclusion).")

    # With flipping VPs removed, remaining multi-site ASes are genuine
    # internal divisions, not unstable routing.
    stable = series.stable_catchment()
    print()
    print(format_as_division_table(stable, scenario.internet))


if __name__ == "__main__":
    main()
