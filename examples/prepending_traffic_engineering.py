#!/usr/bin/env python3
"""Traffic engineering with AS-path prepending (paper §6.1).

An operator wants to shift load between B-Root's two sites — say, to
drain most traffic away from MIA during maintenance, while keeping the
site up for its unavoidable customer cone.  This example sweeps
prepending configurations with both RIPE Atlas and Verfploeter,
predicts the per-site load of each, and picks the configuration
closest to a target split.

Run:  python examples/prepending_traffic_engineering.py
"""

from __future__ import annotations

from repro import Verfploeter, broot_like
from repro.analysis.prepend import format_prepend_table, hourly_load_by_config
from repro.core.experiments import prepend_sweep
from repro.load.estimator import LoadEstimate

TARGET_LAX_SHARE = 0.85  # drain MIA to ~15% of load


def main() -> None:
    scenario = broot_like(scale="small")
    verfploeter = Verfploeter(scenario.internet, scenario.service)

    # Measure every candidate configuration with both systems.  Each
    # configuration is announced (on the test prefix), measured, and
    # withdrawn — the trial-and-error loop the paper describes.
    sweep = prepend_sweep(verfploeter, scenario.atlas)
    print(format_prepend_table(sweep, "LAX"))

    # Calibrate each configuration with historical load.
    history = scenario.day_load("2017-04-12", target_total_queries=2.2e6)
    estimate = LoadEstimate(history)
    hourly = hourly_load_by_config(sweep, estimate)

    print("\npredicted share of known load at LAX per configuration:")
    best_label = None
    best_gap = float("inf")
    for entry in sweep:
        series = hourly[entry.label]
        lax = float(series["LAX"].sum())
        mia = float(series["MIA"].sum())
        share = lax / (lax + mia)
        gap = abs(share - TARGET_LAX_SHARE)
        marker = ""
        if gap < best_gap:
            best_label, best_gap = entry.label, gap
            marker = "  <-- best so far"
        print(f"  {entry.label:8s} LAX={share:.1%}{marker}")

    print(f"\nchosen configuration: {best_label!r} "
          f"(within {best_gap:.1%} of the {TARGET_LAX_SHARE:.0%} target)")

    # Show the peak-hour load the drained site would still carry.
    series = hourly[best_label]
    peak_mia = float(series["MIA"].max())
    print(f"MIA peak predicted load under {best_label!r}: "
          f"{peak_mia:,.1f} q/s (its customer cone never leaves)")


if __name__ == "__main__":
    main()
