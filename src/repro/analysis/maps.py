"""Figures 2-4: geographic coverage and load maps.

Aggregates VPs, blocks, or load into the paper's two-degree geographic
bins (each a pie of anycast sites) and renders an ASCII world map where
each populated cell shows the dominant site's symbol.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.anycast.catchment import CatchmentMap
from repro.atlas.platform import AtlasMeasurement
from repro.geo.geodb import GeoDatabase
from repro.geo.grid import GeoGrid
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN


def catchment_grid(
    catchment: CatchmentMap, geodb: GeoDatabase, cell_degrees: float = 2.0
) -> GeoGrid:
    """Figure 2b/3b: one unit of weight per mapped /24 block."""
    grid = GeoGrid(cell_degrees)
    for block, site in catchment.items():
        record = geodb.locate(block)
        if record is None:
            continue  # the paper discards unlocatable blocks (678 of 3.8M)
        grid.add(record.latitude, record.longitude, site)
    return grid


def atlas_grid(
    measurement: AtlasMeasurement, cell_degrees: float = 2.0
) -> GeoGrid:
    """Figure 2a/3a: one unit of weight per responding Atlas VP."""
    grid = GeoGrid(cell_degrees)
    for result in measurement.responding:
        grid.add(result.vp.latitude, result.vp.longitude, result.site_code)
    return grid


def load_grid(
    catchment: CatchmentMap,
    estimate: LoadEstimate,
    geodb: GeoDatabase,
    cell_degrees: float = 2.0,
) -> GeoGrid:
    """Figure 4a: load-weighted map; unmapped-but-loaded blocks are UNK."""
    grid = GeoGrid(cell_degrees)
    daily = estimate.source.daily_of_kind(estimate.kind)
    for row, block in enumerate(estimate.blocks):
        volume = float(daily[row])
        if volume <= 0:
            continue
        record = geodb.locate(int(block))
        if record is None:
            continue
        site = catchment.site_of(int(block)) or UNKNOWN
        grid.add(record.latitude, record.longitude, site, weight=volume)
    return grid


def server_load_grid(
    estimate: LoadEstimate,
    geodb: GeoDatabase,
    server_of_block,
    cell_degrees: float = 2.0,
) -> GeoGrid:
    """Figure 4b: load map keyed by an arbitrary block->server function."""
    grid = GeoGrid(cell_degrees)
    daily = estimate.source.daily_of_kind(estimate.kind)
    for row, block in enumerate(estimate.blocks):
        volume = float(daily[row])
        if volume <= 0:
            continue
        record = geodb.locate(int(block))
        if record is None:
            continue
        grid.add(record.latitude, record.longitude, server_of_block(int(block)), volume)
    return grid


def render_ascii_map(
    grid: GeoGrid,
    site_symbols: Optional[Dict[str, str]] = None,
    lat_range: Tuple[float, float] = (-60.0, 72.0),
    lon_range: Tuple[float, float] = (-180.0, 180.0),
) -> str:
    """Render the dominant site per cell as an ASCII world map.

    Empty cells are spaces; the legend maps symbols to sites.  This is
    the text analogue of the paper's pie-map figures.
    """
    symbols = dict(site_symbols or {})
    cells = list(grid.cells())
    sites_in_grid = sorted({cell.dominant_site() for cell in cells})
    default_symbols = "LMXABCDEFGHIJKNOPQRSTUVWYZ123456789"
    for index, site in enumerate(sites_in_grid):
        symbols.setdefault(site, default_symbols[index % len(default_symbols)])
    degrees = grid.cell_degrees
    lat_lo = int((lat_range[0] + 90.0) // degrees)
    lat_hi = int((lat_range[1] + 90.0) // degrees)
    lon_lo = int((lon_range[0] + 180.0) // degrees)
    lon_hi = int((lon_range[1] + 180.0) // degrees)
    painted: Dict[Tuple[int, int], str] = {
        (cell.lat_index, cell.lon_index): symbols[cell.dominant_site()]
        for cell in cells
    }
    lines = []
    for lat_index in range(lat_hi, lat_lo - 1, -1):
        line = "".join(
            painted.get((lat_index, lon_index), " ")
            for lon_index in range(lon_lo, lon_hi + 1)
        )
        lines.append(line.rstrip())
    legend = "  ".join(f"{symbols[site]}={site}" for site in sites_in_grid)
    return "\n".join([*lines, "", f"legend: {legend}"])


def grid_site_summary(grid: GeoGrid) -> Dict[str, float]:
    """Total weight per site (sanity totals printed next to the maps)."""
    return grid.site_totals()
