"""Table 4: coverage of Atlas vs Verfploeter."""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.report import render_table
from repro.analysis.results import CoverageComparison


def coverage_rows(comparison: CoverageComparison) -> List[Tuple[str, int, int, int]]:
    """The paper's Table 4 rows: (label, Atlas VPs, Atlas /24s, Verf /24s)."""
    return [
        (
            "considered",
            comparison.atlas_considered_vps,
            comparison.atlas_considered_blocks,
            comparison.verf_considered_blocks,
        ),
        (
            "non-responding",
            comparison.atlas_nonresponding_vps,
            comparison.atlas_nonresponding_blocks,
            comparison.verf_nonresponding_blocks,
        ),
        (
            "responding",
            comparison.atlas_responding_vps,
            comparison.atlas_responding_blocks,
            comparison.verf_responding_blocks,
        ),
        ("no location", 0, 0, comparison.verf_no_location_blocks),
        (
            "geolocatable",
            comparison.atlas_responding_vps,
            comparison.atlas_geolocatable_blocks,
            comparison.verf_geolocatable_blocks,
        ),
        (
            "unique",
            0,
            comparison.atlas_unique_blocks,
            comparison.verf_unique_blocks,
        ),
    ]


def format_coverage_table(comparison: CoverageComparison) -> str:
    """Render Table 4 plus the headline coverage ratio."""
    table = render_table(
        ["", "Atlas (VPs)", "Atlas (/24s)", "Verfploeter (/24s)"],
        coverage_rows(comparison),
        title="Table 4: coverage of the two measurement systems",
    )
    return (
        f"{table}\n"
        f"coverage ratio (Verfploeter responding /24s / Atlas responding /24s): "
        f"{comparison.coverage_ratio:.0f}x\n"
        f"Atlas blocks also seen by Verfploeter: "
        f"{comparison.atlas_overlap_fraction:.0%}"
    )
