"""Figure-data export: TSV series for external plotting.

The benchmark harness prints tables; this module writes the underlying
series as plain TSV files so the figures can be replotted with any
tool — the form in which the paper's own datasets were released.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Sequence

import numpy as np

from repro.analysis.divisions import prefix_site_distribution
from repro.anycast.catchment import CatchmentMap
from repro.analysis.results import PrependMeasurement, StabilitySeries
from repro.geo.grid import GeoGrid
from repro.topology.internet import Internet


def export_prepend_series(
    measurements: Sequence[PrependMeasurement],
    site_code: str,
    path: Path,
) -> None:
    """Figure 5 series: config, Atlas fraction, Verfploeter fraction."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("config\tatlas_fraction\tverfploeter_fraction\n")
        for entry in measurements:
            stream.write(
                f"{entry.label}\t{entry.atlas_fraction_of(site_code):.6f}\t"
                f"{entry.verfploeter_fraction_of(site_code):.6f}\n"
            )


def export_stability_series(series: StabilitySeries, path: Path) -> None:
    """Figure 9 series: per-round stable/flipped/to-NR/from-NR counts."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("round\tstable\tflipped\tto_nr\tfrom_nr\n")
        for entry in series.rounds:
            stream.write(
                f"{entry.round_id}\t{entry.stable}\t{entry.flipped}\t"
                f"{entry.to_nr}\t{entry.from_nr}\n"
            )


def export_hourly_series(
    hourly: Dict[str, Dict[str, np.ndarray]], path: Path
) -> None:
    """Figure 6 series: config, site, then 24 hourly q/s columns."""
    with open(path, "w", encoding="utf-8") as stream:
        hour_headers = "\t".join(f"h{hour:02d}" for hour in range(24))
        stream.write(f"config\tsite\t{hour_headers}\n")
        for label, sites in hourly.items():
            for site, values in sites.items():
                cells = "\t".join(f"{value:.4f}" for value in values)
                stream.write(f"{label}\t{site}\t{cells}\n")


def export_prefix_division_series(
    catchment: CatchmentMap, internet: Internet, path: Path, max_sites: int = 6
) -> None:
    """Figure 8 series: prefix length, total, fraction per site count."""
    distribution = prefix_site_distribution(catchment, internet)
    with open(path, "w", encoding="utf-8") as stream:
        site_headers = "\t".join(f"sites_{n}" for n in range(1, max_sites + 1))
        stream.write(f"prefix_length\tprefixes\t{site_headers}\n")
        for length in sorted(distribution):
            bucket = distribution[length]
            total = sum(bucket.values())
            fractions = "\t".join(
                f"{bucket.get(n, 0) / total:.4f}" for n in range(1, max_sites + 1)
            )
            stream.write(f"{length}\t{total}\t{fractions}\n")


def export_grid(grid: GeoGrid, path: Path) -> None:
    """Map series (Figures 2-4): one row per populated cell per site."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("lat\tlon\tsite\tweight\n")
        for cell in grid.cells():
            lat = cell.lat_index * grid.cell_degrees - 90.0
            lon = cell.lon_index * grid.cell_degrees - 180.0
            for site, weight in sorted(cell.weights.items()):
                stream.write(f"{lat:.1f}\t{lon:.1f}\t{site}\t{weight:.4f}\n")
