"""Figures 7 and 8: catchment divisions within ASes and prefixes.

The paper shows that one vantage point per AS is not enough: ~12.7% of
ASes are served by more than one anycast site (hot-potato splits), and
larger announced prefixes are usually split.  These functions compute
both distributions from a (stability-filtered) catchment map.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.report import render_table
from repro.anycast.catchment import CatchmentMap
from repro.topology.internet import Internet


def sites_seen_per_as(
    catchment: CatchmentMap, internet: Internet
) -> Dict[int, int]:
    """Distinct sites seen by each AS's mapped blocks (ASN -> site count)."""
    sites_by_as: Dict[int, set] = {}
    for block, site in catchment.items():
        asn = internet.asn_of_block(block)
        sites_by_as.setdefault(asn, set()).add(site)
    return {asn: len(sites) for asn, sites in sites_by_as.items()}


def multi_site_fraction(catchment: CatchmentMap, internet: Internet) -> float:
    """Share of (observed) ASes served by more than one site (paper: 12.7%)."""
    counts = sites_seen_per_as(catchment, internet)
    if not counts:
        return 0.0
    return sum(1 for count in counts.values() if count > 1) / len(counts)


def prefixes_by_sites_seen(
    catchment: CatchmentMap, internet: Internet
) -> Dict[int, List[int]]:
    """Figure 7 input: sites-seen -> announced-prefix counts of those ASes."""
    site_counts = sites_seen_per_as(catchment, internet)
    result: Dict[int, List[int]] = {}
    for asn, sites in site_counts.items():
        announced = len(internet.prefixes_of_asn(asn))
        result.setdefault(sites, []).append(announced)
    return result


def _percentile(values: List[int], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return float(ordered[index])


def format_as_division_table(catchment: CatchmentMap, internet: Internet) -> str:
    """Render Figure 7 as a table: prefixes announced vs sites seen."""
    data = prefixes_by_sites_seen(catchment, internet)
    rows = []
    for sites in sorted(data):
        values = data[sites]
        rows.append(
            (
                sites,
                len(values),
                _percentile(values, 0.05),
                _percentile(values, 0.25),
                _percentile(values, 0.50),
                _percentile(values, 0.75),
                _percentile(values, 0.95),
            )
        )
    table = render_table(
        ["sites seen", "ASes", "p5", "p25", "median", "p75", "p95"],
        rows,
        title="Figure 7: announced prefixes vs sites seen per AS",
    )
    fraction = multi_site_fraction(catchment, internet)
    return f"{table}\nASes seeing multiple sites: {fraction:.1%}"


def prefix_site_distribution(
    catchment: CatchmentMap, internet: Internet
) -> Dict[int, Dict[int, int]]:
    """Figure 8 input: prefix length -> {sites seen -> prefix count}.

    Only prefixes with at least one mapped block are counted, matching
    the paper's per-announced-prefix analysis.
    """
    sites_by_prefix: Dict[Tuple[int, int], set] = {}
    for block, site in catchment.items():
        announced = internet.announced_prefix_of(block)
        if announced is None:
            continue
        key = (announced.prefix.network, announced.prefix.length)
        sites_by_prefix.setdefault(key, set()).add(site)
    distribution: Dict[int, Dict[int, int]] = {}
    for (_, length), sites in sites_by_prefix.items():
        bucket = distribution.setdefault(length, {})
        bucket[len(sites)] = bucket.get(len(sites), 0) + 1
    return distribution


def format_prefix_division_table(
    catchment: CatchmentMap, internet: Internet, max_sites: int = 6
) -> str:
    """Render Figure 8 as a table of fractions per prefix length."""
    distribution = prefix_site_distribution(catchment, internet)
    rows = []
    for length in sorted(distribution):
        bucket = distribution[length]
        total = sum(bucket.values())
        fractions = [
            bucket.get(sites, 0) / total for sites in range(1, max_sites + 1)
        ]
        rows.append(
            (
                f"{total} x /{length}",
                *[f"{fraction:.2f}" for fraction in fractions],
            )
        )
    return render_table(
        ["prefixes", *[f"{s} site(s)" for s in range(1, max_sites + 1)]],
        rows,
        title="Figure 8: sites seen per announced prefix, by prefix length",
    )
