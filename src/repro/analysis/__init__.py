"""Analysis: one module per paper table/figure.

Each module turns raw measurement objects into the structured rows the
paper reports, plus a text rendering.  The benchmark harness prints
these tables; EXPERIMENTS.md records them against the paper's values.
"""

from repro.analysis.catchment_fractions import MethodRow, format_method_table
from repro.analysis.coverage import coverage_rows, format_coverage_table
from repro.analysis.divisions import (
    format_prefix_division_table,
    prefix_site_distribution,
    prefixes_by_sites_seen,
    sites_seen_per_as,
)
from repro.analysis.flips import (
    FlipTableRow,
    flip_table,
    format_flip_table,
    format_stability_table,
    stability_rows,
)
from repro.analysis.consensus import agreement_scores, coverage_gain, merge_scans
from repro.analysis.containment import (
    containment_report,
    country_site_matrix,
    format_containment_table,
)
from repro.analysis.inflation import (
    format_inflation_table,
    inflation_per_block,
    summarize_inflation,
)
from repro.analysis.maps import catchment_grid, load_grid, render_ascii_map
from repro.analysis.placement import rtt_summary_by_site, suggest_sites
from repro.analysis.prepend import (
    format_prepend_table,
    hourly_load_by_config,
    prepend_rows,
)
from repro.analysis.report import render_table
from repro.analysis.traffic_coverage import TrafficCoverage, traffic_coverage

__all__ = [
    "render_table",
    "coverage_rows",
    "format_coverage_table",
    "TrafficCoverage",
    "traffic_coverage",
    "MethodRow",
    "format_method_table",
    "FlipTableRow",
    "flip_table",
    "format_flip_table",
    "stability_rows",
    "format_stability_table",
    "sites_seen_per_as",
    "prefixes_by_sites_seen",
    "prefix_site_distribution",
    "format_prefix_division_table",
    "prepend_rows",
    "format_prepend_table",
    "hourly_load_by_config",
    "catchment_grid",
    "load_grid",
    "render_ascii_map",
    "containment_report",
    "country_site_matrix",
    "format_containment_table",
    "inflation_per_block",
    "summarize_inflation",
    "format_inflation_table",
    "suggest_sites",
    "rtt_summary_by_site",
    "merge_scans",
    "agreement_scores",
    "coverage_gain",
]
