"""Experiment result value types consumed across the analysis layer.

Produced by the drivers in :mod:`repro.core.experiments` and
:mod:`repro.core.comparison`, but defined here so analysis modules can
depend on them without importing ``core`` (which sits above ``analysis``
in the layer DAG — see :mod:`repro.lint.layers`).  ``repro.core``
re-exports every name for its callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.anycast.catchment import ArrayCatchmentMap, CatchmentMap
from repro.bgp.policy import AnnouncementPolicy
from repro.collector.results import ScanResult


@dataclass(frozen=True)
class PrependMeasurement:
    """One prepending configuration measured with both systems."""

    label: str
    policy: AnnouncementPolicy
    atlas_fractions: Dict[str, float]
    verfploeter_fractions: Dict[str, float]
    scan: ScanResult

    def atlas_fraction_of(self, site_code: str) -> float:
        """Share of Atlas VPs at ``site_code``."""
        return self.atlas_fractions.get(site_code, 0.0)

    def verfploeter_fraction_of(self, site_code: str) -> float:
        """Share of Verfploeter /24s at ``site_code``."""
        return self.verfploeter_fractions.get(site_code, 0.0)


@dataclass(frozen=True)
class StabilityRound:
    """Transitions from the previous round (paper Figure 9 categories)."""

    round_id: int
    stable: int
    flipped: int
    to_nr: int
    from_nr: int


@dataclass
class StabilitySeries:
    """A full stability study: scans plus per-round transitions."""

    scans: List[ScanResult]
    rounds: List[StabilityRound] = field(default_factory=list)
    flip_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def round_count(self) -> int:
        """Number of measurement rounds."""
        return len(self.scans)

    def flipping_blocks(self) -> Set[int]:
        """Blocks that changed catchment at least once."""
        return set(self.flip_counts)

    def total_flips(self) -> int:
        """Total catchment changes observed across the series."""
        return sum(self.flip_counts.values())

    def median_of(self, category: str) -> float:
        """Median per-round count of ``stable``/``flipped``/``to_nr``/``from_nr``."""
        values = sorted(getattr(entry, category) for entry in self.rounds)
        if not values:
            return 0.0
        middle = len(values) // 2
        if len(values) % 2:
            return float(values[middle])
        return (values[middle - 1] + values[middle]) / 2.0

    def stable_catchment(self) -> CatchmentMap:
        """Final-round catchment restricted to never-flipping blocks.

        This is the paper's §6.2 preprocessing: flipping VPs are removed
        before analysing intra-AS divisions, so unstable routing is not
        mistaken for a split AS.
        """
        last = self.scans[-1].catchment
        flipping = self.flipping_blocks()
        if isinstance(last, ArrayCatchmentMap):
            mapped = last.mapped_block_array()
            if flipping:
                excluded = np.fromiter(
                    flipping, dtype=np.int64, count=len(flipping)
                )
                mapped = mapped[~np.isin(mapped, excluded)]
            return last.restrict(mapped)
        return last.restrict(
            block for block in last.blocks() if block not in flipping
        )


def build_stability_series(scans: Sequence[ScanResult]) -> StabilitySeries:
    """Assemble a :class:`StabilitySeries` from consecutive-round scans.

    Each adjacent pair is diffed via :meth:`CatchmentMap.diff`; when the
    scans carry array-backed catchments over a shared block universe
    (the vectorised engine's output), every per-round diff reduces to
    elementwise array comparisons instead of dict walks.
    """
    series = StabilitySeries(scans=list(scans))
    for index in range(1, len(series.scans)):
        earlier = series.scans[index - 1].catchment
        later = series.scans[index].catchment
        diff = earlier.diff(later)
        series.rounds.append(
            StabilityRound(
                round_id=series.scans[index].round_id,
                stable=diff.stable,
                flipped=diff.flipped,
                to_nr=diff.disappeared,
                from_nr=diff.appeared,
            )
        )
        for block in diff.flipped_blocks:
            series.flip_counts[block] = series.flip_counts.get(block, 0) + 1
    return series


@dataclass(frozen=True)
class CoverageComparison:
    """Every row of the paper's Table 4, for both systems."""

    atlas_considered_vps: int
    atlas_considered_blocks: int
    atlas_nonresponding_vps: int
    atlas_nonresponding_blocks: int
    atlas_responding_vps: int
    atlas_responding_blocks: int
    atlas_geolocatable_blocks: int
    atlas_unique_blocks: int
    verf_considered_blocks: int
    verf_nonresponding_blocks: int
    verf_responding_blocks: int
    verf_no_location_blocks: int
    verf_geolocatable_blocks: int
    verf_unique_blocks: int
    overlap_blocks: int

    @property
    def coverage_ratio(self) -> float:
        """How many times more blocks Verfploeter sees (paper: ~430x)."""
        if self.atlas_responding_blocks == 0:
            return float("inf")
        return self.verf_responding_blocks / self.atlas_responding_blocks

    @property
    def atlas_overlap_fraction(self) -> float:
        """Share of Atlas blocks also seen by Verfploeter (paper: ~77%)."""
        if self.atlas_responding_blocks == 0:
            return 0.0
        return self.overlap_blocks / self.atlas_responding_blocks
