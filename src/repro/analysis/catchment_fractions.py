"""Table 6: catchment fraction of one site, by measurement method.

The paper quantifies B-Root's LAX share five ways: Atlas VPs on two
dates, Verfploeter /24s on two dates, load-weighted Verfploeter, and
the actual measured load.  :class:`MethodRow` is one line of that
table; the bench assembles the rows from live measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.report import render_table
from repro.collector.results import ScanResult


def fraction_series(
    scans: Sequence[ScanResult], site_code: str
) -> np.ndarray:
    """Per-round catchment fraction of ``site_code`` across ``scans``.

    The time series behind the paper's day-over-day share comparisons
    (Table 6's Verfploeter rows, tracked per round).  Array-backed
    catchments answer each ``fraction_of`` with a vectorised count.
    """
    return np.array(
        [scan.catchment.fraction_of(site_code) for scan in scans],
        dtype=np.float64,
    )


@dataclass(frozen=True)
class MethodRow:
    """One row of Table 6."""

    date: str
    method: str
    measurement: str
    fraction: float


def format_method_table(rows: List[MethodRow], site_code: str) -> str:
    """Render Table 6 for ``site_code``."""
    return render_table(
        ["Date", "Method", "Measurement", f"% {site_code}"],
        [
            (row.date, row.method, row.measurement, f"{row.fraction:.1%}")
            for row in rows
        ],
        title=f"Table 6: {site_code} catchment share by measurement method",
    )
