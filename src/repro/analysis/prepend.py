"""Figures 5 and 6: prepending sweeps and predicted hourly load."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.analysis.results import PrependMeasurement
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN, weight_catchment


def prepend_rows(
    measurements: Sequence[PrependMeasurement], site_code: str
) -> List[Tuple[str, float, float]]:
    """Figure 5 series: (config label, Atlas fraction, Verfploeter fraction)."""
    return [
        (
            entry.label,
            entry.atlas_fraction_of(site_code),
            entry.verfploeter_fraction_of(site_code),
        )
        for entry in measurements
    ]


def format_prepend_table(
    measurements: Sequence[PrependMeasurement], site_code: str
) -> str:
    """Render Figure 5 as a table."""
    return render_table(
        ["prepending", f"Atlas VPs to {site_code}", f"Verfploeter /24s to {site_code}"],
        [
            (label, f"{atlas:.3f}", f"{verf:.3f}")
            for label, atlas, verf in prepend_rows(measurements, site_code)
        ],
        title=f"Figure 5: fraction of traffic to {site_code} vs prepending",
    )


def hourly_load_by_config(
    measurements: Sequence[PrependMeasurement],
    estimate: LoadEstimate,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Figure 6 series: config label -> site -> hourly predicted load (q/s).

    Combines each prepending configuration's measured catchment with the
    historical per-block load, exactly as the paper does with SBV-4-21
    catchments and LB-4-12 DITL load.
    """
    result: Dict[str, Dict[str, np.ndarray]] = {}
    for entry in measurements:
        site_load = weight_catchment(entry.scan.catchment, estimate, hourly=True)
        series: Dict[str, np.ndarray] = {}
        for site in (*entry.scan.catchment.site_codes, UNKNOWN):
            series[site] = site_load.hourly_of(site) / 3600.0
        result[entry.label] = series
    return result


def format_hourly_load_table(
    hourly: Dict[str, Dict[str, np.ndarray]],
    sites: Sequence[str],
    sample_hours: Sequence[int] = (0, 6, 12, 18),
) -> str:
    """Render Figure 6 as a condensed table (mean q/s at sampled hours)."""
    rows = []
    for label, series in hourly.items():
        for site in (*sites, UNKNOWN):
            values = series.get(site)
            if values is None:
                continue
            rows.append(
                (
                    label,
                    site,
                    *[f"{values[hour]:,.0f}" for hour in sample_hours],
                )
            )
    return render_table(
        ["config", "site", *[f"{hour:02d}h q/s" for hour in sample_hours]],
        rows,
        title="Figure 6: predicted per-site load under prepending configs",
    )
