"""Anycast latency inflation.

BGP picks the *policy*-closest site, not the latency-closest one; the
gap is the latency inflation operators hunt for (the paper's companion
work, Schmidt et al. "Anycast latency: how many sites are enough?"
[43], which §7 suggests Verfploeter RTTs can feed).  This module
compares each mapped block's measured RTT against its optimal-site RTT
and summarises the inflation distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import render_table
from repro.collector.results import ScanResult
from repro.icmp.latency import LatencyModel


@dataclass(frozen=True)
class InflationSummary:
    """Distribution of per-block latency inflation (measured - optimal)."""

    blocks: int
    optimal_blocks: int
    median_ms: float
    p90_ms: float
    worst_ms: float
    mean_measured_ms: float
    mean_optimal_ms: float

    @property
    def optimal_fraction(self) -> float:
        """Share of blocks already served by their latency-best site."""
        return self.optimal_blocks / self.blocks if self.blocks else 0.0


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def inflation_per_block(
    scan: ScanResult, latency: LatencyModel, round_id: int = 0
) -> Dict[int, Tuple[float, float, str]]:
    """Per mapped block: (measured RTT, optimal RTT, optimal site).

    Measured RTT comes from the scan; the optimal RTT is the best any
    site could offer under the same latency model.  Blocks without
    geolocation are skipped (their optimum is unknowable).
    """
    result: Dict[int, Tuple[float, float, str]] = {}
    if not scan.rtts:
        return result
    for block, measured in scan.rtts.items():
        best_site: Optional[str] = None
        best_rtt: Optional[float] = None
        for site_code in scan.catchment.site_codes:
            rtt = latency.rtt_ms(block, site_code, round_id)
            if rtt is not None and (best_rtt is None or rtt < best_rtt):
                best_rtt, best_site = rtt, site_code
        if best_rtt is None:
            continue
        result[block] = (measured, best_rtt, best_site)
    return result


def summarize_inflation(
    scan: ScanResult, latency: LatencyModel, round_id: int = 0
) -> InflationSummary:
    """Aggregate the per-block inflation into the headline numbers."""
    per_block = inflation_per_block(scan, latency, round_id)
    inflations: List[float] = []
    optimal = 0
    measured_sum = 0.0
    optimal_sum = 0.0
    for block, (measured, best, best_site) in per_block.items():
        inflation = max(0.0, measured - best)
        inflations.append(inflation)
        measured_sum += measured
        optimal_sum += best
        if scan.catchment.site_of(block) == best_site:
            optimal += 1
    count = len(inflations)
    return InflationSummary(
        blocks=count,
        optimal_blocks=optimal,
        median_ms=_percentile(inflations, 0.50),
        p90_ms=_percentile(inflations, 0.90),
        worst_ms=max(inflations, default=0.0),
        mean_measured_ms=measured_sum / count if count else 0.0,
        mean_optimal_ms=optimal_sum / count if count else 0.0,
    )


def format_inflation_table(summary: InflationSummary) -> str:
    """Render the inflation summary."""
    rows = [
        ("blocks analysed", summary.blocks),
        ("served by latency-best site", f"{summary.optimal_fraction:.1%}"),
        ("median inflation (ms)", f"{summary.median_ms:.0f}"),
        ("p90 inflation (ms)", f"{summary.p90_ms:.0f}"),
        ("worst inflation (ms)", f"{summary.worst_ms:.0f}"),
        ("mean measured RTT (ms)", f"{summary.mean_measured_ms:.0f}"),
        ("mean optimal RTT (ms)", f"{summary.mean_optimal_ms:.0f}"),
    ]
    return render_table(["metric", "value"], rows,
                        title="Anycast latency inflation (BGP vs optimal)")
