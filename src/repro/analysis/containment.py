"""Catchment containment: do catchments respect borders?

The paper's opening motivation (§1): catchments interact with national
filtering policies — the Beijing I-Root site once served queries from
outside China (exporting censorship), and a Tehran K-Root site's
catchment leaked beyond Iran.  Given a catchment map, this module
measures both directions of mismatch for a (country, site) pairing:

* **leakage** — blocks *outside* the country served by its site;
* **escape** — blocks *inside* the country served by other sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import render_table
from repro.anycast.catchment import CatchmentMap
from repro.geo.geodb import GeoDatabase


@dataclass(frozen=True)
class ContainmentReport:
    """Containment of one site relative to one country."""

    site_code: str
    country_code: str
    inside_at_site: int
    inside_elsewhere: int
    outside_at_site: int

    @property
    def leakage_fraction(self) -> float:
        """Share of the site's catchment lying outside the country.

        The I-Root-Beijing failure mode: >0 means foreign networks are
        subject to whatever policy the in-country site applies.
        """
        total = self.inside_at_site + self.outside_at_site
        return self.outside_at_site / total if total else 0.0

    @property
    def containment_fraction(self) -> float:
        """Share of the country's blocks actually served by the site."""
        total = self.inside_at_site + self.inside_elsewhere
        return self.inside_at_site / total if total else 0.0


def containment_report(
    catchment: CatchmentMap,
    geodb: GeoDatabase,
    site_code: str,
    country_code: str,
) -> ContainmentReport:
    """Measure how well ``site_code``'s catchment aligns with a country."""
    inside_at_site = inside_elsewhere = outside_at_site = 0
    for block, site in catchment.items():
        country = geodb.country_of(block)
        if country is None:
            continue
        if country == country_code:
            if site == site_code:
                inside_at_site += 1
            else:
                inside_elsewhere += 1
        elif site == site_code:
            outside_at_site += 1
    return ContainmentReport(
        site_code=site_code,
        country_code=country_code,
        inside_at_site=inside_at_site,
        inside_elsewhere=inside_elsewhere,
        outside_at_site=outside_at_site,
    )


def country_site_matrix(
    catchment: CatchmentMap, geodb: GeoDatabase, country_code: str
) -> Dict[str, int]:
    """How a country's blocks distribute over sites (who serves them)."""
    counts: Dict[str, int] = {}
    for block, site in catchment.items():
        if geodb.country_of(block) == country_code:
            counts[site] = counts.get(site, 0) + 1
    return counts


def format_containment_table(reports: List[ContainmentReport]) -> str:
    """Render containment reports side by side."""
    rows = [
        (
            report.site_code,
            report.country_code,
            report.inside_at_site,
            report.inside_elsewhere,
            report.outside_at_site,
            f"{report.containment_fraction:.1%}",
            f"{report.leakage_fraction:.1%}",
        )
        for report in reports
    ]
    return render_table(
        ["site", "country", "inside@site", "inside@other",
         "outside@site", "containment", "leakage"],
        rows,
        title="Catchment containment vs national borders (paper §1)",
    )
