"""Table 7 and Figure 9: catchment stability and flip concentration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.analysis.results import StabilityRound, StabilitySeries
from repro.topology.internet import Internet


@dataclass(frozen=True)
class FlipTableRow:
    """One row of Table 7: an AS involved in catchment flips."""

    rank: int
    asn: int
    name: str
    flipping_blocks: int
    flips: int
    fraction: float


def flip_table(
    series: StabilitySeries, internet: Internet, top: int = 5
) -> List[FlipTableRow]:
    """Aggregate flips per AS: the paper's Table 7 (plus Other/Total rows)."""
    flips_by_as: Dict[int, int] = {}
    blocks_by_as: Dict[int, Set[int]] = {}
    flip_blocks = list(series.flip_counts)
    # One bulk join replaces a dict probe per flipping block; walking the
    # result in flip_counts order keeps first-seen AS insertion order, so
    # the stable sort below ranks ties exactly as before.
    asns = (
        internet.asns_of_blocks(np.asarray(flip_blocks, dtype=np.int64))
        if flip_blocks
        else []
    )
    for block, asn_value in zip(flip_blocks, asns):
        asn = int(asn_value)
        count = series.flip_counts[block]
        flips_by_as[asn] = flips_by_as.get(asn, 0) + count
        blocks_by_as.setdefault(asn, set()).add(block)
    total_flips = series.total_flips()
    total_blocks = len(series.flipping_blocks())
    ranked: List[Tuple[int, int]] = sorted(
        flips_by_as.items(), key=lambda item: -item[1]
    )
    rows: List[FlipTableRow] = []
    for rank, (asn, flips) in enumerate(ranked[:top], 1):
        rows.append(
            FlipTableRow(
                rank=rank,
                asn=asn,
                name=internet.ases[asn].name,
                flipping_blocks=len(blocks_by_as[asn]),
                flips=flips,
                fraction=flips / total_flips if total_flips else 0.0,
            )
        )
    other_flips = sum(flips for _, flips in ranked[top:])
    other_blocks = sum(len(blocks_by_as[asn]) for asn, _ in ranked[top:])
    rows.append(
        FlipTableRow(
            rank=0,
            asn=-1,
            name="Other",
            flipping_blocks=other_blocks,
            flips=other_flips,
            fraction=other_flips / total_flips if total_flips else 0.0,
        )
    )
    rows.append(
        FlipTableRow(
            rank=0,
            asn=-1,
            name="Total",
            flipping_blocks=total_blocks,
            flips=total_flips,
            fraction=1.0 if total_flips else 0.0,
        )
    )
    return rows


def format_flip_table(rows: List[FlipTableRow]) -> str:
    """Render Table 7."""
    return render_table(
        ["#", "AS", "IPs (/24s)", "Flips", "Frac."],
        [
            (
                row.rank or "",
                row.name if row.asn < 0 else f"AS{row.asn} {row.name}",
                row.flipping_blocks,
                row.flips,
                f"{row.fraction:.2f}",
            )
            for row in rows
        ],
        title="Table 7: top ASes involved in catchment flips",
    )


def stability_rows(series: StabilitySeries) -> List[StabilityRound]:
    """Per-round transition counts (the Figure 9 time series)."""
    return list(series.rounds)


def format_stability_table(series: StabilitySeries, every: int = 8) -> str:
    """Render a condensed Figure 9 table plus the medians the paper quotes."""
    sampled = [
        entry for index, entry in enumerate(series.rounds) if index % every == 0
    ]
    table = render_table(
        ["round", "stable", "flipped", "to_NR", "from_NR"],
        [
            (entry.round_id, entry.stable, entry.flipped, entry.to_nr, entry.from_nr)
            for entry in sampled
        ],
        title="Figure 9: per-round stability (sampled)",
    )
    return (
        f"{table}\n"
        f"medians over {series.round_count} rounds: "
        f"stable={series.median_of('stable'):.0f} "
        f"flipped={series.median_of('flipped'):.0f} "
        f"to_NR={series.median_of('to_nr'):.0f} "
        f"from_NR={series.median_of('from_nr'):.0f}"
    )
