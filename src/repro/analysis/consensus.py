"""Consensus catchments across repeated scans.

A single round misses churned blocks (paper §3.1: "we could improve
the response rate by ... retrying"); merging several rounds raises
coverage, and per-block agreement across rounds grades how trustworthy
each mapping is — the flip-prone blocks of §6.3 show up as low
agreement.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.anycast.catchment import CatchmentMap
from repro.collector.results import ScanResult
from repro.errors import DatasetError


def merge_scans(scans: Sequence[ScanResult]) -> CatchmentMap:
    """Majority-vote catchment over several rounds.

    Every block seen in any round is mapped; the site seen most often
    wins (ties break toward the most recent round — routing now beats
    routing then).
    """
    if not scans:
        raise DatasetError("cannot merge zero scans")
    site_codes = scans[0].catchment.site_codes
    votes: Dict[int, Dict[str, int]] = {}
    latest: Dict[int, str] = {}
    for scan in sorted(scans, key=lambda s: s.round_id):
        for block, site in scan.catchment.items():
            votes.setdefault(block, {})
            votes[block][site] = votes[block].get(site, 0) + 1
            latest[block] = site
    mapping: Dict[int, str] = {}
    for block, counts in votes.items():
        best = max(counts.values())
        winners = [site for site, count in counts.items() if count == best]
        mapping[block] = latest[block] if latest[block] in winners else winners[0]
    return CatchmentMap(site_codes, mapping)


def agreement_scores(scans: Sequence[ScanResult]) -> Dict[int, float]:
    """Per-block agreement: modal-site share of the rounds that saw it.

    1.0 means every observation agreed; flip-prone blocks score lower.
    """
    if not scans:
        raise DatasetError("cannot score zero scans")
    votes: Dict[int, Dict[str, int]] = {}
    for scan in scans:
        for block, site in scan.catchment.items():
            votes.setdefault(block, {})
            votes[block][site] = votes[block].get(site, 0) + 1
    return {
        block: max(counts.values()) / sum(counts.values())
        for block, counts in votes.items()
    }


def coverage_gain(scans: Sequence[ScanResult]) -> List[Tuple[int, int]]:
    """Cumulative distinct blocks after each successive round.

    The marginal gain shrinks fast: round one finds the stable
    responders; later rounds only recover churn.
    """
    if not scans:
        raise DatasetError("cannot analyse zero scans")
    seen: set = set()
    series: List[Tuple[int, int]] = []
    for scan in sorted(scans, key=lambda s: s.round_id):
        seen.update(scan.catchment.blocks())
        series.append((scan.round_id, len(seen)))
    return series
