"""Fixed-width text table rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table.

    Numbers are right-aligned, everything else left-aligned; floats are
    shown with sensible precision.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) < 1:
                return f"{value:.4f}"
            return f"{value:,.2f}"
        if isinstance(value, int):
            return f"{value:,}"
        return str(value)

    text_rows: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def align(cell: str, index: int, numeric: bool) -> str:
        return cell.rjust(widths[index]) if numeric else cell.ljust(widths[index])

    numeric_columns = [
        all(
            row[index].replace(",", "").replace(".", "").replace("-", "").isdigit()
            or row[index] in ("", "0")
            for row in text_rows
            if index < len(row) and row[index]
        )
        for index in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append(
            "  ".join(
                align(cell, index, numeric_columns[index])
                for index, cell in enumerate(row)
            )
        )
    return "\n".join(lines)
