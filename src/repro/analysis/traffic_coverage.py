"""Table 5: how much of the service's real traffic Verfploeter can map."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.anycast.catchment import CatchmentMap
from repro.load.estimator import LoadEstimate


@dataclass(frozen=True)
class TrafficCoverage:
    """Blocks and queries seen at the service, split by mappability."""

    blocks_seen: int
    blocks_mapped: int
    queries_seen: float
    queries_mapped: float

    @property
    def blocks_unmapped(self) -> int:
        """Traffic-sending blocks Verfploeter could not map."""
        return self.blocks_seen - self.blocks_mapped

    @property
    def queries_unmapped(self) -> float:
        """Daily queries from unmappable blocks."""
        return self.queries_seen - self.queries_mapped

    @property
    def block_coverage(self) -> float:
        """Fraction of traffic-sending blocks mapped (paper: 87.1%)."""
        return self.blocks_mapped / self.blocks_seen if self.blocks_seen else 0.0

    @property
    def query_coverage(self) -> float:
        """Fraction of queries from mapped blocks (paper: 82.4%)."""
        return self.queries_mapped / self.queries_seen if self.queries_seen else 0.0


def traffic_coverage(
    catchment: CatchmentMap, estimate: LoadEstimate
) -> TrafficCoverage:
    """Compute Table 5 from a measured catchment and a day of logs."""
    blocks_seen = 0
    blocks_mapped = 0
    queries_seen = 0.0
    queries_mapped = 0.0
    daily = estimate.source.daily_of_kind(estimate.kind)
    for row, block in enumerate(estimate.blocks):
        volume = float(daily[row])
        if volume <= 0:
            continue
        blocks_seen += 1
        queries_seen += volume
        if catchment.site_of(int(block)) is not None:
            blocks_mapped += 1
            queries_mapped += volume
    return TrafficCoverage(blocks_seen, blocks_mapped, queries_seen, queries_mapped)


def format_traffic_coverage(coverage: TrafficCoverage) -> str:
    """Render Table 5."""
    rows = [
        ("seen at service", coverage.blocks_seen, "100%",
         coverage.queries_seen, "100%"),
        ("mapped by Verfploeter", coverage.blocks_mapped,
         f"{coverage.block_coverage:.1%}",
         coverage.queries_mapped, f"{coverage.query_coverage:.1%}"),
        ("not mappable", coverage.blocks_unmapped,
         f"{1 - coverage.block_coverage:.1%}",
         coverage.queries_unmapped, f"{1 - coverage.query_coverage:.1%}"),
    ]
    return render_table(
        ["", "/24s", "%", "q/day", "%"],
        rows,
        title="Table 5: coverage of Verfploeter from the service's traffic",
    )
