"""Site-placement suggestions from Verfploeter RTTs (paper §7).

The paper's future-work idea, implemented: the RTT of each mapped block
to its serving site reveals regions that are poorly served; clustering
the high-RTT, high-weight blocks geographically suggests where a new
anycast site would help most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.collector.results import ScanResult
from repro.errors import ConfigurationError
from repro.geo.geodb import GeoDatabase
from repro.geo.grid import GeoGrid
from repro.load.estimator import LoadEstimate


@dataclass(frozen=True)
class PlacementSuggestion:
    """One candidate location for a new anycast site."""

    latitude: float
    longitude: float
    affected_blocks: int
    affected_weight: float
    median_rtt_ms: float

    def __str__(self) -> str:
        return (
            f"({self.latitude:+.0f}, {self.longitude:+.0f}): "
            f"{self.affected_blocks} blocks, median RTT "
            f"{self.median_rtt_ms:.0f} ms"
        )


def underserved_blocks(
    scan: ScanResult, rtt_threshold_ms: float = 120.0
) -> Dict[int, float]:
    """Blocks whose measured RTT to their serving site exceeds threshold."""
    if not scan.rtts:
        return {}
    return {
        block: rtt for block, rtt in scan.rtts.items() if rtt > rtt_threshold_ms
    }


def suggest_sites(
    scan: ScanResult,
    geodb: GeoDatabase,
    count: int = 3,
    rtt_threshold_ms: float = 120.0,
    cell_degrees: float = 10.0,
    estimate: Optional[LoadEstimate] = None,
) -> List[PlacementSuggestion]:
    """Suggest up to ``count`` locations for new anycast sites.

    Bins every underserved block into coarse geographic cells, weighting
    by query load when an estimate is given (latency relief matters most
    where the traffic is), and returns the heaviest cells' centroids.
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    slow = underserved_blocks(scan, rtt_threshold_ms)
    if not slow:
        return []
    grid = GeoGrid(cell_degrees)
    cell_blocks: Dict[Tuple[int, int], List[Tuple[int, float]]] = {}
    for block, rtt in slow.items():
        record = geodb.locate(block)
        if record is None:
            continue
        weight = estimate.of_block(block) if estimate is not None else 1.0
        if weight <= 0:
            weight = 0.01  # quiet blocks still deserve some pull
        grid.add(record.latitude, record.longitude, "slow", weight)
        key = (
            int((record.latitude + 90.0) // cell_degrees),
            int((record.longitude + 180.0) // cell_degrees),
        )
        cell_blocks.setdefault(key, []).append((block, rtt))
    suggestions: List[PlacementSuggestion] = []
    for cell in grid.top_cells(count):
        key = (cell.lat_index, cell.lon_index)
        members = cell_blocks.get(key, [])
        if not members:
            continue
        rtts = sorted(rtt for _, rtt in members)
        suggestions.append(
            PlacementSuggestion(
                latitude=cell.lat_index * cell_degrees - 90.0 + cell_degrees / 2,
                longitude=cell.lon_index * cell_degrees - 180.0 + cell_degrees / 2,
                affected_blocks=len(members),
                affected_weight=cell.total,
                median_rtt_ms=rtts[len(rtts) // 2],
            )
        )
    return suggestions


def rtt_summary_by_site(scan: ScanResult) -> Dict[str, Tuple[int, float]]:
    """Per-site (mapped blocks, median RTT ms) from one scan."""
    summary: Dict[str, Tuple[int, float]] = {}
    for site in scan.catchment.site_codes:
        median = scan.median_rtt_of_site(site)
        if median is not None:
            summary[site] = (len(scan.catchment.blocks_of_site(site)), median)
    return summary
