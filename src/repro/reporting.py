"""One-shot reproduction reports.

``generate_full_report`` runs the paper's whole evaluation on one
scenario — coverage, traffic coverage, method comparison, prepending
sweep, hourly load, stability, flip concentration, divisions, maps,
plus this library's latency-inflation and containment extensions — and
writes a single self-contained markdown report plus the scan dataset.
Exposed on the CLI as ``python -m repro paper``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional

from repro.analysis.coverage import format_coverage_table
from repro.analysis.divisions import (
    format_as_division_table,
    format_prefix_division_table,
)
from repro.analysis.flips import flip_table, format_flip_table, format_stability_table
from repro.analysis.inflation import format_inflation_table, summarize_inflation
from repro.analysis.maps import atlas_grid, catchment_grid, load_grid, render_ascii_map
from repro.analysis.prepend import format_prepend_table
from repro.analysis.catchment_fractions import MethodRow, format_method_table
from repro.analysis.traffic_coverage import format_traffic_coverage, traffic_coverage
from repro.bgp.cache import RoutingCache
from repro.core.comparison import compare_coverage
from repro.core.experiments import prepend_sweep, run_stability_series
from repro.core.scenarios import Scenario
from repro.core.verfploeter import Verfploeter
from repro.datasets import write_scan
from repro.load.estimator import LoadEstimate
from repro.load.prediction import compare_prediction, measured_site_load
from repro.load.weighting import weight_catchment
from repro.obs import NULL_OBSERVER, Observer, run_metadata


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n\n"


def generate_full_report(
    scenario: Scenario,
    output_dir: Path,
    stability_rounds: int = 24,
    day_queries: Optional[float] = None,
    observer: Optional[Observer] = None,
) -> Path:
    """Run the full evaluation on ``scenario``; return the report path.

    Writes ``REPORT.md`` and the primary scan dataset
    (``scan.tsv``) into ``output_dir`` (created if needed).  With a
    collecting ``observer``, also writes ``metrics.json`` and
    ``trace.json`` sidecars — both embedding the same run-metadata
    block (scenario, scale, seed, fingerprint) the ``BENCH_*.json``
    baselines carry, so report artifacts and benchmark timings from the
    same seeded run are joinable by fingerprint — and appends an
    Observability section to the report.
    """
    if observer is None:
        observer = NULL_OBSERVER
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    cache = RoutingCache(observer=observer)
    routing = verfploeter.routing_for()
    scan = verfploeter.run_scan(routing=routing, dataset_id="report-scan",
                                wire_level=False)
    atlas_measurement = scenario.atlas.measure(routing, scenario.service)
    load = scenario.day_load("report-day", target_total_queries=day_queries)
    estimate = LoadEstimate(load)

    parts = [
        f"# Verfploeter reproduction report — scenario `{scenario.name}` "
        f"({scenario.scale})\n\n"
        f"topology: {scenario.internet.summary()}; "
        f"service: {scenario.service.name} with sites "
        f"{scenario.service.site_codes}\n\n"
    ]

    parts.append(_section(
        "Coverage: Atlas vs Verfploeter (paper Table 4)",
        format_coverage_table(
            compare_coverage(atlas_measurement, scan, scenario.internet)
        ),
    ))
    parts.append(_section(
        "Traffic coverage (paper Table 5)",
        format_traffic_coverage(traffic_coverage(scan.catchment, estimate)),
    ))

    primary = scenario.service.site_codes[0]
    predicted = weight_catchment(scan.catchment, estimate, observer=observer)
    measured = measured_site_load(routing, estimate)
    comparison = compare_prediction(predicted, measured)
    rows = [
        MethodRow("report-day", "Atlas",
                  f"{atlas_measurement.responding_vps} VPs",
                  atlas_measurement.fraction_of(primary)),
        MethodRow("report-day", "Verfploeter",
                  f"{scan.mapped_blocks} /24s",
                  scan.catchment.fraction_of(primary)),
        MethodRow("report-day", "Verfploeter + load",
                  f"{predicted.total():,.0f} q/day",
                  predicted.fraction_of(primary)),
        MethodRow("report-day", "Actual load",
                  f"{measured.total():,.0f} q/day",
                  measured.fraction_of(primary)),
    ]
    parts.append(_section(
        "Catchment share by method (paper Table 6)",
        format_method_table(rows, primary)
        + f"\nsame-day prediction error: {comparison.error_of(primary):.2%}",
    ))

    sweep = prepend_sweep(
        verfploeter, scenario.atlas,
        configs=tuple(
            [("equal", {})]
            + [(f"+{n} {primary}", {primary: n}) for n in (1, 2)]
        ),
        cache=cache,
    )
    parts.append(_section(
        "Prepending sweep (paper Figure 5)",
        format_prepend_table(sweep, primary),
    ))

    series = run_stability_series(
        verfploeter, rounds=stability_rounds, fast=True, cache=cache
    )
    parts.append(_section(
        "Stability (paper Figure 9)",
        format_stability_table(series, every=max(1, stability_rounds // 6)),
    ))
    parts.append(_section(
        "Flip concentration (paper Table 7)",
        format_flip_table(flip_table(series, scenario.internet)),
    ))
    stable = series.stable_catchment()
    parts.append(_section(
        "Intra-AS divisions (paper Figure 7)",
        format_as_division_table(stable, scenario.internet),
    ))
    parts.append(_section(
        "Per-prefix divisions (paper Figure 8)",
        format_prefix_division_table(stable, scenario.internet),
    ))

    parts.append(_section(
        "Verfploeter coverage map (paper Figure 2b/3b)",
        render_ascii_map(catchment_grid(scan.catchment, scenario.internet.geodb, 4.0)),
    ))
    parts.append(_section(
        "Atlas coverage map (paper Figure 2a/3a)",
        render_ascii_map(atlas_grid(atlas_measurement, 4.0)),
    ))
    parts.append(_section(
        "Load map (paper Figure 4a)",
        render_ascii_map(
            load_grid(scan.catchment, estimate, scenario.internet.geodb, 4.0)
        ),
    ))

    from repro.core.playbook import (
        PlaybookPlanner,
        derive_capacities,
        format_playbook_table,
    )
    from repro.traffic.attack import AttackProfile, compose_attack

    planner = PlaybookPlanner(verfploeter, cache=cache)
    attacked = max(
        sorted(scenario.service.site_codes), key=predicted.daily_of
    )
    attack_profile = AttackProfile(target_site=attacked)
    attack_day, attackers = compose_attack(
        load, scan.catchment, attack_profile, scenario.internet.seed
    )
    playbook = planner.plan(
        LoadEstimate(attack_day),
        attacked,
        derive_capacities(predicted, scenario.service.site_codes),
        max_prepend=2,
        depth=1,
        attack=attack_profile,
        attacker_count=len(attackers),
    )
    recommendation = playbook.recommendation
    parts.append(_section(
        "DDoS playbook (extension, Anycast Agility)",
        format_playbook_table(playbook, top=6)
        + f"\nrecommended config: {recommendation.label}; "
        f"absorber {recommendation.absorber}; "
        + ("clears all capacity violations"
           if recommendation.clears_violations
           else "violations remain (see docs/playbooks.md)"),
    ))

    parts.append(_section(
        "Latency inflation (extension, paper §7)",
        format_inflation_table(
            summarize_inflation(scan, verfploeter.latency_model)
        ),
    ))

    if observer.enabled:
        meta = run_metadata(
            scenario=scenario.name,
            scale=scenario.scale,
            seed=scenario.internet.seed,
            stability_rounds=stability_rounds,
        )
        (output_dir / "metrics.json").write_text(
            observer.metrics.to_json(meta=meta) + "\n", encoding="utf-8"
        )
        (output_dir / "trace.json").write_text(
            observer.tracer.to_json(meta=meta) + "\n", encoding="utf-8"
        )
        parts.append(_section(
            "Observability (this run's pipeline metrics)",
            observer.metrics.render_text(title="pipeline metrics")
            + f"\nrun fingerprint: {meta['fingerprint']}"
            + "\nfull trace: trace.json; full metrics: metrics.json",
        ))

    report_path = output_dir / "REPORT.md"
    report_path.write_text("".join(parts), encoding="utf-8")
    scan_buffer = io.StringIO()
    write_scan(scan, scan_buffer)
    (output_dir / "scan.tsv").write_text(scan_buffer.getvalue(), encoding="utf-8")
    return report_path
