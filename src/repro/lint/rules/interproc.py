"""Inter-procedural rules (family ``W5xx``) over the whole-program index.

Three hazards are invisible to any single-file pass:

* **W501** — seed-taint tracking.  ``derive_seed``/``derive_rng``
  labels are followed *across call edges*: a helper that forwards a
  caller-supplied label is expanded at each call site, so two modules
  that independently materialise the same effective label are caught
  even though no single file contains both literals.  The same pass
  tracks unseeded randomness (global ``random`` state, ``Random()``
  with no seed, ``numpy.random``) through the call graph and flags
  library call sites that reach it cross-module — a per-line
  suppression on the draw itself does not sanction distant callers.
* **W502** — pool-escape analysis.  Any state mutated by a function
  reachable from a process-pool submit target must not be a module
  global: under the ``spawn`` start method each worker re-imports the
  module, so parent and worker copies diverge silently.  This extends
  the per-file D112 hygiene check transitively.
* **W503** — order-sensitive float accumulation.  Functions reachable
  from shard workers or ``parallel=`` thread fan-outs must not grow
  float accumulators in loops: float addition is non-associative, so
  any accumulation whose order can depend on shard boundaries or
  completion order breaks bit-identity.

All three rules share one :class:`WholeProgramContext` (built lazily by
the engine) holding the :class:`~repro.lint.index.ProjectIndex` and
:class:`~repro.lint.callgraph.CallGraph` for the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import CallGraph, CallSite, format_chain
from repro.lint.index import FunctionInfo, ModuleInfo, ProjectIndex
from repro.lint.rules.determinism import _ImportMap, _RANDOM_GLOBAL_FNS
from repro.lint.rules.seeds import _HOLE, _template_regex
from repro.lint.violations import LIBRARY, Violation, register_rule

_DERIVE_NAMES = ("derive_seed", "derive_rng")

_PROCESS_POOL_CTORS = frozenset({"ProcessPoolExecutor", "Pool", "ShardPool"})
_THREAD_POOL_CTORS = frozenset({"ThreadPoolExecutor"})

_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault", "pop",
        "popitem", "remove", "discard", "clear", "appendleft", "move_to_end",
    }
)

#: Module-level bindings to these constructors are synchronisation
#: primitives: unpicklable, and re-created per spawn worker on module
#: re-import, so cross-process exclusion through them silently fails.
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event", "Barrier"}
)


class WholeProgramContext:
    """Shared per-run analysis state: parsed files, index, call graph.

    The engine builds one context per lint run and hands it to every
    project rule whose class sets ``wants_context = True``; the index
    and graph are constructed on first use and shared by all of them.
    """

    def __init__(self, files: Sequence[object]) -> None:
        self.files = list(files)
        self._index: Optional[ProjectIndex] = None
        self._graph: Optional[CallGraph] = None
        self._roots: Optional[Dict[str, "PoolRoot"]] = None

    @property
    def index(self) -> ProjectIndex:
        if self._index is None:
            self._index = ProjectIndex.build(self.files)
        return self._index

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = CallGraph(self.index)
        return self._graph

    @property
    def pool_roots(self) -> Dict[str, "PoolRoot"]:
        if self._roots is None:
            self._roots = _discover_pool_roots(self.index)
        return self._roots


@dataclass(frozen=True)
class PoolRoot:
    """One function that executes as a pool submit/map target."""

    qualname: str
    kind: str  # "process" | "thread"
    path: str
    line: int


# -- pool-root discovery ---------------------------------------------------


def _ctor_kind(name: Optional[str]) -> Optional[str]:
    if name in _PROCESS_POOL_CTORS:
        return "process"
    if name in _THREAD_POOL_CTORS:
        return "thread"
    return None


def _pool_ctor_kind(value: ast.AST) -> Optional[str]:
    """Pool kind of an expression that constructs a pool, if any.

    Handles the bare ctor and one level of wrapping —
    ``stack.enter_context(ProcessPoolExecutor(...))`` — which is how
    pools are opened inside an ``ExitStack``.
    """
    if not isinstance(value, ast.Call):
        return None
    kind = _ctor_kind(_callee_attr(value.func))
    if kind is not None:
        return kind
    for argument in value.args:
        if isinstance(argument, ast.Call):
            kind = _ctor_kind(_callee_attr(argument.func))
            if kind is not None:
                return kind
    return None


def _callee_attr(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _nested_defs(root: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for outer in ast.walk(root):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(inner.name)
    return names


def _map_call_args(
    info: FunctionInfo, call: ast.Call
) -> Dict[str, ast.AST]:
    """Map a call's arguments onto ``info``'s parameter names."""
    params = list(info.params)
    if info.class_name is not None and params and params[0] == "self":
        params = params[1:]
    bound: Dict[str, ast.AST] = {}
    for position, argument in enumerate(call.args):
        if position < len(params):
            bound[params[position]] = argument
    for keyword in call.keywords:
        if keyword.arg is not None:
            bound[keyword.arg] = keyword.value
    return bound


def _discover_pool_roots(index: ProjectIndex) -> Dict[str, PoolRoot]:
    """Every pool submit/map target in the project, resolved.

    Targets that are nested ``def``s or lambdas attribute to the
    enclosing function; targets that are *parameters* of the enclosing
    function mark it as a higher-order pool host, and a second pass
    promotes the callables its callers pass in.
    """
    roots: Dict[str, PoolRoot] = {}
    hosts: Dict[str, str] = {}  # host qualname -> parameter name

    def add_root(qualname: str, kind: str, path: str, line: int) -> None:
        existing = roots.get(qualname)
        # A process root outranks a thread root for the same function.
        if existing is None or (existing.kind == "thread" and kind == "process"):
            roots[qualname] = PoolRoot(qualname, kind, path, line)

    scopes: List[Tuple[ModuleInfo, ast.AST, str, Optional[str], Optional[FunctionInfo]]] = []
    for module in index.modules.values():
        module_level = ast.Module(
            body=[
                node
                for node in module.tree.body
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ],
            type_ignores=[],
        )
        scopes.append((module, module_level, module.name, None, None))
        for info in module.functions.values():
            scopes.append((module, info.node, info.qualname, info.class_name, info))

    for module, scope, owner, class_name, info in scopes:
        pools: Dict[str, str] = {}  # local name -> "process"/"thread"
        submitters: Dict[str, str] = {}  # name bound to pool.submit/pool.map
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                kind = _pool_ctor_kind(node.value)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            pools[target.id] = kind
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        kind = _pool_ctor_kind(item.context_expr)
                        if kind is not None:
                            pools[item.optional_vars.id] = kind
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr in ("submit", "map")
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id in pools
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        submitters[target.id] = pools[node.value.value.id]
        nested = _nested_defs(scope)
        params = set(info.params) if info is not None else set()
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            kind = None
            target: Optional[ast.AST] = None
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("submit", "map")
                and isinstance(func.value, ast.Name)
                and func.value.id in pools
                and node.args
            ):
                kind = pools[func.value.id]
                target = node.args[0]
            elif (
                isinstance(func, ast.Name)
                and func.id in submitters
                and node.args
            ):
                kind = submitters[func.id]
                target = node.args[0]
            if kind is None or target is None:
                continue
            if isinstance(target, ast.Lambda):
                if info is not None:
                    add_root(owner, kind, module.path, target.lineno)
                continue
            if isinstance(target, ast.Name):
                if target.id in params:
                    hosts[owner] = target.id
                    add_root(owner, kind, module.path, target.lineno)
                    continue
                if target.id in nested:
                    if info is not None:
                        add_root(owner, kind, module.path, target.lineno)
                    continue
            resolved = index.resolve(module, target, class_name)
            if resolved is not None and resolved in index.functions:
                add_root(resolved, kind, module.path, target.lineno)

    # Second pass: promote callables passed into higher-order hosts.
    if hosts:
        for module, scope, owner, class_name, info in scopes:
            nested = _nested_defs(scope)
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                callee = index.resolve(index.modules[module.name], node.func, class_name)
                if callee is None or callee not in hosts:
                    continue
                host_info = index.function_at(callee)
                host_root = roots.get(callee)
                if host_info is None or host_root is None:
                    continue
                bound = _map_call_args(host_info, node)
                argument = bound.get(hosts[callee])
                if argument is None:
                    continue
                if isinstance(argument, ast.Name) and argument.id in nested:
                    if info is not None:
                        add_root(owner, host_root.kind, module.path, argument.lineno)
                    continue
                resolved = index.resolve(module, argument, class_name)
                if resolved is not None and resolved in index.functions:
                    add_root(resolved, host_root.kind, module.path, argument.lineno)
    return roots


def _context_for(files: Sequence[object], context: Optional[WholeProgramContext]):
    if context is not None:
        return context
    return WholeProgramContext(files)


def _violation_at(rule, path: str, line: int, col: int, message: str) -> Violation:
    return Violation(
        rule=rule.rule_id,
        name=rule.name,
        path=path,
        line=line,
        col=col,
        message=message,
    )


# -- W501: inter-procedural seed-taint tracking ----------------------------


@dataclass
class _LabelTemplate:
    """A derive label inside one function, holes not yet filled.

    ``parts`` is a sequence of ``("t", text)``, ``("p", param)`` and
    ``("a", "")`` (anonymous hole) chunks; ``derive_path``/``line``
    locate the underlying ``derive_seed``/``derive_rng`` call.
    """

    parts: Tuple[Tuple[str, str], ...]
    derive_path: str
    derive_line: int

    def has_param_holes(self) -> bool:
        return any(kind == "p" for kind, _ in self.parts)


@dataclass
class _EffectiveSite:
    path: str
    line: int
    col: int
    text: str  # literal text, or template with _HOLE markers
    forwarded: bool
    derive_path: str
    derive_line: int

    @property
    def is_literal(self) -> bool:
        return _HOLE not in self.text

    def display(self) -> str:
        return self.text.replace(_HOLE, "{...}")


def _is_derive_call(node: ast.Call) -> bool:
    name = _callee_attr(node.func)
    return name in _DERIVE_NAMES


def _label_argument(call: ast.Call) -> Optional[ast.AST]:
    if len(call.args) >= 2:
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "label":
            return keyword.value
    return None


def _template_parts(
    expr: ast.AST, params: Set[str]
) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Decompose a label expression, or None if untrackably dynamic."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return (("t", expr.value),)
    if isinstance(expr, ast.Name):
        if expr.id in params:
            return (("p", expr.id),)
        return None
    if isinstance(expr, ast.JoinedStr):
        parts: List[Tuple[str, str]] = []
        for value in expr.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(("t", value.value))
            elif (
                isinstance(value, ast.FormattedValue)
                and isinstance(value.value, ast.Name)
                and value.value.id in params
            ):
                parts.append(("p", value.value.id))
            else:
                parts.append(("a", ""))
        return tuple(parts)
    return None


def _render(parts: Sequence[Tuple[str, str]]) -> str:
    chunks: List[str] = []
    for kind, text in parts:
        chunks.append(text if kind == "t" else _HOLE)
    return "".join(chunks)


@register_rule
class SeedTaintRule:
    """W501: effective seed-label collisions and entropy across call edges."""

    rule_id = "W501"
    name = "seed-taint"
    description = (
        "follows derive_seed/derive_rng labels across call edges: helpers "
        "forwarding a caller-supplied label are expanded per call site, so "
        "effective labels that collide across modules are flagged, and "
        "library call sites reaching unseeded randomness (global random, "
        "numpy.random, Random() without a seed) through another module are "
        "reported even when the draw itself carries a local suppression"
    )
    scope = "project"
    kinds = (LIBRARY,)
    wants_context = True
    version = 1

    def check(self, files, context=None) -> Iterable[Violation]:
        context = _context_for(files, context)
        index = context.index
        library_paths = {source.path for source in files}
        yield from self._label_collisions(index, library_paths)
        yield from self._entropy_reach(context, library_paths)

    # -- label tracking ---------------------------------------------------

    def _label_collisions(
        self, index: ProjectIndex, library_paths: Set[str]
    ) -> Iterable[Violation]:
        forwarders: Dict[str, List[_LabelTemplate]] = {}
        direct: List[_EffectiveSite] = []

        def is_exempt(module: ModuleInfo) -> bool:
            return module.name in ("repro.rng", "rng")

        # Pass 1: direct derive calls — fixed labels become sites,
        # param-holed labels make the enclosing function a forwarder.
        for module in index.modules.values():
            if is_exempt(module):
                continue
            for info in module.functions.values():
                params = set(info.params)
                for node in ast.walk(info.node):
                    if not (isinstance(node, ast.Call) and _is_derive_call(node)):
                        continue
                    label = _label_argument(node)
                    if label is None:
                        continue
                    parts = _template_parts(label, params)
                    if parts is None:
                        continue
                    template = _LabelTemplate(
                        parts=parts,
                        derive_path=module.path,
                        derive_line=node.lineno,
                    )
                    if template.has_param_holes():
                        forwarders.setdefault(info.qualname, []).append(template)
                    elif module.path in library_paths:
                        direct.append(
                            _EffectiveSite(
                                path=module.path,
                                line=label.lineno,
                                col=label.col_offset,
                                text=_render(parts),
                                forwarded=False,
                                derive_path=module.path,
                                derive_line=node.lineno,
                            )
                        )

        # Pass 2 (fixpoint): calls into forwarders either produce
        # effective sites (literal/anon args) or extend the forwarder
        # set (param args) until nothing new appears.
        effective: List[_EffectiveSite] = []
        seen_sites: Set[Tuple[str, int, int, str]] = set()
        for _ in range(10):
            grew = False
            for module in index.modules.values():
                if is_exempt(module):
                    continue
                for info in module.functions.values():
                    params = set(info.params)
                    for node in ast.walk(info.node):
                        if not isinstance(node, ast.Call):
                            continue
                        callee = index.resolve(module, node.func, info.class_name)
                        if callee is None or callee not in forwarders:
                            continue
                        callee_info = index.function_at(callee)
                        if callee_info is None or callee_info.qualname == info.qualname:
                            continue
                        bound = _map_call_args(callee_info, node)
                        for template in list(forwarders[callee]):
                            substituted = self._substitute(template, bound, params)
                            if substituted is None:
                                continue
                            if substituted.has_param_holes():
                                if not self._known(forwarders.get(info.qualname), substituted):
                                    forwarders.setdefault(info.qualname, []).append(
                                        substituted
                                    )
                                    grew = True
                            elif module.path in library_paths:
                                key = (
                                    module.path,
                                    node.lineno,
                                    node.col_offset,
                                    _render(substituted.parts),
                                )
                                if key not in seen_sites:
                                    seen_sites.add(key)
                                    effective.append(
                                        _EffectiveSite(
                                            path=module.path,
                                            line=node.lineno,
                                            col=node.col_offset,
                                            text=key[3],
                                            forwarded=True,
                                            derive_path=substituted.derive_path,
                                            derive_line=substituted.derive_line,
                                        )
                                    )
            if not grew:
                break

        yield from self._report_collisions(direct + effective)

    @staticmethod
    def _known(
        templates: Optional[List[_LabelTemplate]], candidate: _LabelTemplate
    ) -> bool:
        if not templates:
            return False
        return any(entry.parts == candidate.parts for entry in templates)

    @staticmethod
    def _substitute(
        template: _LabelTemplate,
        bound: Dict[str, ast.AST],
        caller_params: Set[str],
    ) -> Optional[_LabelTemplate]:
        parts: List[Tuple[str, str]] = []
        for kind, text in template.parts:
            if kind != "p":
                parts.append((kind, text))
                continue
            argument = bound.get(text)
            if argument is None:
                # Parameter defaulted or dynamically supplied: the hole
                # stays anonymous.
                parts.append(("a", ""))
                continue
            sub = _template_parts(argument, caller_params)
            if sub is None:
                parts.append(("a", ""))
            else:
                parts.extend(sub)
        return _LabelTemplate(
            parts=tuple(parts),
            derive_path=template.derive_path,
            derive_line=template.derive_line,
        )

    def _report_collisions(
        self, sites: List[_EffectiveSite]
    ) -> Iterable[Violation]:
        sites = sorted(sites, key=lambda s: (s.path, s.line, s.col, s.text))
        literals = [s for s in sites if s.is_literal]
        templates = [s for s in sites if not s.is_literal]

        # Identical effective literals at >= 2 locations, at least one
        # of them produced through a forwarder (direct-direct pairs are
        # S201's to report).
        groups: Dict[str, List[_EffectiveSite]] = {}
        for site in literals:
            groups.setdefault(site.text, []).append(site)
        for text in sorted(groups):
            group = groups[text]
            locations = sorted({(s.path, s.line) for s in group})
            if len(locations) < 2 or not any(s.forwarded for s in group):
                continue
            for site in group:
                if not site.forwarded:
                    continue
                others = ", ".join(
                    f"{p}:{ln}"
                    for p, ln in locations
                    if (p, ln) != (site.path, site.line)
                )
                yield _violation_at(
                    self, site.path, site.line, site.col,
                    f"effective seed label {site.text!r} (via "
                    f"{site.derive_path}:{site.derive_line}) is also derived "
                    f"at {others}; identical labels share one stream",
                )

        # A literal matching a template from a different site, when at
        # least one side is forwarded.
        for literal in literals:
            for template in templates:
                if (literal.path, literal.line) == (template.path, template.line):
                    continue
                if not (literal.forwarded or template.forwarded):
                    continue
                if _template_regex(template.text).match(literal.text):
                    site = literal if literal.forwarded else template
                    other = template if site is literal else literal
                    yield _violation_at(
                        self, site.path, site.line, site.col,
                        f"effective seed label {site.display()!r} can collide "
                        f"with {other.display()!r} at {other.path}:{other.line}",
                    )

        # Identical templates fed through *different* derive calls: two
        # independent f-strings with the same shape can collide at
        # runtime.  The same derive call reached twice (one shared
        # helper) is the sanctioned single-derivation-point pattern.
        template_groups: Dict[str, List[_EffectiveSite]] = {}
        for site in templates:
            template_groups.setdefault(site.text, []).append(site)
        for text in sorted(template_groups):
            group = template_groups[text]
            points = {(s.derive_path, s.derive_line) for s in group}
            locations = sorted({(s.path, s.line) for s in group})
            if len(locations) < 2 or len(points) < 2:
                continue
            if not any(s.forwarded for s in group):
                continue
            for site in group:
                if not site.forwarded:
                    continue
                others = ", ".join(
                    f"{p}:{ln}"
                    for p, ln in locations
                    if (p, ln) != (site.path, site.line)
                )
                yield _violation_at(
                    self, site.path, site.line, site.col,
                    f"effective seed label template {site.display()!r} is "
                    f"also produced at {others} through a different "
                    "derive call; the streams can collide at runtime",
                )

    # -- entropy reachability ---------------------------------------------

    def _entropy_reach(
        self, context: WholeProgramContext, library_paths: Set[str]
    ) -> Iterable[Violation]:
        index = context.index
        graph = context.graph
        origins: Dict[str, Tuple[str, int, str]] = {}
        for module in index.modules.values():
            if module.name in ("repro.rng", "rng"):
                continue
            imports = _ImportMap(module.tree)
            for info in module.functions.values():
                reason = self._entropy_use(info.node, imports)
                if reason is not None:
                    origins[info.qualname] = (module.path, reason[1], reason[0])

        if not origins:
            return

        # Propagate taint up the call graph; remember each function's
        # originating draw for the message.
        origin_of: Dict[str, str] = {name: name for name in origins}
        frontier = sorted(origins)
        while frontier:
            next_frontier: List[str] = []
            for tainted in frontier:
                for site in graph.callers.get(tainted, []):
                    if site.caller in origin_of:
                        continue
                    if site.caller not in index.functions:
                        continue
                    origin_of[site.caller] = origin_of[tainted]
                    next_frontier.append(site.caller)
            frontier = sorted(next_frontier)

        reported: Set[Tuple[str, int, str]] = set()
        for callee in sorted(origin_of):
            for site in graph.callers.get(callee, []):
                if site.is_reference:
                    continue
                caller_info = index.function_at(site.caller)
                if caller_info is None or caller_info.path not in library_paths:
                    continue
                callee_info = index.function_at(callee)
                if callee_info is None or callee_info.module == caller_info.module:
                    continue
                origin = origin_of[callee]
                origin_path, origin_line, origin_reason = origins[origin]
                key = (site.path, site.line, callee)
                if key in reported:
                    continue
                reported.add(key)
                yield _violation_at(
                    self, site.path, site.line, site.col,
                    f"call into '{_short_name(callee)}' reaches unseeded "
                    f"randomness ({origin_reason} at {origin_path}:"
                    f"{origin_line}); thread an explicit derive_rng stream "
                    "through the call instead",
                )

    @staticmethod
    def _entropy_use(
        node: ast.AST, imports: _ImportMap
    ) -> Optional[Tuple[str, int]]:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in imports.random_modules
                ):
                    if func.attr in _RANDOM_GLOBAL_FNS:
                        return (f"random.{func.attr}()", child.lineno)
                    if func.attr == "SystemRandom":
                        return ("random.SystemRandom()", child.lineno)
                    if (
                        func.attr == "Random"
                        and not child.args
                        and not child.keywords
                    ):
                        return ("random.Random() without a seed", child.lineno)
                elif isinstance(func, ast.Name):
                    if func.id in imports.random_fn_aliases:
                        return (
                            f"random.{imports.random_fn_aliases[func.id]}()",
                            child.lineno,
                        )
                    if func.id in imports.system_random_aliases:
                        return ("random.SystemRandom()", child.lineno)
                    if (
                        func.id in imports.random_class_aliases
                        and not child.args
                        and not child.keywords
                    ):
                        return ("random.Random() without a seed", child.lineno)
            elif isinstance(child, ast.Attribute):
                if (
                    child.attr == "random"
                    and isinstance(child.value, ast.Name)
                    and child.value.id in imports.numpy_modules
                ):
                    return ("numpy.random global state", child.lineno)
        return None


def _short_name(qualname: str) -> str:
    parts = qualname.split(".")
    if len(parts) <= 2:
        return qualname
    return ".".join(parts[-2:])


# -- W502: pool-escape analysis --------------------------------------------


@register_rule
class PoolEscapeRule:
    """W502: module-global state mutated by process-pool-reachable code."""

    rule_id = "W502"
    name = "pool-escape"
    description = (
        "functions reachable from a process-pool submit/map target must "
        "not rebind or mutate module globals: under the spawn start "
        "method every worker re-imports the module, so parent and worker "
        "copies diverge silently (transitive extension of D112)"
    )
    scope = "project"
    kinds = (LIBRARY,)
    wants_context = True
    #: v2: ShardPool fan-outs count as process-pool roots.
    version = 2

    def check(self, files, context=None) -> Iterable[Violation]:
        context = _context_for(files, context)
        index = context.index
        graph = context.graph
        roots = [
            root.qualname
            for root in context.pool_roots.values()
            if root.kind == "process"
        ]
        if not roots:
            return []
        library_paths = {source.path for source in files}
        reach = graph.reachable(roots, include_references=True)
        findings: List[Violation] = []
        for qualname in sorted(reach):
            info = index.function_at(qualname)
            if info is None or info.path not in library_paths:
                continue
            module = index.module_named(info.module)
            if module is None:
                continue
            chain = format_chain(graph.chain(reach, qualname))
            for line, col, message in self._mutations(info, module):
                findings.append(
                    _violation_at(
                        self, info.path, line, col,
                        f"{message}; '{info.display}' is reachable from a "
                        f"process-pool target ({chain}) — under spawn each "
                        "worker re-imports the module, so parent and worker "
                        "copies diverge silently",
                    )
                )
            for line, col, name in self._lock_reads(info, module):
                findings.append(
                    _violation_at(
                        self, info.path, line, col,
                        f"synchronises on module-global lock '{name}'; "
                        f"'{info.display}' is reachable from a process-pool "
                        f"target ({chain}) — each spawn worker re-imports "
                        "the module and gets its own lock, so the exclusion "
                        "is ineffective across processes",
                    )
                )
        return findings

    def _lock_reads(self, info: FunctionInfo, module: ModuleInfo):
        lock_globals: Set[str] = set()
        for node in module.tree.body:
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
            ):
                continue
            ctor = _callee_attr(node.value.func)
            if ctor in _LOCK_FACTORIES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lock_globals.add(target.id)
        if not lock_globals:
            return
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in lock_globals
            ):
                yield (node.lineno, node.col_offset, node.id)

    def _mutations(self, info: FunctionInfo, module: ModuleInfo):
        declared_global: Set[str] = set()
        local_binds: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_binds.add(target.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    local_binds.add(node.target.id)
            elif isinstance(node, ast.For):
                if isinstance(node.target, ast.Name):
                    local_binds.add(node.target.id)
        local_binds -= declared_global

        def is_global_mutable(name: str) -> bool:
            return name in module.mutable_globals and name not in local_binds

        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                        and target.id in module.global_names
                    ):
                        yield (
                            node.lineno, node.col_offset,
                            f"rebinds module global '{target.id}'",
                        )
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and is_global_mutable(target.value.id)
                    ):
                        yield (
                            node.lineno, node.col_offset,
                            f"writes into mutable module global "
                            f"'{target.value.id}'",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and is_global_mutable(target.value.id)
                    ):
                        yield (
                            node.lineno, node.col_offset,
                            f"deletes from mutable module global "
                            f"'{target.value.id}'",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and is_global_mutable(node.func.value.id)
            ):
                yield (
                    node.lineno, node.col_offset,
                    f"mutates module global '{node.func.value.id}' via "
                    f".{node.func.attr}()",
                )


# -- W503: order-sensitive float accumulation ------------------------------


@register_rule
class FloatAccumulationRule:
    """W503: float accumulators grown in loops by fan-out-reachable code."""

    rule_id = "W503"
    name = "shard-float-accumulation"
    description = (
        "functions reachable from a shard worker or thread fan-out must "
        "not grow float accumulators in loops: float addition is "
        "non-associative, so any order dependence on shard boundaries or "
        "completion order breaks bit-identity; accumulate integers, or "
        "sum in the parent in a fixed order"
    )
    scope = "project"
    kinds = (LIBRARY,)
    wants_context = True
    #: v2: ShardPool fan-outs count as process-pool roots.
    version = 2

    def check(self, files, context=None) -> Iterable[Violation]:
        context = _context_for(files, context)
        index = context.index
        graph = context.graph
        roots = [root.qualname for root in context.pool_roots.values()]
        if not roots:
            return []
        library_paths = {source.path for source in files}
        reach = graph.reachable(roots, include_references=True)
        findings: List[Violation] = []
        for qualname in sorted(reach):
            info = index.function_at(qualname)
            if info is None or info.path not in library_paths:
                continue
            chain = format_chain(graph.chain(reach, qualname))
            for line, col, target in self._float_loops(info):
                findings.append(
                    _violation_at(
                        self, info.path, line, col,
                        f"float accumulation into '{target}' inside a loop; "
                        f"'{info.display}' is reachable from a pool fan-out "
                        f"({chain}), where accumulation order can depend on "
                        "sharding or completion order",
                    )
                )
        return findings

    def _float_loops(self, info: FunctionInfo):
        float_names = self._float_named(info)
        for loop in ast.walk(info.node):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if node is loop:
                    continue
                if (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and self._float_like(node.value, float_names)
                ):
                    target = self._target_name(node.target)
                    if target is not None:
                        yield (node.lineno, node.col_offset, target)
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.value, ast.BinOp)
                    and isinstance(node.value.op, ast.Add)
                ):
                    target = node.targets[0]
                    left, right = node.value.left, node.value.right
                    if isinstance(target, ast.Name):
                        name = target.id
                        if (
                            isinstance(left, ast.Name)
                            and left.id == name
                            and self._float_like(right, float_names)
                        ) or (
                            isinstance(right, ast.Name)
                            and right.id == name
                            and self._float_like(left, float_names)
                        ):
                            yield (node.lineno, node.col_offset, name)
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        # d[k] = d.get(k, 0.0) + x  /  d[k] = d[k] + x
                        base = target.value.id
                        if self._reads_base(left, base) and self._float_like(
                            node.value, float_names
                        ):
                            yield (
                                node.lineno,
                                node.col_offset,
                                f"{base}[...]",
                            )

    @staticmethod
    def _reads_base(expr: ast.AST, base: str) -> bool:
        """Does the left operand read back the accumulator ``base``?

        Matches ``base[k]`` and ``base.get(k, default)`` — the two
        read-modify-write spellings of dict accumulation.
        """
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == base
        ):
            return True
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "get"
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id == base
        ):
            return True
        return False

    @staticmethod
    def _target_name(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            return f"{target.value.id}[...]"
        return None

    @staticmethod
    def _float_named(info: FunctionInfo) -> Set[str]:
        """Names float-typed by annotation or float-like assignment."""
        names: Set[str] = set()
        arguments = info.node.args
        for arg in list(arguments.args) + list(arguments.kwonlyargs):
            if (
                arg.annotation is not None
                and isinstance(arg.annotation, ast.Name)
                and arg.annotation.id == "float"
            ):
                names.add(arg.arg)
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and isinstance(node.annotation, ast.Name)
                and node.annotation.id == "float"
            ):
                names.add(node.target.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _has_float_marker(
                    node.value, set()
                ):
                    names.add(target.id)
        return names

    @classmethod
    def _float_like(cls, expr: ast.AST, float_names: Set[str]) -> bool:
        # An explicit integer cast of the whole expression is exempt.
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("int", "len")
        ):
            return False
        return _has_float_marker(expr, float_names)


def _has_float_marker(expr: ast.AST, float_names: Set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            return True
        if isinstance(node, ast.Name) and node.id in float_names:
            return True
    return False
