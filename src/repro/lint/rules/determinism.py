"""Determinism-hygiene rules (family ``D1xx``).

Everything stochastic in this library must flow from explicit integer
seeds through :mod:`repro.rng`; everything ordered must be ordered on
purpose.  These rules ban the ambient-state escape hatches: the global
``random`` module, wall clocks, OS entropy, ``PYTHONHASHSEED``-keyed
``hash()``, and set-iteration order leaking into ordered outputs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.violations import (
    ALL_KINDS,
    LIBRARY,
    Violation,
    register_rule,
)

_RANDOM_GLOBAL_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "betavariate", "expovariate",
        "gammavariate", "gauss", "lognormvariate", "normalvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
        "randbytes", "seed", "setstate", "binomialvariate",
    }
)

_WALL_CLOCK_TIME_FNS = frozenset({"time", "time_ns", "monotonic", "monotonic_ns"})
_WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_ORDER_NEUTRAL_WRAPPERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)
_SEQUENCE_LEAK_METHODS = frozenset({"append", "extend", "appendleft", "insert"})
_SET_METHODS_RETURNING_SET = frozenset(
    {"union", "difference", "intersection", "symmetric_difference", "copy"}
)
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class _ImportMap:
    """Which local names are bound to the modules/functions we police."""

    def __init__(self, tree: ast.Module) -> None:
        self.random_modules: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        self.numpy_random_names: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.os_modules: Set[str] = set()
        self.uuid_modules: Set[str] = set()
        self.secrets_names: Set[str] = set()
        self.random_fn_aliases: Dict[str, str] = {}
        self.random_class_aliases: Set[str] = set()
        self.system_random_aliases: Set[str] = set()
        self.time_fn_aliases: Dict[str, str] = {}
        self.urandom_aliases: Set[str] = set()
        self.uuid_fn_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random" or alias.name.startswith("random."):
                        self.random_modules.add(bound)
                    elif alias.name == "numpy" or alias.name.startswith("numpy."):
                        if alias.name == "numpy.random":
                            self.numpy_random_names.add(alias.asname or "numpy")
                        self.numpy_modules.add(bound)
                    elif alias.name == "time":
                        self.time_modules.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(bound)
                    elif alias.name == "os":
                        self.os_modules.add(bound)
                    elif alias.name == "uuid":
                        self.uuid_modules.add(bound)
                    elif alias.name == "secrets":
                        self.secrets_names.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "random":
                        if alias.name in _RANDOM_GLOBAL_FNS:
                            self.random_fn_aliases[bound] = alias.name
                        elif alias.name == "Random":
                            self.random_class_aliases.add(bound)
                        elif alias.name == "SystemRandom":
                            self.system_random_aliases.add(bound)
                    elif node.module == "numpy":
                        if alias.name == "random":
                            self.numpy_random_names.add(bound)
                    elif node.module.startswith("numpy.random"):
                        self.numpy_random_names.add(bound)
                    elif node.module == "time":
                        if alias.name in _WALL_CLOCK_TIME_FNS:
                            self.time_fn_aliases[bound] = alias.name
                    elif node.module == "datetime":
                        if alias.name in ("datetime", "date"):
                            self.datetime_classes.add(bound)
                    elif node.module == "os":
                        if alias.name == "urandom":
                            self.urandom_aliases.add(bound)
                    elif node.module == "uuid":
                        if alias.name in ("uuid1", "uuid4"):
                            self.uuid_fn_aliases.add(bound)
                    elif node.module == "secrets":
                        self.secrets_names.add(bound)


def _violation(rule, source, node, message: str) -> Violation:
    return Violation(
        rule=rule.rule_id,
        name=rule.name,
        path=source.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


@register_rule
class GlobalRandomRule:
    """D101: calls into the shared module-level ``random`` state."""

    rule_id = "D101"
    name = "global-random"
    description = (
        "calls to the random module's global functions (random.random, "
        "random.shuffle, ...) use interpreter-wide hidden state; derive a "
        "stream with repro.rng.derive_rng instead"
    )
    scope = "file"
    kinds = ALL_KINDS

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        imports = _ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in imports.random_modules
                and func.attr in _RANDOM_GLOBAL_FNS
            ):
                yield _violation(
                    self, source, node,
                    f"random.{func.attr}() draws from the global PRNG; use a "
                    "stream from repro.rng.derive_rng",
                )
            elif (
                isinstance(func, ast.Name)
                and func.id in imports.random_fn_aliases
            ):
                original = imports.random_fn_aliases[func.id]
                yield _violation(
                    self, source, node,
                    f"{func.id}() (random.{original}) draws from the global "
                    "PRNG; use a stream from repro.rng.derive_rng",
                )


@register_rule
class UnseededRandomRule:
    """D102: ``random.Random()`` with no seed, or ``SystemRandom``."""

    rule_id = "D102"
    name = "unseeded-random"
    description = (
        "random.Random() without an explicit seed (and SystemRandom at "
        "all) is seeded from OS entropy; pass a derived seed"
    )
    scope = "file"
    kinds = ALL_KINDS

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        imports = _ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_random_class = (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in imports.random_modules
                and func.attr == "Random"
            ) or (
                isinstance(func, ast.Name)
                and func.id in imports.random_class_aliases
            )
            is_system_random = (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in imports.random_modules
                and func.attr == "SystemRandom"
            ) or (
                isinstance(func, ast.Name)
                and func.id in imports.system_random_aliases
            )
            if is_system_random:
                yield _violation(
                    self, source, node,
                    "SystemRandom draws OS entropy and can never be seeded",
                )
            elif is_random_class and not node.args and not node.keywords:
                yield _violation(
                    self, source, node,
                    "random.Random() without a seed is seeded from OS "
                    "entropy; pass a seed derived via repro.rng.derive_seed",
                )


@register_rule
class NumpyGlobalRandomRule:
    """D103: any use of numpy's global random state."""

    rule_id = "D103"
    name = "numpy-global-random"
    description = (
        "numpy.random.* uses numpy's global (or OS-seeded) state; use "
        "repro.rng.uniform_unit_np or a generator seeded from derive_seed"
    )
    scope = "file"
    kinds = ALL_KINDS

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        imports = _ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in imports.numpy_modules
            ):
                yield _violation(
                    self, source, node,
                    "numpy.random carries global/OS-seeded state; use "
                    "repro.rng.uniform_unit_np or np.random.default_rng(seed) "
                    "via an explicit derive_seed",
                )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in imports.numpy_random_names
            ):
                yield _violation(
                    self, source, node,
                    "numpy.random carries global/OS-seeded state; seed an "
                    "explicit generator from derive_seed instead",
                )


@register_rule
class WallClockRule:
    """D104: wall-clock reads in library code."""

    rule_id = "D104"
    name = "wall-clock"
    description = (
        "time.time()/datetime.now() make results depend on when the code "
        "runs; thread simulated time through parameters instead"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        imports = _ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in imports.time_modules
                and func.attr in _WALL_CLOCK_TIME_FNS
            ):
                yield _violation(
                    self, source, node,
                    f"time.{func.attr}() reads the wall clock; pass "
                    "simulated timestamps explicitly",
                )
            elif isinstance(func, ast.Name) and func.id in imports.time_fn_aliases:
                yield _violation(
                    self, source, node,
                    f"{func.id}() (time.{imports.time_fn_aliases[func.id]}) "
                    "reads the wall clock; pass simulated timestamps "
                    "explicitly",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _WALL_CLOCK_DATETIME_FNS
                and isinstance(func.value, ast.Name)
                and func.value.id in imports.datetime_classes
            ):
                yield _violation(
                    self, source, node,
                    f"datetime.{func.attr}() reads the wall clock; pass "
                    "simulated timestamps explicitly",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _WALL_CLOCK_DATETIME_FNS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in ("datetime", "date")
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in imports.datetime_modules
            ):
                yield _violation(
                    self, source, node,
                    f"datetime.{func.value.attr}.{func.attr}() reads the "
                    "wall clock; pass simulated timestamps explicitly",
                )


@register_rule
class OsEntropyRule:
    """D105: OS entropy sources in library code."""

    rule_id = "D105"
    name = "os-entropy"
    description = (
        "os.urandom/uuid4/secrets pull OS entropy, which can never be "
        "replayed; derive identifiers from seeds"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        imports = _ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            message = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
            ):
                owner = func.value.id
                if owner in imports.os_modules and func.attr == "urandom":
                    message = "os.urandom() is OS entropy"
                elif owner in imports.uuid_modules and func.attr in ("uuid1", "uuid4"):
                    message = f"uuid.{func.attr}() is OS entropy"
                elif owner in imports.secrets_names:
                    message = f"secrets.{func.attr}() is OS entropy"
            elif isinstance(func, ast.Name):
                if func.id in imports.urandom_aliases:
                    message = f"{func.id}() (os.urandom) is OS entropy"
                elif func.id in imports.uuid_fn_aliases:
                    message = f"{func.id}() is OS entropy"
            if message is not None:
                yield _violation(
                    self, source, node,
                    message + "; derive values from explicit seeds instead",
                )


@register_rule
class BuiltinHashRule:
    """D106: ``hash()`` outside ``__hash__`` in library code."""

    rule_id = "D106"
    name = "builtin-hash"
    description = (
        "builtin hash() is salted per-process for str/bytes "
        "(PYTHONHASHSEED); use repro.rng.mix64 or hashlib for stable "
        "values.  Allowed only inside __hash__ implementations."
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        for violation_node in self._find(source.tree, inside_hash=False):
            yield _violation(
                self, source, violation_node,
                "hash() is process-salted for strings; use repro.rng.mix64 "
                "or hashlib.blake2b for stable draws",
            )

    def _find(self, node: ast.AST, inside_hash: bool):
        for child in ast.iter_child_nodes(node):
            child_inside = inside_hash
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_inside = child.name == "__hash__"
            if (
                not child_inside
                and isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "hash"
            ):
                yield child
            yield from self._find(child, child_inside)


class _SetTypes:
    """Flow-insensitive local inference of set-typed names in one scope."""

    def __init__(self, scope: ast.AST) -> None:
        self.set_names: Set[str] = set()
        self.dict_of_set_names: Set[str] = set()
        self._collect_params(scope)
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._record(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.target is not None:
                self._record_annotation(node.target, node.annotation)
                if node.value is not None:
                    self._record(node.target, node.value)

    def _collect_params(self, scope: ast.AST) -> None:
        args = getattr(scope, "args", None)
        if args is None:
            return
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                self._record_annotation(ast.Name(id=arg.arg), arg.annotation)

    def _record(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        if self.is_set_expr(value):
            self.set_names.add(target.id)
        elif self._is_dict_of_set_value(value):
            self.dict_of_set_names.add(target.id)

    def _record_annotation(self, target: ast.AST, annotation: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        label = _annotation_head(annotation)
        if label in ("set", "Set", "FrozenSet", "frozenset", "AbstractSet", "MutableSet"):
            self.set_names.add(target.id)
        elif label in ("dict", "Dict", "Mapping", "MutableMapping", "DefaultDict"):
            if isinstance(annotation, ast.Subscript):
                value_annotation = annotation.slice
                if isinstance(value_annotation, ast.Tuple) and value_annotation.elts:
                    inner = _annotation_head(value_annotation.elts[-1])
                    if inner in ("set", "Set", "FrozenSet", "frozenset"):
                        self.dict_of_set_names.add(target.id)

    def _is_dict_of_set_value(self, value: ast.AST) -> bool:
        if isinstance(value, ast.DictComp):
            return self.is_set_expr(value.value)
        if isinstance(value, ast.Dict) and value.values:
            return all(self.is_set_expr(entry) for entry in value.values)
        return False

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS_RETURNING_SET
                and self.is_set_expr(func.value)
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and isinstance(func.value, ast.Name)
                and func.value.id in self.dict_of_set_names
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Subscript):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id in self.dict_of_set_names
            )
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


def _annotation_head(annotation: ast.AST) -> Optional[str]:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        head = annotation.value.split("[")[0].strip()
        return head.split(".")[-1] if head else None
    return None


def _walk_scope(scope: ast.AST):
    """Walk a function/module body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.Module):
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register_rule
class SetIterationOrderRule:
    """D107: set iteration order escaping into ordered output."""

    rule_id = "D107"
    name = "set-order-leak"
    description = (
        "iterating a set into a yield/return/list leaks unordered "
        "iteration order into results; sort first (or keep an ordered "
        "structure)"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        parents = _parent_map(source.tree)
        for scope in _scopes(source.tree):
            types = _SetTypes(scope)
            for node in _walk_scope(scope):
                if isinstance(node, ast.For) and types.is_set_expr(node.iter):
                    leak = _loop_order_leak(node)
                    if leak is not None:
                        yield _violation(
                            self, source, node,
                            f"for-loop over a set {leak}; iterate "
                            "sorted(...) instead",
                        )
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    if any(
                        types.is_set_expr(gen.iter) for gen in node.generators
                    ) and not _order_neutral_context(node, parents):
                        yield _violation(
                            self, source, node,
                            "comprehension materialises set iteration order; "
                            "wrap the set in sorted(...)",
                        )

    # (list(...)/tuple(...) over a bare set is covered by the
    # comprehension-free case below)


@register_rule
class SetPopRule:
    """D108: ``set.pop()`` removes an arbitrary element."""

    rule_id = "D108"
    name = "set-pop"
    description = (
        "set.pop() removes an arbitrary (hash-order) element; pop from a "
        "sorted list or use an explicit ordering"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        for scope in _scopes(source.tree):
            types = _SetTypes(scope)
            for node in _walk_scope(scope):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and not node.args
                    and not node.keywords
                    and types.is_set_expr(node.func.value)
                ):
                    yield _violation(
                        self, source, node,
                        "set.pop() removes an arbitrary element; order the "
                        "elements explicitly first",
                    )


_MUTABLE_LITERAL_DEFAULTS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp,
)
_MUTABLE_BUILTIN_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque"}
)


def _callee_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register_rule
class InstanceDefaultRule:
    """D109: class instances or mutable literals as parameter defaults."""

    rule_id = "D109"
    name = "instance-default"
    description = (
        "a parameter default such as config=SomeConfig() or cache=[] is "
        "evaluated once at import time and shared by every call, freezing "
        "its configuration; default to None and construct inside"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                problem = self._describe(default)
                if problem is not None:
                    yield _violation(
                        self, source, default,
                        f"{problem}; default to None and build the value "
                        "inside the function",
                    )

    def _describe(self, default: ast.AST) -> Optional[str]:
        if isinstance(default, _MUTABLE_LITERAL_DEFAULTS):
            return (
                "mutable literal default is created once at definition "
                "time and shared across calls"
            )
        if isinstance(default, ast.Call):
            name = _callee_name(default.func)
            if name is None:
                return None
            if name in _MUTABLE_BUILTIN_FACTORIES:
                return (
                    f"{name}() default is created once at definition time "
                    "and shared across calls"
                )
            if name[:1].isupper():
                return (
                    f"{name}() instance default is constructed at import "
                    "time, freezing its configuration for every caller"
                )
        return None


def _parent_map(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _order_neutral_context(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    """True when a comprehension's order cannot be observed.

    Direct argument to sorted()/min()/sum()/set()/... — anything that
    either re-orders or collapses the sequence.
    """
    parent = parents.get(id(node))
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _ORDER_NEUTRAL_WRAPPERS
        and any(argument is node for argument in parent.args)
    )


def _loop_order_leak(loop: ast.For) -> Optional[str]:
    """How (if at all) a for-loop over a set leaks its order."""
    for node in _walk_statements(loop.body + loop.orelse):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return "reaches a yield"
        if isinstance(node, ast.Return) and node.value is not None:
            return "reaches a return"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SEQUENCE_LEAK_METHODS
        ):
            return f"feeds .{node.func.attr}() on an ordered container"
    return None


def _walk_statements(body: Sequence[ast.stmt]):
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
