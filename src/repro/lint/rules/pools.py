"""Process-pool hygiene (rule ``D112``).

Process-level fan-out lives in a short list of sanctioned homes —
:mod:`repro.core.pool` for simulation work (the sharded paths all route
through its ``ShardPool``) and :mod:`repro.lint.parallel` for
``reprolint --jobs`` — because every
pool carries the same two correctness obligations: results must merge
bit-identically to the single-process path, and every target callable
must be a *top-level* function so it pickles under the ``spawn`` start
method (a lambda or a nested ``def`` imports fine under ``fork`` and
then breaks on every other platform, or silently captures stale parent
state).  This rule enforces both halves: no pool machinery outside the
sanctioned homes, and no unpicklable submission targets anywhere.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Set, Tuple

from repro.lint.rules.determinism import _violation
from repro.lint.violations import ALL_KINDS, LIBRARY, Violation, register_rule

#: Modules allowed to import pool machinery (as path suffixes, matched
#: against the reported file path with separators normalised).
_POOL_HOME_SUFFIXES = (
    "repro/core/pool.py",
    "repro/lint/parallel.py",
)


def _normalised(path: str) -> str:
    return path.replace(os.sep, "/")


def _is_pool_home(path: str) -> bool:
    normalised = _normalised(path)
    return any(normalised.endswith(suffix) for suffix in _POOL_HOME_SUFFIXES)


def _nested_def_names(tree: ast.Module) -> Set[str]:
    """Names of every function defined inside another function."""
    nested: Set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _lambda_names(tree: ast.Module) -> Set[str]:
    """Names bound (anywhere) to a bare lambda expression."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _pool_bound_names(tree: ast.Module, pool_ctors: Set[str]) -> Set[str]:
    """Names bound to a ``ProcessPoolExecutor(...)`` / ``Pool(...)`` call.

    Covers plain assignment and ``with ... as pool`` bindings; the
    flow-insensitive approximation matches how the rest of the ruleset
    infers types.
    """
    bound: Set[str] = set()

    def record(target: Optional[ast.AST], value: ast.AST) -> None:
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and _callee_name(value.func) in pool_ctors
        ):
            bound.add(target.id)

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node.value)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                record(item.optional_vars, item.context_expr)
    return bound


def _callee_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register_rule
class ProcessPoolHygieneRule:
    """D112: process pools outside repro.core.pool or with unpicklable targets."""

    rule_id = "D112"
    name = "process-pool-hygiene"
    description = (
        "process-level fan-out belongs in the sanctioned pool homes "
        "(repro.core.pool, repro.lint.parallel); importing "
        "multiprocessing or ProcessPoolExecutor elsewhere in the library "
        "is flagged, and pool submit/map targets must be top-level "
        "functions — lambdas and nested defs do not pickle under spawn"
    )
    scope = "file"
    kinds = ALL_KINDS
    #: v2: repro.lint.parallel joined the sanctioned pool homes.
    #: v3: repro.core.pool replaced repro.core.sharding as the library's
    #: pool home, and ShardPool counts as a pool constructor.
    version = 3

    _POOL_CTORS = frozenset({"ProcessPoolExecutor", "Pool", "ShardPool"})

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        findings: List[Tuple[int, Violation]] = []
        pool_ctor_names = set(self._POOL_CTORS)
        restrict_imports = (
            source.kind == LIBRARY and not _is_pool_home(source.path)
        )
        for node, message, alias in self._import_findings(source.tree):
            if alias:
                pool_ctor_names.add(alias)
            if restrict_imports:
                findings.append(
                    (node.lineno, _violation(self, source, node, message))
                )
        findings.extend(
            (node.lineno, _violation(self, source, node, message))
            for node, message in self._target_findings(source.tree, pool_ctor_names)
        )
        for _, violation in sorted(findings, key=lambda pair: pair[0]):
            yield violation

    def _import_findings(self, tree: ast.Module):
        """Every pool-machinery import: ``(node, message, bound_alias)``."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        yield (
                            node,
                            "import of 'multiprocessing' outside a "
                            "sanctioned pool home; route process fan-out "
                            "through repro.core.pool",
                            None,
                        )
                        break
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] == "multiprocessing":
                    yield (
                        node,
                        "import from 'multiprocessing' outside a "
                        "sanctioned pool home; route process fan-out "
                        "through repro.core.pool",
                        None,
                    )
                elif module.startswith("concurrent.futures"):
                    for alias in node.names:
                        if alias.name == "ProcessPoolExecutor":
                            yield (
                                node,
                                "import of ProcessPoolExecutor outside "
                                "a sanctioned pool home; route process "
                                "fan-out through repro.core.pool",
                                alias.asname or alias.name,
                            )

    def _target_findings(self, tree: ast.Module, pool_ctors: Set[str]):
        """Every ``pool.submit/map`` whose target cannot pickle."""
        pools = _pool_bound_names(tree, pool_ctors)
        if not pools:
            return
        nested = _nested_def_names(tree)
        lambdas = _lambda_names(tree)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pools
                and node.args
            ):
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                yield (
                    node,
                    f"pool.{node.func.attr}() target is a lambda, which "
                    "does not pickle under the spawn start method; use a "
                    "top-level function",
                )
            elif isinstance(target, ast.Name) and (
                target.id in nested or target.id in lambdas
            ):
                yield (
                    node,
                    f"pool.{node.func.attr}() target {target.id!r} is not "
                    "a top-level function, so it does not pickle under "
                    "the spawn start method",
                )
