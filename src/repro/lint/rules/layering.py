"""Import-layering rules (family ``L4xx``).

Enforces the layer DAG declared in :mod:`repro.lint.layers`: a package
may import from its own layer or below, never above.  Keeping ``core``
above the measurement/analysis packages (and ``cli`` above everything)
is what lets the lower layers be reused and tested in isolation.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.lint.layers import LAYERS, layer_of
from repro.lint.violations import LIBRARY, Violation, register_rule


def _import_targets(node: ast.stmt) -> List[Tuple[str, ast.stmt]]:
    """Top-level ``repro`` subpackages referenced by one import node."""
    targets: List[Tuple[str, ast.stmt]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] != "repro":
                continue
            targets.append((parts[1] if len(parts) > 1 else "__init__", node))
    elif isinstance(node, ast.ImportFrom):
        if node.level:
            # Relative import: level 1 with a module stays inside the
            # current package; anything deeper resolves to a top-level
            # sibling named by the first module component (or by the
            # alias itself for ``from .. import x``).
            if node.level == 1 and node.module:
                return targets
            if node.module:
                targets.append((node.module.split(".")[0], node))
            else:
                for alias in node.names:
                    targets.append((alias.name, node))
            return targets
        if not node.module:
            return targets
        parts = node.module.split(".")
        if parts[0] != "repro":
            return targets
        if len(parts) > 1:
            targets.append((parts[1], node))
        else:
            # ``from repro import x`` — x is a subpackage if declared,
            # otherwise a symbol re-exported by repro/__init__.
            for alias in node.names:
                if layer_of(alias.name) is not None:
                    targets.append((alias.name, node))
                else:
                    targets.append(("__init__", node))
    return targets


@register_rule
class LayerViolationRule:
    """L401: import from a higher layer than the importing package."""

    rule_id = "L401"
    name = "layer-violation"
    description = (
        "a package imported from a higher layer of the declared DAG "
        "(see repro.lint.layers); move the shared type down or invert "
        "the dependency"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        package = source.package
        if package is None:
            return
        source_layer = layer_of(package)
        if source_layer is None:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target, at in _import_targets(node):
                if target == package:
                    continue
                target_layer = layer_of(target)
                if target_layer is None:
                    continue  # L402's business
                if target_layer > source_layer:
                    yield Violation(
                        rule=self.rule_id,
                        name=self.name,
                        path=source.path,
                        line=at.lineno,
                        col=at.col_offset,
                        message=(
                            f"package '{package}' (layer {source_layer}) "
                            f"imports 'repro.{target}' (layer "
                            f"{target_layer}); imports must point down "
                            "the layer DAG"
                        ),
                    )


@register_rule
class UndeclaredPackageRule:
    """L402: a repro subpackage missing from the layer declaration."""

    rule_id = "L402"
    name = "undeclared-package"
    description = (
        "a repro.* package is absent from repro.lint.layers.LAYERS; new "
        "packages must declare their layer so L401 can see them"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        package = source.package
        if package is not None and layer_of(package) is None:
            yield Violation(
                rule=self.rule_id,
                name=self.name,
                path=source.path,
                line=1,
                col=0,
                message=(
                    f"package '{package}' is not declared in "
                    "repro.lint.layers.LAYERS; add it to its layer"
                ),
            )
            return
        if package is None:
            return
        source_layer = layer_of(package)
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target, at in _import_targets(node):
                if target != package and layer_of(target) is None:
                    yield Violation(
                        rule=self.rule_id,
                        name=self.name,
                        path=source.path,
                        line=at.lineno,
                        col=at.col_offset,
                        message=(
                            f"imports 'repro.{target}', which is not "
                            "declared in repro.lint.layers.LAYERS"
                        ),
                    )
