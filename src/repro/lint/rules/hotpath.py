"""Hot-path performance rules (family ``D11x``).

Modules opt in with a ``# reprolint: hot-path`` comment (the vectorised
scan engine, load weighting, the catchment maps).  In those files the
rules police the per-element accumulation patterns the columnar layer
exists to avoid: a dict or set growing one entry per loop iteration is
a Python-speed scan over data that should be a ``bincount`` /
``searchsorted`` / boolean-mask pass.  Deliberate reference
implementations stay, marked ``# reprolint: disable=D110``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional, Set

from repro.lint.rules.determinism import (
    _annotation_head,
    _scopes,
    _violation,
    _walk_scope,
    _walk_statements,
)
from repro.lint.violations import LIBRARY, Violation, register_rule

# Anchored to the start of a line: the tag is a whole-line comment, so
# prose merely *mentioning* it (like this module's docstring) is inert.
_HOT_PATH_RE = re.compile(r"^[ \t]*#\s*reprolint:\s*hot-path\b", re.MULTILINE)

_DICT_FACTORIES = frozenset({"dict", "defaultdict", "Counter", "OrderedDict"})
_SET_FACTORIES = frozenset({"set", "frozenset"})
_DICT_ANNOTATIONS = frozenset(
    {"dict", "Dict", "DefaultDict", "OrderedDict", "Counter", "MutableMapping"}
)
_SET_ANNOTATIONS = frozenset({"set", "Set", "MutableSet"})
_DICT_GROW_METHODS = frozenset({"setdefault", "update"})
_SET_GROW_METHODS = frozenset({"add", "update"})


def _callee_simple_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _DictSetNames:
    """Flow-insensitive inference of dict/set-typed names in one scope."""

    def __init__(self, scope: ast.AST) -> None:
        self.dict_names: Set[str] = set()
        self.set_names: Set[str] = set()
        self._collect_params(scope)
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._record(target, node.value)
            elif isinstance(node, ast.AnnAssign):
                self._record_annotation(node.target, node.annotation)
                if node.value is not None:
                    self._record(node.target, node.value)

    def _collect_params(self, scope: ast.AST) -> None:
        args = getattr(scope, "args", None)
        if args is None:
            return
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                self._record_annotation(ast.Name(id=arg.arg), arg.annotation)

    def _record(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        if isinstance(value, (ast.Dict, ast.DictComp)):
            self.dict_names.add(target.id)
        elif isinstance(value, (ast.Set, ast.SetComp)):
            self.set_names.add(target.id)
        elif isinstance(value, ast.Call):
            callee = _callee_simple_name(value.func)
            if callee in _DICT_FACTORIES:
                self.dict_names.add(target.id)
            elif callee in _SET_FACTORIES:
                self.set_names.add(target.id)

    def _record_annotation(self, target: ast.AST, annotation: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        head = _annotation_head(annotation)
        if head in _DICT_ANNOTATIONS:
            self.dict_names.add(target.id)
        elif head in _SET_ANNOTATIONS:
            self.set_names.add(target.id)


def _subscript_dict_target(node: ast.AST, dict_names: Set[str]) -> Optional[str]:
    """Name of the dict a statement writes into via subscript, if any."""
    target = None
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        target = node.target
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
        and target.value.id in dict_names
    ):
        return target.value.id
    return None


@register_rule
class HotLoopAccumulationRule:
    """D110: per-element dict/set accumulation inside a hot-path loop."""

    rule_id = "D110"
    name = "hot-loop-accumulation"
    description = (
        "in modules tagged '# reprolint: hot-path', growing a dict or set "
        "one element per for-loop iteration is a Python-speed pass over "
        "columnar data; use bincount/searchsorted/np.add.at (or mark a "
        "deliberate reference path with 'reprolint: disable=D110')"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        if not _HOT_PATH_RE.search(source.text):
            return
        for scope in _scopes(source.tree):
            names = _DictSetNames(scope)
            if not names.dict_names and not names.set_names:
                continue
            seen: Set[int] = set()
            for node in _walk_scope(scope):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                for stmt in _walk_statements(node.body + node.orelse):
                    if id(stmt) in seen:
                        continue
                    message = self._accumulation_message(stmt, names)
                    if message is not None:
                        seen.add(id(stmt))
                        yield _violation(self, source, stmt, message)

    def _accumulation_message(
        self, stmt: ast.AST, names: _DictSetNames
    ) -> Optional[str]:
        dict_name = _subscript_dict_target(stmt, names.dict_names)
        if dict_name is not None:
            return (
                f"dict {dict_name!r} accumulates one entry per loop "
                "iteration in a hot-path module; replace the loop with a "
                "vectorised pass (e.g. np.bincount / np.add.at)"
            )
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and isinstance(stmt.value.func.value, ast.Name)
        ):
            owner = stmt.value.func.value.id
            method = stmt.value.func.attr
            if owner in names.dict_names and method in _DICT_GROW_METHODS:
                return (
                    f"dict {owner!r}.{method}() grows per loop iteration in "
                    "a hot-path module; batch the updates with array "
                    "operations"
                )
            if owner in names.set_names and method in _SET_GROW_METHODS:
                return (
                    f"set {owner!r}.{method}() grows per loop iteration in "
                    "a hot-path module; use np.unique / boolean masks over "
                    "arrays instead"
                )
        return None
