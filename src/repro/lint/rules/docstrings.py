"""Public-API documentation rule (``D111``).

The reproduction is grown PR by PR by contributors with no memory of
each other; the public surface of every library package is the contract
they navigate by.  ``D111`` requires a docstring on every public
module-level function and class in library code — and on the public
methods of public classes — so that surface stays self-describing.

Names starting with ``_`` (including dunders and ``__init__``) are
private by convention and exempt, as are nested functions and the
``lint`` package itself (its rule plugins describe themselves through
``description`` attributes).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.rules.determinism import _violation
from repro.lint.violations import LIBRARY, Violation, register_rule


@register_rule
class MissingDocstringRule:
    """D111: public library functions/classes must carry docstrings."""

    rule_id = "D111"
    name = "missing-docstring"
    description = (
        "public module-level functions and classes in library code (and "
        "public methods of public classes) must have a docstring; "
        "underscore-prefixed names, nested functions, and the lint "
        "package are exempt"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        """Flag every undocumented public definition in one file."""
        source = files[0]
        if source.package == "lint":
            return
        for node in source.tree.body:
            yield from self._check_definition(source, node)

    def _check_definition(
        self, source, node: ast.AST, owner: Optional[str] = None
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_"):
                return
            if ast.get_docstring(node) is None:
                label = (
                    f"method {owner}.{node.name}()"
                    if owner
                    else f"function {node.name}()"
                )
                yield _violation(
                    self, source, node,
                    f"public {label} has no docstring; state what it "
                    "computes (or prefix the name with '_')",
                )
        elif isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                return
            if ast.get_docstring(node) is None:
                yield _violation(
                    self, source, node,
                    f"public class {node.name} has no docstring; state "
                    "what it models (or prefix the name with '_')",
                )
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_definition(
                        source, child, owner=node.name
                    )
