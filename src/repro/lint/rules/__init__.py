"""Built-in reprolint rules.

Importing this package registers every built-in rule.  A new rule is
one module here: define a class satisfying the
:class:`~repro.lint.violations.Rule` protocol, decorate it with
:func:`~repro.lint.violations.register_rule`, and import the module
below.
"""

from repro.lint.rules import determinism  # noqa: F401
from repro.lint.rules import docstrings  # noqa: F401
from repro.lint.rules import exceptions  # noqa: F401
from repro.lint.rules import hotpath  # noqa: F401
from repro.lint.rules import interproc  # noqa: F401
from repro.lint.rules import layering  # noqa: F401
from repro.lint.rules import pools  # noqa: F401
from repro.lint.rules import seeds  # noqa: F401
