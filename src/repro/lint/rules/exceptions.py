"""Exception-discipline rules (family ``E3xx``).

Library code under ``src/repro/`` raises only the :mod:`repro.errors`
hierarchy, so callers can catch :class:`~repro.errors.ReproError` at a
boundary and know nothing domain-specific escaped.  Swallowing
``Exception`` without re-raising is banned for the mirror-image reason:
it hides failures that should surface.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterable, List, Set

from repro.lint.violations import LIBRARY, Violation, register_rule

#: Raises that never indicate a domain error.
_ALWAYS_ALLOWED = frozenset({"NotImplementedError", "StopIteration", "KeyboardInterrupt"})


def _errors_hierarchy() -> FrozenSet[str]:
    """Exception class names exported by :mod:`repro.errors`."""
    import repro.errors as errors_module

    return frozenset(
        name
        for name, obj in vars(errors_module).items()
        if isinstance(obj, type) and issubclass(obj, BaseException)
    )


def _terminal_name(node: ast.expr):
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _caught_names(tree: ast.Module) -> Set[str]:
    """Names bound by ``except ... as name`` anywhere in the module.

    Re-raising a caught exception (``raise err``) is always fine; a
    flow-sensitive check is not worth the complexity here.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


@register_rule
class ForeignRaiseRule:
    """E301: library raise of a non-repro.errors exception type."""

    rule_id = "E301"
    name = "foreign-raise"
    description = (
        "library code raises only repro.errors types (bare re-raise and "
        "NotImplementedError excepted), so ReproError is the one boundary "
        "callers need"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        if source.package == "errors":
            return
        allowed = _errors_hierarchy() | _ALWAYS_ALLOWED
        caught = _caught_names(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _terminal_name(node.exc)
            if name is None or name in allowed or name in caught:
                continue
            yield Violation(
                rule=self.rule_id,
                name=self.name,
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"raises {name}, which is outside the repro.errors "
                    "hierarchy; raise a ReproError subclass (subclass the "
                    "builtin too if callers expect it)"
                ),
            )


@register_rule
class BroadExceptRule:
    """E302: bare ``except:`` / ``except Exception:`` that swallows."""

    rule_id = "E302"
    name = "broad-except"
    description = (
        "bare except / except Exception without a re-raise swallows "
        "unexpected failures; catch the narrowest repro.errors type"
    )
    scope = "file"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        source = files[0]
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._reraises(node.body):
                continue
            caught = "bare except" if node.type is None else "except Exception"
            yield Violation(
                rule=self.rule_id,
                name=self.name,
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{caught} without re-raise swallows unexpected "
                    "failures; catch a specific repro.errors type or "
                    "re-raise"
                ),
            )

    @staticmethod
    def _is_broad(handler_type) -> bool:
        if handler_type is None:
            return True
        name = _terminal_name(handler_type)
        return name in ("Exception", "BaseException")

    @staticmethod
    def _reraises(body: List[ast.stmt]) -> bool:
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return False
