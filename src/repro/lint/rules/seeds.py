"""Seed-stream uniqueness rules (family ``S2xx``).

:func:`repro.rng.derive_seed` namespaces child streams by a string
label; two call sites using the same label (for the same parent seed)
silently share a stream, which is the classic correlated-randomness
bug.  These rules collect every literal or f-string label passed to
``derive_seed``/``derive_rng`` across the library tree and flag
duplicates (S201) and literal/template collisions (S202).

Labels that are plain variables are ignored: wrapper helpers such as
``derive_rng`` legitimately forward a caller-supplied label, and the
call sites that feed them are what get checked.  :mod:`repro.rng`
itself is exempt for the same reason.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.violations import LIBRARY, Violation, register_rule

_DERIVE_NAMES = ("derive_seed", "derive_rng")

#: Placeholder standing in for a ``{...}`` field in an f-string label.
_HOLE = "\x00"


class _LabelSite:
    def __init__(self, path: str, line: int, col: int, kind: str, text: str) -> None:
        self.path = path
        self.line = line
        self.col = col
        self.kind = kind  # "literal" | "template"
        self.text = text  # literal value, or template with _HOLE markers

    def display(self) -> str:
        return self.text.replace(_HOLE, "{...}")


def _label_argument(call: ast.Call) -> Optional[ast.expr]:
    if len(call.args) >= 2:
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "label":
            return keyword.value
    return None


def _normalise(node: ast.expr) -> Optional[Tuple[str, str]]:
    """(kind, text) for a literal/f-string label, or None if dynamic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "literal", node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append(_HOLE)
        text = "".join(parts)
        return ("template", text) if _HOLE in text else ("literal", text)
    return None


def _collect_sites(files) -> List[_LabelSite]:
    sites: List[_LabelSite] = []
    for source in files:
        if source.package == "rng":
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_derive = (
                isinstance(func, ast.Name) and func.id in _DERIVE_NAMES
            ) or (
                isinstance(func, ast.Attribute) and func.attr in _DERIVE_NAMES
            )
            if not is_derive:
                continue
            label = _label_argument(node)
            if label is None:
                continue
            normalised = _normalise(label)
            if normalised is None:
                continue
            kind, text = normalised
            sites.append(
                _LabelSite(
                    path=source.path,
                    line=label.lineno,
                    col=label.col_offset,
                    kind=kind,
                    text=text,
                )
            )
    return sites


def _template_regex(template: str) -> "re.Pattern[str]":
    pattern = "".join(
        ".+" if chunk == _HOLE else re.escape(chunk)
        for chunk in re.split(f"({_HOLE})", template)
        if chunk
    )
    return re.compile(f"^{pattern}$")


@register_rule
class DuplicateSeedLabelRule:
    """S201: the same label derived at two different call sites."""

    rule_id = "S201"
    name = "duplicate-seed-label"
    description = (
        "two call sites pass the same label to derive_seed/derive_rng, so "
        "their streams are identical; namespace labels by module/purpose"
    )
    scope = "project"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        groups: Dict[str, List[_LabelSite]] = {}
        for site in _collect_sites(files):
            groups.setdefault(site.text, []).append(site)
        for text in sorted(groups):
            sites = groups[text]
            locations = sorted({(s.path, s.line) for s in sites})
            if len(locations) < 2:
                continue
            for site in sites:
                others = ", ".join(
                    f"{p}:{ln}"
                    for p, ln in locations
                    if (p, ln) != (site.path, site.line)
                )
                yield Violation(
                    rule=self.rule_id,
                    name=self.name,
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"seed label {site.display()!r} is also derived at "
                        f"{others}; identical labels share one stream"
                    ),
                )


@register_rule
class CollidingSeedLabelRule:
    """S202: a literal label that a dynamic f-string label can produce."""

    rule_id = "S202"
    name = "colliding-seed-label"
    description = (
        "a literal seed label matches what an f-string label elsewhere can "
        "expand to, so the streams can collide at runtime"
    )
    scope = "project"
    kinds = (LIBRARY,)

    def check(self, files) -> Iterable[Violation]:
        sites = _collect_sites(files)
        literals = [s for s in sites if s.kind == "literal"]
        templates = [s for s in sites if s.kind == "template"]
        for literal in literals:
            for template in templates:
                if (literal.path, literal.line) == (template.path, template.line):
                    continue
                if _template_regex(template.text).match(literal.text):
                    yield Violation(
                        rule=self.rule_id,
                        name=self.name,
                        path=literal.path,
                        line=literal.line,
                        col=literal.col,
                        message=(
                            f"literal seed label {literal.text!r} can collide "
                            f"with template {template.display()!r} at "
                            f"{template.path}:{template.line}"
                        ),
                    )
