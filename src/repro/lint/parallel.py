"""Multiprocess file linting (``reprolint --jobs N``).

This module is a sanctioned pool home (see rule D112): the only place
in the lint package allowed to construct a :class:`ProcessPoolExecutor`.
It practices what the pool-hygiene rules preach:

* the worker is a top-level function, picklable under the ``spawn``
  start method;
* payloads are plain tuples of strings, results plain tuples of
  violation rows — nothing that drags module state across the boundary;
* workers mutate nothing shared; the parent merges and sorts, so the
  final output is byte-identical to a serial run regardless of job
  count or completion order.

Each worker re-parses its file and runs only *file-scoped* rules;
project-scoped rules need every file at once and always run in the
parent.  Suppressions are applied in the worker (it holds the file
text), so rows coming back are final findings.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.lint.violations import Violation, all_rules

#: payload: (path, force_kind-or-None, file-rule IDs to run)
_WorkerPayload = Tuple[str, Optional[str], Tuple[str, ...]]
#: result row mirrors cache rows: (rule, name, path, line, col, message)
_Row = Tuple[str, str, str, int, int, str]


def _lint_file_worker(payload: _WorkerPayload) -> Tuple[str, List[_Row]]:
    """Parse one file and run the named file-scoped rules over it."""
    from repro.lint.engine import parse_file, run_file_rules

    path, force_kind, rule_ids = payload
    wanted = set(rule_ids)
    rules = [rule for rule in all_rules() if rule.rule_id in wanted]
    source, parse_violation = parse_file(path, force_kind=force_kind)
    if source is None:
        # The parent already reported the parse error; nothing to add.
        assert parse_violation is not None
        return path, []
    rows = [
        (v.rule, v.name, v.path, v.line, v.col, v.message)
        for v in run_file_rules(source, rules)
    ]
    return path, rows


def lint_files_parallel(
    paths: Sequence[str],
    force_kind: Optional[str],
    rule_ids: Sequence[str],
    jobs: int,
) -> List[Tuple[str, List[Violation]]]:
    """File-rule findings for ``paths``, fanned over ``jobs`` processes.

    Results come back keyed by path in submission order — completion
    order never leaks into output.
    """
    payloads: List[_WorkerPayload] = [
        (path, force_kind, tuple(rule_ids)) for path in paths
    ]
    results: List[Tuple[str, List[Violation]]] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for path, rows in pool.map(_lint_file_worker, payloads):
            violations = [
                Violation(
                    rule=rule, name=name, path=vpath, line=line, col=col,
                    message=message,
                )
                for rule, name, vpath, line, col, message in rows
            ]
            results.append((path, violations))
    return results
