"""The declared layer DAG of the ``repro`` package.

A package may import from its own layer or any lower layer, never from
a higher one.  Within-layer imports are allowed (e.g. ``bgp`` and
``anycast`` reference each other's value types), which is the standard
layered-architecture reading of the DAG

    netaddr/rng/errors -> geo/topology -> bgp/icmp/dns/traffic
        -> probing/collector/atlas/resolvers/load/analysis
        -> core -> cli

with four additions reflecting the tree as it actually is:

* ``anycast`` (sites, service, catchment value types) sits with ``bgp``
  — and ``traffic.attack`` leans on this: it reads catchment value
  types (a within-layer import) to concentrate attack hotspots, while
  the planner consuming it (``core.playbook``) sits at layer 4 with
  the other experiment drivers;
* ``lint`` (this tool) is layer 0 — it may import only ``errors`` and
  its layer-0 sibling ``obs`` (the engine reports spans and cache
  counters through an observer);
* ``obs`` (tracing spans, metrics, profiling hooks) is also layer 0:
  every pipeline layer above it reports into it, so it may import
  nothing but ``errors``;
* ``datasets`` and ``reporting`` sit between ``core`` and ``cli``:
  they serialise and render *outputs* of the core drivers;
* ``service`` (the always-on mapping daemon) sits with them: it drives
  ``core`` deployments and the layer-3 collector/load machinery, and
  only ``cli`` sits above it.

``analysis`` is kept below ``core`` by construction: the result types
it consumes (:class:`~repro.collector.results.ScanResult`,
:class:`~repro.analysis.results.StabilitySeries`, ...) live in layer-3
modules, and ``core`` re-exports them for its callers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Index in this tuple == layer number (0 is the bottom).
LAYERS: Tuple[Tuple[str, ...], ...] = (
    ("errors", "rng", "netaddr", "lint", "obs"),
    ("geo", "topology"),
    ("anycast", "bgp", "icmp", "dns", "traffic"),
    ("probing", "collector", "atlas", "resolvers", "load", "analysis"),
    ("core",),
    ("datasets", "reporting", "service"),
    ("cli", "__init__", "__main__"),
)

_LAYER_OF: Dict[str, int] = {}
for _index, _members in enumerate(LAYERS):
    for _member in _members:
        _LAYER_OF[_member] = _index


def layer_of(package: str) -> Optional[int]:
    """Layer number of a top-level package, or None if undeclared."""
    return _LAYER_OF.get(package)
