"""Whole-program symbol index for reprolint.

Per-file AST passes cannot see hazards that cross a module boundary: a
seed label derived in ``core/`` colliding with one forwarded through a
helper in ``probing/``, or shared mutable state reached transitively by
a process-pool worker.  :class:`ProjectIndex` is the substrate for
those rules: it takes every parsed :class:`~repro.lint.engine.SourceFile`
of one lint run, assigns each a dotted module name, resolves import
bindings to fully-qualified targets, and tables every top-level
function and method so :mod:`repro.lint.callgraph` can connect call
sites to definitions.

The index is deliberately flow-insensitive — the same approximation the
file-scoped rules use — and resolves only what static text supports:
absolute imports, ``module.attr`` references through imported modules,
``self.method`` within a class, and plain names.  Anything dynamic
resolves to ``None`` and simply contributes no edge.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Module-level bindings to these callables count as *mutable* globals
#: for escape analysis (W502).
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "OrderedDict"}
)
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)


def module_name_of(path: str) -> str:
    """Dotted module name of a source file, inferred from its path.

    Files under a ``repro/`` component are named from that root
    (``src/repro/bgp/cache.py`` -> ``repro.bgp.cache``; package
    ``__init__.py`` collapses onto the package).  Anything else —
    tests, tools — falls back to its path with separators dotted, so
    every file still has a unique, stable name.
    """
    parts = [part for part in os.path.normpath(path).split(os.sep) if part and part != "."]
    anchor = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and index + 1 < len(parts):
            anchor = index
            break
    if anchor is not None:
        tail = parts[anchor:]
    else:
        tail = parts
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__" and len(tail) > 1:
        tail = tail[:-1]
    return ".".join(part for part in tail if part)


@dataclass
class FunctionInfo:
    """One top-level function or method, as the index sees it."""

    qualname: str  # e.g. "repro.bgp.cache.RoutingCache.get"
    module: str  # owning module name
    name: str  # bare function name
    class_name: Optional[str]  # enclosing class, if a method
    path: str
    lineno: int
    col: int
    node: ast.AST  # the FunctionDef / AsyncFunctionDef
    kind: str  # tree kind of the owning file
    params: Tuple[str, ...] = ()  # positional-then-kwonly parameter names

    @property
    def display(self) -> str:
        """Short human name used in rule messages."""
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass
class ModuleInfo:
    """Everything the index knows about one source file."""

    name: str
    path: str
    source: object  # the engine's SourceFile (kept untyped: layer 0)
    tree: ast.Module
    kind: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    global_names: Set[str] = field(default_factory=set)
    #: name -> lineno of a module-level binding to a mutable container.
    mutable_globals: Dict[str, int] = field(default_factory=dict)


class ProjectIndex:
    """Symbol table spanning every file of one lint run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.module_of_path: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[object]) -> "ProjectIndex":
        """Index every parsed SourceFile (first binding of a name wins)."""
        index = cls()
        for source in files:
            name = module_name_of(source.path)
            if name in index.modules:
                # Two files mapping to one dotted name (e.g. fixture
                # trees mirroring real packages): fall back to a
                # path-unique name so neither shadows the other.
                fallback = source.path.replace(os.sep, ".")
                if fallback.endswith(".py"):
                    fallback = fallback[: -len(".py")]
                name = fallback
            module = ModuleInfo(
                name=name,
                path=source.path,
                source=source,
                tree=source.tree,
                kind=source.kind,
            )
            index.modules[name] = module
            index.module_of_path[source.path] = name
            index._collect_imports(module)
            index._collect_functions(module)
            index._collect_globals(module)
        return index

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    module.imports[bound] = f"{node.module}.{alias.name}"

    def _collect_functions(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(module, item, class_name=node.name)

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        class_name: Optional[str],
    ) -> None:
        local = f"{class_name}.{node.name}" if class_name else node.name
        qualname = f"{module.name}.{local}"
        params = tuple(
            arg.arg for arg in list(node.args.args) + list(node.args.kwonlyargs)
        )
        info = FunctionInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            class_name=class_name,
            path=module.path,
            lineno=node.lineno,
            col=node.col_offset,
            node=node,
            kind=module.kind,
            params=params,
        )
        module.functions[local] = info
        self.functions[qualname] = info

    def _collect_globals(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.target is not None:
                targets = [node.target]
                value = node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                module.global_names.add(target.id)
                if value is not None and _is_mutable_value(value):
                    module.mutable_globals.setdefault(target.id, node.lineno)

    # -- resolution -------------------------------------------------------

    def resolve(
        self,
        module: ModuleInfo,
        expr: ast.AST,
        class_name: Optional[str] = None,
    ) -> Optional[str]:
        """Fully-qualified name a reference resolves to, if any.

        Returns a qualname present in :attr:`functions`, a module name
        present in :attr:`modules`, an imported external dotted name,
        or ``None`` for anything dynamic.
        """
        if isinstance(expr, ast.Name):
            if expr.id in module.functions:
                return module.functions[expr.id].qualname
            if class_name is not None:
                local = f"{class_name}.{expr.id}"
                if local in module.functions:
                    return module.functions[local].qualname
            target = module.imports.get(expr.id)
            if target is None:
                return None
            return self._canonical(target)
        if isinstance(expr, ast.Attribute):
            base: Optional[str]
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and class_name is not None
            ):
                local = f"{class_name}.{expr.attr}"
                if local in module.functions:
                    return module.functions[local].qualname
                return None
            base = self.resolve(module, expr.value, class_name)
            if base is None:
                return None
            return self._canonical(f"{base}.{expr.attr}")
        return None

    def _canonical(self, dotted: str) -> str:
        """Collapse a dotted target onto a known definition if one exists.

        ``repro.bgp.cache`` (module import) stays a module name;
        ``repro.bgp.cache.default_routing_cache`` maps onto the indexed
        function.  Unknown names pass through untouched so external
        references (``repro.rng.derive_seed`` when ``rng.py`` is not in
        the run) are still comparable as strings.
        """
        if dotted in self.functions or dotted in self.modules:
            return dotted
        # A from-import of a module: "pkg.sub" bound via "from pkg import sub".
        return dotted

    def function_at(self, qualname: str) -> Optional[FunctionInfo]:
        """Indexed function for ``qualname``, or None."""
        return self.functions.get(qualname)

    def module_named(self, name: str) -> Optional[ModuleInfo]:
        """Indexed module for ``name``, or None."""
        return self.modules.get(name)


def _is_mutable_value(value: ast.AST) -> bool:
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_FACTORIES
    return False
