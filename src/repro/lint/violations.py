"""Violation record, rule protocol, and the rule registry.

A *rule* is any object satisfying the small protocol below; rules are
registered with :func:`register_rule` (usable as a decorator on a rule
class) and discovered by the engine through :func:`all_rules`.  Adding a
rule to reprolint therefore means writing one module under
``repro/lint/rules/`` and importing it from ``repro.lint.rules`` —
nothing in the engine changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Protocol, Sequence, Tuple

from repro.errors import ConfigurationError

#: Tree kinds a source file can belong to.  Rules declare which kinds
#: they inspect: library invariants (wall clocks, layering, raises) do
#: not bind test code, while global-randomness bans bind everything.
LIBRARY = "library"
TESTS = "tests"
BENCHMARKS = "benchmarks"
EXAMPLES = "examples"
ALL_KINDS = (LIBRARY, TESTS, BENCHMARKS, EXAMPLES)


@dataclass(frozen=True)
class Violation:
    """One finding: rule identity plus location plus a human message."""

    rule: str  # short stable ID, e.g. "D101"
    name: str  # kebab-case rule name, e.g. "global-random"
    path: str  # path as given to the engine
    line: int  # 1-based
    col: int  # 0-based, as in the AST
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} ({self.name}) {self.message}"


class Rule(Protocol):
    """The plugin protocol every reprolint rule implements.

    ``scope`` is ``"file"`` (checked one file at a time) or
    ``"project"`` (sees every collected file at once — needed for
    cross-module invariants such as seed-label uniqueness).

    Two optional class attributes refine engine behaviour:

    * ``version`` (int, default 1) — bump it whenever the rule's
      findings can change for unchanged input; it is part of the
      incremental cache key, so the bump invalidates stale entries.
    * ``wants_context`` (bool, default False) — project-scoped rules
      that set it receive the run's shared
      :class:`~repro.lint.rules.interproc.WholeProgramContext` as a
      second ``check`` argument, so the symbol index and call graph
      are built once per run, not once per rule.
    """

    rule_id: str
    name: str
    description: str
    scope: str  # "file" | "project"
    kinds: Sequence[str]

    def check(self, files: Sequence["SourceFile"]) -> Iterable[Violation]:  # noqa: F821
        """Yield violations. File-scoped rules receive a single file."""
        ...


def rule_version(rule: object) -> int:
    """A rule's declared ``version`` (cache key component), default 1."""
    return int(getattr(rule, "version", 1))


def rule_wants_context(rule: object) -> bool:
    """Whether a project rule asked for the shared whole-program context."""
    return bool(getattr(rule, "wants_context", False))


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule_class):
    """Class decorator: instantiate and register a rule.

    Raises :class:`~repro.errors.ConfigurationError` on duplicate rule
    IDs so two plugins can never silently shadow each other.
    """
    rule = rule_class()
    for attribute in ("rule_id", "name", "description", "scope", "kinds"):
        if not hasattr(rule, attribute):
            raise ConfigurationError(
                f"lint rule {rule_class.__name__} lacks required attribute "
                f"{attribute!r}"
            )
    if rule.rule_id in _REGISTRY:
        raise ConfigurationError(f"duplicate lint rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> List[Rule]:
    """Registered rules, sorted by rule ID for deterministic output."""
    import repro.lint.rules  # noqa: F401  (importing registers built-ins)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_identifiers() -> Dict[str, str]:
    """Map of every accepted suppression token to its rule ID."""
    tokens: Dict[str, str] = {}
    for rule in all_rules():
        tokens[rule.rule_id] = rule.rule_id
        tokens[rule.name] = rule.rule_id
    return tokens
