"""reprolint: determinism & invariant static analysis for this repository.

The reproduction's claims rest on bit-identical reruns, machine-checked
here rather than promised in docstrings.  Five rule families:

* **determinism hygiene** (``D1xx``) — no global ``random`` state, no
  wall-clock reads, no ``hash()``-derived values, no set-iteration-order
  leaks in library code;
* **seed-stream uniqueness** (``S2xx``) — every ``derive_seed`` /
  ``derive_rng`` label in the library names a distinct stream;
* **exception discipline** (``E3xx``) — library code raises only the
  :mod:`repro.errors` hierarchy;
* **import layering** (``L4xx``) — packages respect the declared layer
  DAG (see :mod:`repro.lint.layers`);
* **whole-program dataflow** (``W5xx``) — seed labels, pool-escaping
  state, and float accumulation tracked *across* call edges over a
  project-wide symbol index and call graph (see
  :mod:`repro.lint.index`, :mod:`repro.lint.callgraph`,
  :mod:`repro.lint.rules.interproc`).

Run it with ``python -m repro.lint`` or the ``reprolint`` console
script.  Suppress a finding in place with ``# reprolint:
disable=<rule>`` on the offending line.  Results are cached
incrementally under ``.reprolint_cache/`` and file rules can fan out
with ``--jobs N``; findings are byte-identical regardless.  New rules
are added as one module under :mod:`repro.lint.rules` (see
CONTRIBUTING.md).
"""

from repro.lint.engine import LintResult, lint_paths
from repro.lint.violations import Violation, all_rules, register_rule

__all__ = [
    "LintResult",
    "Violation",
    "all_rules",
    "lint_paths",
    "register_rule",
]
