"""reprolint engine: collect files, parse, run rules, filter, format.

The engine is rule-agnostic: it knows how to turn paths into parsed
:class:`SourceFile` records, how per-line ``# reprolint:
disable=<rule>`` suppressions work, and how to render findings as text
or machine-readable JSON.  Everything domain-specific lives in
:mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.violations import (
    ALL_KINDS,
    BENCHMARKS,
    EXAMPLES,
    LIBRARY,
    TESTS,
    Violation,
    all_rules,
)

#: Directory names never descended into while walking.  ``lint_fixtures``
#: holds files that deliberately violate every rule; they are linted only
#: when named explicitly (as the fixture tests do).
_SKIP_DIRS = {"lint_fixtures", "__pycache__", ".git", ".ruff_cache", ".pytest_cache"}

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_\-,\s]+)")

#: Rule ID used for files that fail to parse.
PARSE_ERROR_RULE = "P001"


@dataclass
class SourceFile:
    """One parsed source file plus everything rules need to know."""

    path: str  # as reported in findings
    kind: str  # library/tests/benchmarks/examples
    package: Optional[str]  # top-level package under repro/, if any
    text: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, rule_id: str, rule_name: str) -> bool:
        tokens = self.suppressions.get(line)
        if not tokens:
            return False
        return "all" in tokens or rule_id in tokens or rule_name in tokens


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation]
    files_scanned: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> str:
        """Stable machine output: sorted findings, fixed key order."""
        payload = {
            "version": 1,
            "files_scanned": self.files_scanned,
            "violation_count": len(self.violations),
            "violations": [
                {
                    "rule": violation.rule,
                    "name": violation.name,
                    "path": violation.path,
                    "line": violation.line,
                    "col": violation.col,
                    "message": violation.message,
                }
                for violation in self.violations
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=False)

    def to_text(self) -> str:
        lines = [violation.format() for violation in self.violations]
        noun = "finding" if len(self.violations) == 1 else "findings"
        lines.append(
            f"reprolint: {len(self.violations)} {noun} in "
            f"{self.files_scanned} files"
        )
        return "\n".join(lines)


def classify_kind(path: str) -> str:
    """Which tree a file belongs to, from its path components."""
    parts = _parts(path)
    if "tests" in parts:
        return TESTS
    if "benchmarks" in parts:
        return BENCHMARKS
    if "examples" in parts:
        return EXAMPLES
    return LIBRARY


def infer_package(path: str) -> Optional[str]:
    """Top-level package of a file under a ``repro/`` tree, or None.

    ``src/repro/bgp/updates.py`` -> ``bgp``; ``src/repro/rng.py`` ->
    ``rng``; ``src/repro/__init__.py`` -> ``__init__``.  The *last*
    ``repro`` component wins so fixture trees nested under ``tests/``
    still resolve.
    """
    parts = _parts(path)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and index + 1 < len(parts):
            nxt = parts[index + 1]
            if nxt.endswith(".py"):
                return nxt[: -len(".py")]
            return nxt
    return None


def _parts(path: str) -> Tuple[str, ...]:
    return tuple(part for part in os.path.normpath(path).split(os.sep) if part)


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of .py files.

    Explicitly named files are always included (that is how the fixture
    corpus gets linted); directories are walked with ``_SKIP_DIRS``
    pruned.
    """
    collected: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            collected.add(path)
            continue
        if not os.path.isdir(path):
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"no such file or directory: {path!r}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in files:
                if name.endswith(".py"):
                    collected.add(os.path.join(root, name))
    return sorted(collected)


def parse_file(path: str, force_kind: Optional[str] = None) -> Tuple[Optional[SourceFile], Optional[Violation]]:
    """Parse one file into a SourceFile, or a parse-error violation."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as error:
        return None, Violation(
            rule=PARSE_ERROR_RULE,
            name="parse-error",
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            message=f"cannot parse file: {error.msg}",
        )
    suppressions: Dict[int, Set[str]] = {}
    for line_number, line in enumerate(text.splitlines(), 1):
        match = _SUPPRESS_RE.search(line)
        if match:
            tokens = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            suppressions[line_number] = tokens
    source = SourceFile(
        path=path,
        kind=force_kind or classify_kind(path),
        package=infer_package(path),
        text=text,
        tree=tree,
        suppressions=suppressions,
    )
    return source, None


def lint_paths(
    paths: Sequence[str],
    force_kind: Optional[str] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint ``paths`` and return every unsuppressed finding, sorted.

    ``force_kind`` overrides tree classification (the fixture tests use
    it to hold test-tree fixtures to library rules); ``rule_ids``
    restricts the run to a subset of rules.
    """
    if force_kind is not None and force_kind not in ALL_KINDS:
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"unknown tree kind {force_kind!r}")
    files: List[SourceFile] = []
    findings: List[Violation] = []
    for path in collect_files(paths):
        source, parse_violation = parse_file(path, force_kind=force_kind)
        if parse_violation is not None:
            findings.append(parse_violation)
        if source is not None:
            files.append(source)

    selected = all_rules()
    if rule_ids is not None:
        known = {rule.rule_id for rule in selected}
        unknown = sorted(set(rule_ids) - known)
        if unknown:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown rule id(s): {', '.join(unknown)}"
            )
        wanted = set(rule_ids)
        selected = [rule for rule in selected if rule.rule_id in wanted]

    for rule in selected:
        applicable = [source for source in files if source.kind in rule.kinds]
        if not applicable:
            continue
        if rule.scope == "project":
            produced = list(rule.check(applicable))
        else:
            produced = []
            for source in applicable:
                produced.extend(rule.check([source]))
        by_path = {source.path: source for source in files}
        for violation in produced:
            source = by_path.get(violation.path)
            if source is not None and source.suppressed(
                violation.line, rule.rule_id, rule.name
            ):
                continue
            findings.append(violation)

    findings.sort(key=lambda violation: violation.sort_key())
    return LintResult(violations=findings, files_scanned=len(files))
