"""reprolint engine: collect files, parse, run rules, filter, format.

The engine is rule-agnostic: it knows how to turn paths into parsed
:class:`SourceFile` records, how per-line ``# reprolint:
disable=<rule>`` suppressions work, and how to render findings as text
or machine-readable JSON.  Everything domain-specific lives in
:mod:`repro.lint.rules`.

Three engine features, all output-invariant (the findings of a run are
byte-identical however they were produced):

* **incremental caching** (``cache_dir=``) — per-file results keyed by
  content digest and rule versions, the whole-program pass keyed over
  the full file manifest; see :mod:`repro.lint.cache`;
* **multiprocess linting** (``jobs=``) — file-scoped rules fan out over
  a spawn-safe process pool; see :mod:`repro.lint.parallel`;
* **observability** (``observer=``) — spans and counters around the
  parse, per-file, and whole-program passes via :mod:`repro.obs`.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.cache import LintCache, digest_text, rules_fingerprint
from repro.lint.violations import (
    ALL_KINDS,
    BENCHMARKS,
    EXAMPLES,
    LIBRARY,
    TESTS,
    Violation,
    all_rules,
    rule_wants_context,
)

#: Directory names never descended into while walking.  ``lint_fixtures``
#: holds files that deliberately violate every rule; they are linted only
#: when named explicitly (as the fixture tests do).
_SKIP_DIRS = {"lint_fixtures", "__pycache__", ".git", ".ruff_cache", ".pytest_cache"}

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_\-,\s]+)")

#: Rule ID used for files that fail to parse.
PARSE_ERROR_RULE = "P001"


@dataclass
class SourceFile:
    """One parsed source file plus everything rules need to know."""

    path: str  # as reported in findings
    kind: str  # library/tests/benchmarks/examples
    package: Optional[str]  # top-level package under repro/, if any
    text: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, rule_id: str, rule_name: str) -> bool:
        tokens = self.suppressions.get(line)
        if not tokens:
            return False
        return "all" in tokens or rule_id in tokens or rule_name in tokens


@dataclass
class LintResult:
    """Outcome of one lint run.

    ``cache_hits``/``cache_misses`` count per-file cache lookups and
    ``project_cache_hit`` records whether the whole-program pass was
    replayed; none of the three appear in :meth:`to_json` or
    :meth:`to_text` — cached and uncached runs must render identically.
    """

    violations: List[Violation]
    files_scanned: int
    cache_hits: int = 0
    cache_misses: int = 0
    project_cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> str:
        """Stable machine output: sorted findings, fixed key order."""
        payload = {
            "version": 1,
            "files_scanned": self.files_scanned,
            "violation_count": len(self.violations),
            "violations": [
                {
                    "rule": violation.rule,
                    "name": violation.name,
                    "path": violation.path,
                    "line": violation.line,
                    "col": violation.col,
                    "message": violation.message,
                }
                for violation in self.violations
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=False)

    def to_text(self) -> str:
        lines = [violation.format() for violation in self.violations]
        noun = "finding" if len(self.violations) == 1 else "findings"
        lines.append(
            f"reprolint: {len(self.violations)} {noun} in "
            f"{self.files_scanned} files"
        )
        return "\n".join(lines)


def classify_kind(path: str) -> str:
    """Which tree a file belongs to, from its path components."""
    parts = _parts(path)
    if "tests" in parts:
        return TESTS
    if "benchmarks" in parts:
        return BENCHMARKS
    if "examples" in parts:
        return EXAMPLES
    return LIBRARY


def infer_package(path: str) -> Optional[str]:
    """Top-level package of a file under a ``repro/`` tree, or None.

    ``src/repro/bgp/updates.py`` -> ``bgp``; ``src/repro/rng.py`` ->
    ``rng``; ``src/repro/__init__.py`` -> ``__init__``.  The *last*
    ``repro`` component wins so fixture trees nested under ``tests/``
    still resolve.
    """
    parts = _parts(path)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and index + 1 < len(parts):
            nxt = parts[index + 1]
            if nxt.endswith(".py"):
                return nxt[: -len(".py")]
            return nxt
    return None


def _parts(path: str) -> Tuple[str, ...]:
    return tuple(part for part in os.path.normpath(path).split(os.sep) if part)


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of .py files.

    Explicitly named files are always included (that is how the fixture
    corpus gets linted); directories are walked with ``_SKIP_DIRS``
    pruned.
    """
    collected: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            collected.add(path)
            continue
        if not os.path.isdir(path):
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"no such file or directory: {path!r}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in files:
                if name.endswith(".py"):
                    collected.add(os.path.join(root, name))
    return sorted(collected)


def parse_file(path: str, force_kind: Optional[str] = None) -> Tuple[Optional[SourceFile], Optional[Violation]]:
    """Parse one file into a SourceFile, or a parse-error violation."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as error:
        return None, Violation(
            rule=PARSE_ERROR_RULE,
            name="parse-error",
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            message=f"cannot parse file: {error.msg}",
        )
    suppressions: Dict[int, Set[str]] = {}
    for line_number, line in enumerate(text.splitlines(), 1):
        match = _SUPPRESS_RE.search(line)
        if match:
            tokens = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            suppressions[line_number] = tokens
    source = SourceFile(
        path=path,
        kind=force_kind or classify_kind(path),
        package=infer_package(path),
        text=text,
        tree=tree,
        suppressions=suppressions,
    )
    return source, None


def run_file_rules(
    source: SourceFile, rules: Sequence[object]
) -> List[Violation]:
    """File-scoped findings for one file, suppressions applied.

    Shared by the serial path, the cache-fill path, and the
    ``--jobs`` worker, so every execution mode produces identical
    per-file results.
    """
    findings: List[Violation] = []
    for rule in rules:
        if rule.scope != "file" or source.kind not in rule.kinds:
            continue
        for violation in rule.check([source]):
            if source.suppressed(violation.line, rule.rule_id, rule.name):
                continue
            findings.append(violation)
    return findings


def _select_rules(rule_ids: Optional[Sequence[str]]) -> List[object]:
    selected = all_rules()
    if rule_ids is None:
        return selected
    known = {rule.rule_id for rule in selected}
    unknown = sorted(set(rule_ids) - known)
    if unknown:
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"unknown rule id(s): {', '.join(unknown)}")
    wanted = set(rule_ids)
    return [rule for rule in selected if rule.rule_id in wanted]


def _run_project_rules(
    files: Sequence[SourceFile], rules: Sequence[object]
) -> List[Violation]:
    """Project-scoped findings over the full file set, suppressed.

    Rules declaring ``wants_context`` share one lazily-built
    whole-program context (symbol index plus call graph) instead of
    each constructing their own.
    """
    from repro.lint.rules.interproc import WholeProgramContext

    context = WholeProgramContext(files)
    by_path = {source.path: source for source in files}
    findings: List[Violation] = []
    for rule in rules:
        applicable = [source for source in files if source.kind in rule.kinds]
        if not applicable:
            continue
        if rule_wants_context(rule):
            produced = list(rule.check(applicable, context))
        else:
            produced = list(rule.check(applicable))
        for violation in produced:
            source = by_path.get(violation.path)
            if source is not None and source.suppressed(
                violation.line, rule.rule_id, rule.name
            ):
                continue
            findings.append(violation)
    return findings


def lint_paths(
    paths: Sequence[str],
    force_kind: Optional[str] = None,
    rule_ids: Optional[Sequence[str]] = None,
    *,
    jobs: int = 0,
    cache_dir: Optional[str] = None,
    observer=None,
) -> LintResult:
    """Lint ``paths`` and return every unsuppressed finding, sorted.

    ``force_kind`` overrides tree classification (the fixture tests use
    it to hold test-tree fixtures to library rules); ``rule_ids``
    restricts the run to a subset of rules; ``jobs`` > 1 fans
    file-scoped rules over a process pool; ``cache_dir`` enables the
    incremental result cache.  Output is byte-identical across every
    combination of those options.
    """
    if observer is None:
        from repro.obs import NULL_OBSERVER

        observer = NULL_OBSERVER
    if force_kind is not None and force_kind not in ALL_KINDS:
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"unknown tree kind {force_kind!r}")
    selected = _select_rules(rule_ids)
    file_rules = [rule for rule in selected if rule.scope == "file"]
    project_rules = [rule for rule in selected if rule.scope == "project"]
    cache = LintCache(cache_dir) if cache_dir else None

    collected = collect_files(paths)
    with observer.tracer.span(
        "lint.run", files=len(collected), jobs=jobs, cached=cache is not None
    ):
        files: List[SourceFile] = []
        findings: List[Violation] = []
        digests: Dict[str, str] = {}
        with observer.tracer.span("lint.parse", files=len(collected)):
            for path in collected:
                source, parse_violation = parse_file(path, force_kind=force_kind)
                if parse_violation is not None:
                    findings.append(parse_violation)
                if source is not None:
                    files.append(source)
                    digests[source.path] = digest_text(source.text)

        # Per-file pass: replay cached results, lint the rest (in the
        # parent, or across a process pool for jobs > 1).
        file_fingerprint = rules_fingerprint(file_rules)
        to_lint: List[SourceFile] = []
        file_keys: Dict[str, str] = {}
        for source in files:
            key = LintCache.file_key(
                source.path, digests[source.path], source.kind, file_fingerprint
            )
            file_keys[source.path] = key
            cached = cache.load(key) if cache is not None else None
            if cached is not None:
                findings.extend(cached)
            else:
                to_lint.append(source)
        with observer.tracer.span(
            "lint.files",
            linted=len(to_lint),
            replayed=len(files) - len(to_lint),
        ):
            if jobs > 1 and to_lint:
                from repro.lint.parallel import lint_files_parallel

                produced = lint_files_parallel(
                    [source.path for source in to_lint],
                    force_kind,
                    [rule.rule_id for rule in file_rules],
                    jobs,
                )
                for path, file_findings in produced:
                    findings.extend(file_findings)
                    if cache is not None:
                        cache.store(file_keys[path], file_findings)
            else:
                for source in to_lint:
                    file_findings = run_file_rules(source, file_rules)
                    findings.extend(file_findings)
                    if cache is not None:
                        cache.store(file_keys[source.path], file_findings)

        # Whole-program pass: one cache entry over the full manifest.
        project_cache_hit = False
        if project_rules and files:
            project_fingerprint = rules_fingerprint(project_rules)
            manifest = [
                (source.path, digests[source.path], source.kind)
                for source in files
            ]
            project_key = LintCache.project_key(manifest, project_fingerprint)
            cached = cache.load(project_key) if cache is not None else None
            with observer.tracer.span(
                "lint.project",
                rules=len(project_rules),
                replayed=cached is not None,
            ):
                if cached is not None:
                    project_cache_hit = True
                    findings.extend(cached)
                else:
                    produced = _run_project_rules(files, project_rules)
                    findings.extend(produced)
                    if cache is not None:
                        cache.store(project_key, produced)

        findings.sort(key=lambda violation: violation.sort_key())
        if cache is not None:
            observer.metrics.counter("lint.cache.hits").inc(cache.hits)
            observer.metrics.counter("lint.cache.misses").inc(cache.misses)
        return LintResult(
            violations=findings,
            files_scanned=len(files),
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
            project_cache_hit=project_cache_hit,
        )
