"""Incremental result cache for reprolint.

Linting is a pure function of (file content, rule set): the same bytes
checked by the same rules always produce the same findings.  The cache
exploits that — each per-file entry is keyed by the file's content
digest, its tree kind, and a fingerprint of every *file-scoped* rule's
``(rule_id, version)`` pair, so editing a file or bumping a rule's
``version`` invalidates exactly the entries that could change.
Project-scoped rules see every file at once, so their single entry is
keyed over the full sorted ``(path, digest, kind)`` manifest plus the
project-rule fingerprint: touching any one file re-runs the
whole-program pass, which is the only sound option.

Entries are JSON files under ``<root>/<xx>/<digest>.json`` (two-level
fan-out keeps directories small) and are written atomically via a
temporary file plus :func:`os.replace`, so a killed lint run can never
leave a torn entry behind.  Cached findings are stored
*post-suppression*; replaying them is byte-identical to re-linting.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.violations import Violation, rule_version

#: Bumped whenever the entry layout itself changes.
CACHE_SCHEMA = 1

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".reprolint_cache"


def digest_text(text: str) -> str:
    """Content digest used in cache keys (stable across runs)."""
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def rules_fingerprint(rules: Iterable[object]) -> str:
    """Digest of a rule set's identity: sorted (rule_id, version) pairs.

    Bumping any rule's ``version`` class attribute changes this
    fingerprint and therefore invalidates every entry it keyed.
    """
    manifest = sorted((rule.rule_id, rule_version(rule)) for rule in rules)
    payload = json.dumps([CACHE_SCHEMA, manifest], separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def _violation_to_row(violation: Violation) -> List[object]:
    return [
        violation.rule,
        violation.name,
        violation.path,
        violation.line,
        violation.col,
        violation.message,
    ]


def _row_to_violation(row: Sequence[object]) -> Violation:
    rule, name, path, line, col, message = row
    return Violation(
        rule=str(rule),
        name=str(name),
        path=str(path),
        line=int(line),
        col=int(col),
        message=str(message),
    )


class LintCache:
    """Content-addressed store of per-file and project lint results."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    # -- keys -------------------------------------------------------------

    @staticmethod
    def file_key(path: str, text_digest: str, kind: str, fingerprint: str) -> str:
        raw = "\x1f".join(("file", path, text_digest, kind, fingerprint))
        return hashlib.blake2b(raw.encode("utf-8"), digest_size=16).hexdigest()

    @staticmethod
    def project_key(
        manifest: Sequence[Tuple[str, str, str]], fingerprint: str
    ) -> str:
        rows = sorted(manifest)
        payload = json.dumps(["project", fingerprint, rows], separators=(",", ":"))
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

    # -- storage ----------------------------------------------------------

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def load(self, key: str) -> Optional[List[Violation]]:
        """Cached findings for ``key``, or None on miss/corruption."""
        try:
            with open(self._entry_path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            self.misses += 1
            return None
        try:
            violations = [
                _row_to_violation(row) for row in payload.get("violations", [])
            ]
        except (TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return violations

    def store(self, key: str, violations: Sequence[Violation]) -> None:
        """Atomically persist findings under ``key`` (best-effort)."""
        entry_path = self._entry_path(key)
        payload = {
            "schema": CACHE_SCHEMA,
            "violations": [_violation_to_row(v) for v in violations],
        }
        try:
            os.makedirs(os.path.dirname(entry_path), exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w",
                dir=os.path.dirname(entry_path),
                prefix=".tmp-",
                suffix=".json",
                delete=False,
                encoding="utf-8",
            )
            with handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(handle.name, entry_path)
        except OSError:
            # A read-only or full filesystem degrades to uncached linting.
            pass
