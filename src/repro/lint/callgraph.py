"""Static call graph over a :class:`~repro.lint.index.ProjectIndex`.

Edges come in two strengths:

* **call** edges — an ``ast.Call`` whose callee resolves to an indexed
  function (including ``self.method`` and ``module.func`` forms);
* **reference** edges — an indexed function passed *as an argument*
  (``pool.map(worker, ...)``, ``_run_indexed(measure, count)``), the
  standard approximation for first-order higher-order flow.

Calls inside nested ``def``s and lambdas are attributed to the
enclosing top-level function or method: a nested worker executes on its
parent's behalf, and that is exactly the resolution the pool-escape and
float-accumulation rules need.  Module-level statements are attributed
to a pseudo-caller named after the module itself.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.index import FunctionInfo, ModuleInfo, ProjectIndex


@dataclass(frozen=True)
class CallSite:
    """One resolved reference from ``caller`` to ``callee``."""

    caller: str  # qualname (or module pseudo-caller)
    callee: str  # qualname of an indexed function
    path: str
    line: int
    col: int
    is_reference: bool  # passed as an argument rather than called


class CallGraph:
    """Caller -> callee edges plus reachability over them."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: Dict[str, List[CallSite]] = {}
        self.callers: Dict[str, List[CallSite]] = {}
        for module in index.modules.values():
            self._scan_module(module)

    # -- construction -----------------------------------------------------

    def _scan_module(self, module: ModuleInfo) -> None:
        # Module-level code (outside any def/class) as a pseudo-caller.
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            self._scan_body(module, node, caller=module.name, class_name=None)
        for info in module.functions.values():
            self._scan_body(
                module, info.node, caller=info.qualname, class_name=info.class_name
            )

    def _scan_body(
        self,
        module: ModuleInfo,
        root: ast.AST,
        caller: str,
        class_name: Optional[str],
    ) -> None:
        for node in ast.walk(root):
            if node is root:
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = self.index.resolve(module, node.func, class_name)
            if callee is not None and callee in self.index.functions:
                self._add(
                    CallSite(
                        caller=caller,
                        callee=callee,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        is_reference=False,
                    )
                )
            for argument in list(node.args) + [kw.value for kw in node.keywords]:
                if not isinstance(argument, (ast.Name, ast.Attribute)):
                    continue
                target = self.index.resolve(module, argument, class_name)
                if target is not None and target in self.index.functions:
                    self._add(
                        CallSite(
                            caller=caller,
                            callee=target,
                            path=module.path,
                            line=argument.lineno,
                            col=argument.col_offset,
                            is_reference=True,
                        )
                    )

    def _add(self, site: CallSite) -> None:
        self.edges.setdefault(site.caller, []).append(site)
        self.callers.setdefault(site.callee, []).append(site)

    # -- queries ----------------------------------------------------------

    def callees_of(self, caller: str) -> List[CallSite]:
        """Outgoing edges of one function, in source order."""
        return sorted(
            self.edges.get(caller, []), key=lambda site: (site.line, site.col)
        )

    def reachable(
        self,
        roots: Iterable[str],
        include_references: bool = True,
    ) -> Dict[str, Optional[CallSite]]:
        """Every function reachable from ``roots``, with its discovery edge.

        Returns ``{qualname: site-or-None}`` where ``None`` marks a
        root.  BFS in sorted order so the discovery tree (and therefore
        every reported chain) is deterministic.
        """
        reach: Dict[str, Optional[CallSite]] = {}
        queue: deque = deque()
        for root in sorted(set(roots)):
            reach[root] = None
            queue.append(root)
        while queue:
            current = queue.popleft()
            for site in self.callees_of(current):
                if site.is_reference and not include_references:
                    continue
                if site.callee in reach:
                    continue
                reach[site.callee] = site
                queue.append(site.callee)
        return reach

    def chain(
        self, reach: Dict[str, Optional[CallSite]], target: str
    ) -> List[str]:
        """Root-to-target qualname chain through the discovery tree."""
        names: List[str] = [target]
        seen: Set[str] = {target}
        site = reach.get(target)
        while site is not None:
            if site.caller in seen:
                break
            names.append(site.caller)
            seen.add(site.caller)
            site = reach.get(site.caller)
        names.reverse()
        return names


def format_chain(chain: Sequence[str]) -> str:
    """Human-readable ``a -> b -> c`` chain with short names."""
    return " -> ".join(_short(name) for name in chain)


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    if len(parts) <= 2:
        return qualname
    return ".".join(parts[-2:])
