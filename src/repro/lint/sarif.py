"""SARIF 2.1.0 rendering of lint results.

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI platforms ingest to annotate findings onto PR diffs.  One
run object carries the tool's rule catalog plus one result per
finding; paths are emitted as forward-slash relative URIs and columns
converted from reprolint's 0-based to SARIF's 1-based convention.

Output is deterministic: findings keep the engine's sort order and
keys are emitted in a fixed order, so identical lint results render
byte-identical SARIF.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from repro.lint.violations import all_rules

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Rule families that gate CI hard are errors; everything else warns.
_ERROR_LEVEL = "error"


def to_sarif(result, tool_version: str = "1.0.0") -> str:
    """Render a :class:`~repro.lint.engine.LintResult` as SARIF JSON."""
    rules = all_rules()
    rule_index = {rule.rule_id: position for position, rule in enumerate(rules)}
    driver_rules: List[dict] = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
            "defaultConfiguration": {"level": _ERROR_LEVEL},
        }
        for rule in rules
    ]
    results: List[dict] = []
    for violation in result.violations:
        entry = {
            "ruleId": violation.rule,
            "level": _ERROR_LEVEL,
            "message": {"text": f"({violation.name}) {violation.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        position = rule_index.get(violation.rule)
        if position is not None:
            entry["ruleIndex"] = position
        results.append(entry)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/reprolint"
                        ),
                        "version": tool_version,
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///", "description": {
                        "text": "repository root"
                    }}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)
