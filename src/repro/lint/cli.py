"""Command-line entry point for reprolint.

``python -m repro.lint [paths...]`` or the ``reprolint`` console
script.  Exit status is 0 when no findings survive suppression, 1
otherwise, and 2 for usage errors — so ``make lint`` can gate CI.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lint.engine import lint_paths
from repro.lint.violations import ALL_KINDS, all_rules

_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Determinism & invariant static analysis for the repro "
            "simulation substrate."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to lint (default: any of "
            f"{', '.join(_DEFAULT_PATHS)} that exist)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: %(default)s)",
    )
    parser.add_argument(
        "--kind",
        choices=ALL_KINDS,
        default=None,
        help=(
            "treat every file as this tree kind instead of classifying "
            "by path (the fixture tests use --kind=library)"
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE_ID",
        default=None,
        help="run only this rule ID (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        kinds = ",".join(rule.kinds)
        lines.append(f"{rule.rule_id}  {rule.name}  [{rule.scope}; {kinds}]")
        lines.append(f"      {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_list_rules())
        return 0
    if options.paths:
        paths: List[str] = list(options.paths)
    else:
        paths = [path for path in _DEFAULT_PATHS if os.path.isdir(path)]
        if not paths:
            parser.error("no default tree found; name files or directories")
    try:
        result = lint_paths(paths, force_kind=options.kind, rule_ids=options.rules)
    except ConfigurationError as error:
        parser.error(str(error))
    if options.format == "json":
        print(result.to_json())
    else:
        print(result.to_text())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
