"""Command-line entry point for reprolint.

``python -m repro.lint [paths...]`` or the ``reprolint`` console
script.  Exit status is 0 when no findings survive suppression, 1
otherwise, and 2 for usage errors — so ``make lint`` can gate CI.

Engine features surface here: ``--jobs N`` fans file rules over a
process pool, the incremental cache is on by default (``--no-cache``
to disable, ``--cache-dir`` to relocate), and ``--format sarif``
emits SARIF 2.1.0 for CI annotation (``--output`` writes it to a
file).  None of the options change the findings — output is
byte-identical across serial, parallel, cold, and warm runs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lint.cache import DEFAULT_CACHE_DIR
from repro.lint.engine import lint_paths
from repro.lint.violations import ALL_KINDS, all_rules, rule_version

_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Determinism & invariant static analysis for the repro "
            "simulation substrate."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to lint (default: any of "
            f"{', '.join(_DEFAULT_PATHS)} that exist)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--kind",
        choices=ALL_KINDS,
        default=None,
        help=(
            "treat every file as this tree kind instead of classifying "
            "by path (the fixture tests use --kind=library)"
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE_ID",
        default=None,
        help="run only this rule ID (repeatable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help=(
            "lint file-scoped rules across N worker processes "
            "(default: serial; output is byte-identical either way)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="incremental result cache location (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache for this run",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit/miss counters to stderr after the run",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        kinds = ",".join(rule.kinds)
        lines.append(
            f"{rule.rule_id}  {rule.name}  "
            f"[{rule.scope}; v{rule_version(rule)}; {kinds}]"
        )
        lines.append(f"      {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_list_rules())
        return 0
    if options.jobs < 0:
        parser.error("--jobs must be >= 0")
    if options.paths:
        paths: List[str] = list(options.paths)
    else:
        paths = [path for path in _DEFAULT_PATHS if os.path.isdir(path)]
        if not paths:
            parser.error("no default tree found; name files or directories")
    cache_dir = None if options.no_cache else options.cache_dir
    try:
        result = lint_paths(
            paths,
            force_kind=options.kind,
            rule_ids=options.rules,
            jobs=options.jobs,
            cache_dir=cache_dir,
        )
    except ConfigurationError as error:
        parser.error(str(error))
    if options.format == "json":
        report = result.to_json()
    elif options.format == "sarif":
        from repro.lint.sarif import to_sarif

        report = to_sarif(result)
    else:
        report = result.to_text()
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    if options.stats:
        print(
            f"reprolint cache: {result.cache_hits} hits, "
            f"{result.cache_misses} misses, project "
            f"{'hit' if result.project_cache_hit else 'miss'}",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
