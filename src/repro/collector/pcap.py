"""Binary pcap capture (standard libpcap format).

The paper's third collection method is plain tcpdump; this module
implements the actual artefact tcpdump produces: a libpcap file
(magic ``0xa1b2c3d4``, version 2.4, LINKTYPE_RAW) whose records are the
real encoded IPv4/ICMP reply packets.  Files written here are readable
by any pcap tool; :class:`PcapCapture` plugs the format in as a
Verfploeter capture backend.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, List, Tuple

from repro.collector.capture import SiteCapture
from repro.errors import DatasetError, MeasurementError
from repro.icmp.network import DeliveredReply
from repro.icmp.packets import build_reply, parse_packet

_MAGIC = 0xA1B2C3D4
_VERSION_MAJOR = 2
_VERSION_MINOR = 4
_SNAPLEN = 65_535
_LINKTYPE_RAW = 101  # raw IPv4/IPv6 packets
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapWriter:
    """Writes packets into a libpcap stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        stream.write(
            _GLOBAL_HEADER.pack(
                _MAGIC, _VERSION_MAJOR, _VERSION_MINOR, 0, 0, _SNAPLEN,
                _LINKTYPE_RAW,
            )
        )

    def write_packet(self, packet: bytes, timestamp: float) -> None:
        """Append one packet with its capture timestamp."""
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1e6))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        self._stream.write(
            _RECORD_HEADER.pack(seconds, microseconds, len(packet), len(packet))
        )
        self._stream.write(packet)


class PcapReader:
    """Iterates ``(timestamp, packet)`` records of a libpcap stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        header = stream.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise DatasetError("pcap stream truncated before global header")
        magic, major, minor, _, _, _, network = _GLOBAL_HEADER.unpack(header)
        if magic != _MAGIC:
            raise DatasetError(f"bad pcap magic {magic:#x}")
        if (major, minor) != (_VERSION_MAJOR, _VERSION_MINOR):
            raise DatasetError(f"unsupported pcap version {major}.{minor}")
        if network != _LINKTYPE_RAW:
            raise DatasetError(f"unsupported linktype {network}")

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        while True:
            header = self._stream.read(_RECORD_HEADER.size)
            if not header:
                return
            if len(header) < _RECORD_HEADER.size:
                raise DatasetError("pcap record header truncated")
            seconds, microseconds, included, original = _RECORD_HEADER.unpack(header)
            if included != original:
                raise DatasetError("truncated packet capture unsupported")
            packet = self._stream.read(included)
            if len(packet) < included:
                raise DatasetError("pcap packet body truncated")
            yield seconds + microseconds / 1e6, packet


class PcapCapture(SiteCapture):
    """tcpdump-equivalent capture: replies stored as real packets.

    Needs the measurement address (the replies' destination) to
    reconstruct full packets; on drain, packets are parsed back into
    reply records — exercising the wire format end to end.
    """

    def __init__(self, site_code: str, stream: BinaryIO,
                 measurement_address: int) -> None:
        super().__init__(site_code)
        self._stream = stream
        self._measurement_address = measurement_address
        self._writer = PcapWriter(stream)

    def record(self, reply: DeliveredReply) -> None:
        """Re-encode one reply as a packet and append it to the pcap."""
        if reply.site_code != self.site_code:
            raise MeasurementError(
                f"capture at {self.site_code} received a reply for {reply.site_code}"
            )
        packet = build_reply(
            reply.source_address,
            self._measurement_address,
            reply.identifier,
            reply.sequence,
        )
        self._writer.write_packet(packet, reply.timestamp)

    def drain(self) -> List[DeliveredReply]:
        """Parse the pcap back into reply records."""
        self._stream.seek(0)
        reader = PcapReader(self._stream)
        replies: List[DeliveredReply] = []
        for timestamp, packet in reader:
            header, message = parse_packet(packet)
            replies.append(
                DeliveredReply(
                    site_code=self.site_code,
                    source_address=header.source,
                    identifier=message.identifier,
                    sequence=message.sequence,
                    timestamp=timestamp,
                )
            )
        self._stream.seek(0)
        self._stream.truncate()
        self._writer = PcapWriter(self._stream)
        return replies
