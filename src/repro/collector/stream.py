"""Streaming reply cleaning: :func:`clean_replies` fed batch by batch.

The batch cleaner sorts a whole round's replies and makes one pass; an
always-on collector never *has* the whole round — replies arrive as the
dataplane delivers them.  :class:`StreamingCleaner` applies the same §4
rules (wrong round → unsolicited → late → duplicates, first matching
rule counts) incrementally: each :meth:`~StreamingCleaner.feed` sorts
only its own batch and checks duplicates against the addresses kept by
every earlier batch.

Equivalence contract: when the concatenation of the fed batches is in
the batch cleaner's global sort order (timestamp, source, site,
identifier, sequence) — which it is for batches chunked from a
:class:`~repro.collector.aggregate.CentralCollector` drain — the
cumulative :attr:`~StreamingCleaner.totals` are *identical* to one
:func:`clean_replies` call over all replies at once, kept list
included.  ``tests/test_collector.py`` asserts this for every batch
size.

Batches commit atomically: a batch that raises mid-way (a poisoned
reply object, say) leaves the cleaner's counters, kept list, and
duplicate-tracking state untouched, so the service can quarantine the
batch and keep ingesting.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Set

from repro.collector.cleaning import CleaningConfig, CleaningResult
from repro.icmp.network import DeliveredReply
from repro.obs import NULL_OBSERVER, Observer

def _reply_sort_key(reply: DeliveredReply):
    """The batch cleaner's full tuple key (see ``cleaning.clean_replies``)."""
    return (
        reply.timestamp,
        reply.source_address,
        reply.site_code,
        reply.identifier,
        reply.sequence,
    )


class StreamingCleaner:
    """One round's cleaning state, fed a reply stream batch by batch."""

    def __init__(
        self,
        probed_addresses: Set[int],
        round_identifier: int,
        round_start: float,
        config: Optional[CleaningConfig] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self._probed = probed_addresses
        self._identifier = round_identifier & 0xFFFF
        self._round_start = round_start
        self._config = config if config is not None else CleaningConfig()
        self._observer = observer if observer is not None else NULL_OBSERVER
        self._seen: Set[int] = set()
        self._totals = CleaningResult()
        self._batches = 0

    @property
    def totals(self) -> CleaningResult:
        """Cumulative result over every committed batch."""
        return self._totals

    @property
    def batches(self) -> int:
        """Number of batches committed so far."""
        return self._batches

    def feed(self, replies: Sequence[DeliveredReply]) -> CleaningResult:
        """Clean one batch; returns the batch's own counts and kept replies.

        The batch is staged completely before any state is committed:
        if a malformed reply raises, the cleaner is exactly as it was
        before the call (the caller quarantines the batch and moves on).
        """
        staged = CleaningResult()
        staged_seen: Set[int] = set()
        cutoff = self._config.late_cutoff_seconds
        with self._observer.tracer.span(
            "cleaning.stream.batch", batch=self._batches
        ) as span:
            for reply in sorted(replies, key=_reply_sort_key):
                if reply.identifier != self._identifier:
                    staged.wrong_round += 1
                    continue
                if reply.source_address not in self._probed:
                    staged.unsolicited += 1
                    continue
                if reply.timestamp - self._round_start > cutoff:
                    staged.late += 1
                    continue
                if (
                    reply.source_address in self._seen
                    or reply.source_address in staged_seen
                ):
                    staged.duplicates += 1
                    continue
                staged_seen.add(reply.source_address)
                staged.kept.append(reply)
            span.set(total=staged.total, kept=len(staged.kept))
        # Commit: nothing above mutated self, so a raise leaves no trace.
        self._seen |= staged_seen
        self._totals.kept.extend(staged.kept)
        self._totals.wrong_round += staged.wrong_round
        self._totals.unsolicited += staged.unsolicited
        self._totals.late += staged.late
        self._totals.duplicates += staged.duplicates
        self._batches += 1
        metrics = self._observer.metrics
        metrics.counter("cleaning.kept").inc(len(staged.kept))
        metrics.counter("cleaning.dropped", rule="wrong_round").inc(
            staged.wrong_round
        )
        metrics.counter("cleaning.dropped", rule="unsolicited").inc(
            staged.unsolicited
        )
        metrics.counter("cleaning.dropped", rule="late").inc(staged.late)
        metrics.counter("cleaning.dropped", rule="duplicate").inc(
            staged.duplicates
        )
        return staged

    def stream(
        self, batches: Iterable[Sequence[DeliveredReply]]
    ) -> Iterator[CleaningResult]:
        """Generator over ``batches``: feed each, yield its batch result.

        Lazily pulls from ``batches``, so an unbounded reply source
        (the always-on service's dataplane feed) cleans in constant
        memory per batch.
        """
        for batch in batches:
            yield self.feed(batch)
