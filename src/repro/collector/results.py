"""Scan result value types.

These are produced by the measurement drivers in :mod:`repro.core`
but consumed throughout the analysis layer, so they live here (the
collector layer) to keep analysis below core in the layer DAG.
``repro.core`` re-exports them for its callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.anycast.catchment import CatchmentMap

_PROBE_BYTES = 28 + 11  # IPv4 + ICMP headers + default payload


@dataclass(frozen=True)
class ScanStats:
    """Bookkeeping of one scan (paper §4 cleaning numbers)."""

    probes_sent: int
    replies_received: int
    wrong_round: int
    unsolicited: int
    late: int
    duplicates: int
    kept: int

    @property
    def response_rate(self) -> float:
        """Fraction of probed blocks that yielded a kept reply."""
        return self.kept / self.probes_sent if self.probes_sent else 0.0

    @property
    def traffic_megabytes(self) -> float:
        """Probe traffic volume (the paper reports ~128 MB per round)."""
        return self.probes_sent * _PROBE_BYTES / 1e6


@dataclass
class ScanResult:
    """One completed Verfploeter measurement round.

    ``rtts`` maps each mapped block to the measured round-trip time in
    milliseconds (probe transmission to first kept reply) — the raw
    material for latency analysis and site-placement suggestions.
    """

    dataset_id: str
    round_id: int
    start_time: float
    duration_seconds: float
    catchment: CatchmentMap
    stats: ScanStats
    rtts: Optional[Dict[int, float]] = None

    @property
    def mapped_blocks(self) -> int:
        """Blocks with a measured catchment."""
        return len(self.catchment)

    def median_rtt_of_site(self, site_code: str) -> Optional[float]:
        """Median measured RTT (ms) of blocks in ``site_code``'s catchment."""
        if not self.rtts:
            return None
        values = sorted(
            rtt
            for block, rtt in self.rtts.items()
            if self.catchment.site_of(block) == site_code
        )
        if not values:
            return None
        return values[len(values) // 2]
