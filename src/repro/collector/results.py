"""Scan result value types.

These are produced by the measurement drivers in :mod:`repro.core`
but consumed throughout the analysis layer, so they live here (the
collector layer) to keep analysis below core in the layer DAG.
``repro.core`` re-exports them for its callers.

``BlockValueMap`` is the columnar companion of the catchment map: an
immutable ``Mapping[int, float]`` backed by a sorted block array plus a
value array, so the vectorised scan engine can hand per-block RTTs to
the analysis layer without materialising a Python dict per round.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.anycast.catchment import ArrayCatchmentMap, CatchmentMap
from repro.errors import BlockLookupError, DatasetError

_PROBE_BYTES = 28 + 11  # IPv4 + ICMP headers + default payload


class BlockValueMap(MappingABC):
    """Columnar ``{block: float}`` mapping over sorted block keys.

    Behaves like a read-only dict (iteration, ``in``, ``.items()``,
    ``.get()``, equality against any mapping) while keeping the data as
    two parallel numpy arrays for vectorised consumers.
    """

    __slots__ = ("_blocks", "_values")

    def __init__(self, blocks: np.ndarray, values: np.ndarray) -> None:
        blocks = np.asarray(blocks, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if blocks.shape != values.shape or blocks.ndim != 1:
            raise DatasetError("blocks and values must be 1-D arrays of equal length")
        if blocks.size > 1 and not (np.diff(blocks) > 0).all():
            raise DatasetError("blocks must be strictly ascending")
        self._blocks = blocks
        self._values = values

    def block_array(self) -> np.ndarray:
        """The sorted block keys (do not mutate)."""
        return self._blocks

    def value_array(self) -> np.ndarray:
        """Values aligned with :meth:`block_array` (do not mutate)."""
        return self._values

    def _row_of(self, block: object) -> Optional[int]:
        try:
            key = int(block)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        if block != key:  # e.g. 3.5 must not match block 3 (dict semantics)
            return None
        if self._blocks.size == 0 or not -(2**63) <= key < 2**63:
            return None
        pos = int(np.searchsorted(self._blocks, key))
        if pos >= self._blocks.size or int(self._blocks[pos]) != key:
            return None
        return pos

    def __len__(self) -> int:
        return int(self._blocks.size)

    def __iter__(self) -> Iterator[int]:
        return (int(block) for block in self._blocks)

    def __contains__(self, block: object) -> bool:
        return self._row_of(block) is not None

    def __getitem__(self, block: int) -> float:
        row = self._row_of(block)
        if row is None:
            raise BlockLookupError(block)
        return float(self._values[row])

    def items(self) -> Iterator[Tuple[int, float]]:  # type: ignore[override]
        """All ``(block, value)`` pairs, ascending by block."""
        return (
            (int(block), float(value))
            for block, value in zip(self._blocks, self._values)
        )


@dataclass(frozen=True)
class ScanStats:
    """Bookkeeping of one scan (paper §4 cleaning numbers)."""

    probes_sent: int
    replies_received: int
    wrong_round: int
    unsolicited: int
    late: int
    duplicates: int
    kept: int

    @property
    def response_rate(self) -> float:
        """Fraction of probed blocks that yielded a kept reply."""
        return self.kept / self.probes_sent if self.probes_sent else 0.0

    @property
    def traffic_megabytes(self) -> float:
        """Probe traffic volume (the paper reports ~128 MB per round)."""
        return self.probes_sent * _PROBE_BYTES / 1e6


@dataclass
class ScanResult:
    """One completed Verfploeter measurement round.

    ``rtts`` maps each mapped block to the measured round-trip time in
    milliseconds (probe transmission to first kept reply) — the raw
    material for latency analysis and site-placement suggestions.  The
    scalar engine supplies a plain dict; the vectorised engine supplies
    a :class:`BlockValueMap` with identical contents.
    """

    dataset_id: str
    round_id: int
    start_time: float
    duration_seconds: float
    catchment: CatchmentMap
    stats: ScanStats
    rtts: Optional[Mapping[int, float]] = None

    @property
    def mapped_blocks(self) -> int:
        """Blocks with a measured catchment."""
        return len(self.catchment)

    def median_rtt_of_site(self, site_code: str) -> Optional[float]:
        """Median measured RTT (ms) of blocks in ``site_code``'s catchment."""
        if not self.rtts:
            return None
        if isinstance(self.rtts, BlockValueMap) and isinstance(
            self.catchment, ArrayCatchmentMap
        ):
            site_index = self.catchment.index_of_site(site_code)
            if site_index is None:
                return None
            indices = self.catchment.site_indices_of(self.rtts.block_array())
            values = np.sort(self.rtts.value_array()[indices == site_index])
            if values.size == 0:
                return None
            return float(values[values.size // 2])
        values = sorted(
            rtt
            for block, rtt in self.rtts.items()
            if self.catchment.site_of(block) == site_code
        )
        if not values:
            return None
        return values[len(values) // 2]
