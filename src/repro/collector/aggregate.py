"""Central aggregation of per-site captures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.collector.capture import SiteCapture
from repro.errors import MeasurementError
from repro.icmp.network import DeliveredReply
from repro.obs import NULL_OBSERVER, Observer


class CentralCollector:
    """Collects replies from all anycast sites into one ordered stream.

    The paper copies capture data from every site to a central site for
    analysis; measurement only works if *all* sites capture
    concurrently (a reply lands wherever BGP sends it).
    """

    def __init__(
        self,
        captures: Iterable[SiteCapture],
        observer: Optional[Observer] = None,
    ) -> None:
        self._captures: Dict[str, SiteCapture] = {}
        self._observer = observer if observer is not None else NULL_OBSERVER
        for capture in captures:
            if capture.site_code in self._captures:
                raise MeasurementError(f"duplicate capture for {capture.site_code}")
            self._captures[capture.site_code] = capture
        if not self._captures:
            raise MeasurementError("collector needs at least one site capture")

    @property
    def site_codes(self) -> List[str]:
        """Sites with a running capture."""
        return sorted(self._captures)

    def ingest(self, reply: DeliveredReply) -> None:
        """Route one delivered reply to its site's capture."""
        capture = self._captures.get(reply.site_code)
        if capture is None:
            raise MeasurementError(
                f"reply arrived at {reply.site_code} but no capture runs there — "
                "captures must run concurrently at every anycast site"
            )
        capture.record(reply)

    def collect(self) -> List[DeliveredReply]:
        """Drain every site and merge, ordered by arrival time."""
        observer = self._observer
        with observer.tracer.span("collector.merge") as span:
            merged: List[DeliveredReply] = []
            for site_code in sorted(self._captures):
                drained = self._captures[site_code].drain()
                if observer.enabled:
                    observer.metrics.counter(
                        "collector.site_replies", site=site_code
                    ).inc(len(drained))
                merged.extend(drained)
            merged.sort(
                key=lambda reply: (
                    reply.timestamp,
                    reply.source_address,
                    reply.site_code,
                    reply.identifier,
                    reply.sequence,
                )
            )
            span.set(replies=len(merged), sites=len(self._captures))
        return merged
