"""Central aggregation of per-site captures."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.collector.capture import SiteCapture
from repro.errors import MeasurementError
from repro.icmp.network import DeliveredReply


class CentralCollector:
    """Collects replies from all anycast sites into one ordered stream.

    The paper copies capture data from every site to a central site for
    analysis; measurement only works if *all* sites capture
    concurrently (a reply lands wherever BGP sends it).
    """

    def __init__(self, captures: Iterable[SiteCapture]) -> None:
        self._captures: Dict[str, SiteCapture] = {}
        for capture in captures:
            if capture.site_code in self._captures:
                raise MeasurementError(f"duplicate capture for {capture.site_code}")
            self._captures[capture.site_code] = capture
        if not self._captures:
            raise MeasurementError("collector needs at least one site capture")

    @property
    def site_codes(self) -> List[str]:
        """Sites with a running capture."""
        return sorted(self._captures)

    def ingest(self, reply: DeliveredReply) -> None:
        """Route one delivered reply to its site's capture."""
        capture = self._captures.get(reply.site_code)
        if capture is None:
            raise MeasurementError(
                f"reply arrived at {reply.site_code} but no capture runs there — "
                "captures must run concurrently at every anycast site"
            )
        capture.record(reply)

    def collect(self) -> List[DeliveredReply]:
        """Drain every site and merge, ordered by arrival time."""
        merged: List[DeliveredReply] = []
        for site_code in sorted(self._captures):
            merged.extend(self._captures[site_code].drain())
        merged.sort(
            key=lambda reply: (
                reply.timestamp,
                reply.source_address,
                reply.site_code,
                reply.identifier,
                reply.sequence,
            )
        )
        return merged
