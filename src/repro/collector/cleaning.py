"""Data cleaning (paper §4).

Removes, in order:

* replies carrying a different measurement identifier (other rounds);
* *unsolicited* replies — from addresses we never probed (includes
  hosts that reply from a different address than the probed one);
* *late* replies — arriving more than the cut-off after round start
  (the paper uses 15 minutes);
* *duplicates* — extra replies beyond the first per source address
  (the paper sees ~2% duplicates, some hosts replying thousands of
  times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.errors import ConfigurationError
from repro.icmp.network import DeliveredReply
from repro.obs import NULL_OBSERVER, Observer


@dataclass(frozen=True)
class CleaningConfig:
    """Cleaning thresholds."""

    late_cutoff_seconds: float = 900.0

    def __post_init__(self) -> None:
        if self.late_cutoff_seconds <= 0:
            raise ConfigurationError("late_cutoff_seconds must be positive")


@dataclass
class CleaningResult:
    """Cleaned replies plus per-category removal counts."""

    kept: List[DeliveredReply] = field(default_factory=list)
    wrong_round: int = 0
    unsolicited: int = 0
    late: int = 0
    duplicates: int = 0

    @property
    def removed(self) -> int:
        """Total replies removed by all rules."""
        return self.wrong_round + self.unsolicited + self.late + self.duplicates

    @property
    def total(self) -> int:
        """Total replies examined."""
        return len(self.kept) + self.removed


def clean_replies(
    replies: List[DeliveredReply],
    probed_addresses: Set[int],
    round_identifier: int,
    round_start: float,
    config: Optional[CleaningConfig] = None,
    observer: Optional[Observer] = None,
) -> CleaningResult:
    """Apply the paper's cleaning rules to a collected reply stream.

    Keeps the first reply per source address; a host that answered from
    the "wrong" address is removed as unsolicited even when its /24 was
    probed, exactly as address-keyed cleaning does in the paper.

    A reply arriving *exactly* ``late_cutoff_seconds`` after round start
    is kept (the late rule is a strict ``>``); see the boundary test in
    ``tests/test_collector.py``.
    """
    if config is None:
        config = CleaningConfig()
    if observer is None:
        observer = NULL_OBSERVER
    result = CleaningResult()
    seen: Set[int] = set()
    with observer.tracer.span("cleaning.pass") as span:
        # Full tuple key: equal-timestamp ties (possible when two sites log
        # with coarse clocks) must not make the outcome input-order-dependent.
        for reply in sorted(
            replies,
            key=lambda r: (
                r.timestamp, r.source_address, r.site_code, r.identifier, r.sequence
            ),
        ):
            if reply.identifier != (round_identifier & 0xFFFF):
                result.wrong_round += 1
                continue
            if reply.source_address not in probed_addresses:
                result.unsolicited += 1
                continue
            if reply.timestamp - round_start > config.late_cutoff_seconds:
                result.late += 1
                continue
            if reply.source_address in seen:
                result.duplicates += 1
                continue
            seen.add(reply.source_address)
            result.kept.append(reply)
        span.set(total=result.total, kept=len(result.kept))
    metrics = observer.metrics
    metrics.counter("cleaning.kept").inc(len(result.kept))
    metrics.counter("cleaning.dropped", rule="wrong_round").inc(result.wrong_round)
    metrics.counter("cleaning.dropped", rule="unsolicited").inc(result.unsolicited)
    metrics.counter("cleaning.dropped", rule="late").inc(result.late)
    metrics.counter("cleaning.dropped", rule="duplicate").inc(result.duplicates)
    return result
