"""Response collection: per-site capture, aggregation, cleaning.

The paper runs three collection systems (§3.1): a custom near-real-time
forwarder (Tangled), the LANDER continuous-capture system (B-Root), and
plain tcpdump.  All three are modelled here behind one interface; the
cleaning stage then removes duplicates, unsolicited replies, and late
replies exactly as §4 describes.
"""

from repro.collector.aggregate import CentralCollector
from repro.collector.capture import (
    LanderCapture,
    PcapLikeCapture,
    SiteCapture,
    StreamingCapture,
)
from repro.collector.cleaning import CleaningConfig, CleaningResult, clean_replies
from repro.collector.pcap import PcapCapture, PcapReader, PcapWriter
from repro.collector.stream import StreamingCleaner

__all__ = [
    "StreamingCleaner",
    "SiteCapture",
    "StreamingCapture",
    "LanderCapture",
    "PcapLikeCapture",
    "CentralCollector",
    "CleaningConfig",
    "CleaningResult",
    "clean_replies",
    "PcapCapture",
    "PcapReader",
    "PcapWriter",
]
