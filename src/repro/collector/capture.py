"""Per-site reply capture implementations."""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, TextIO

from repro.errors import DatasetError, MeasurementError
from repro.icmp.network import DeliveredReply
from repro.netaddr.address import format_ipv4, parse_ipv4


class SiteCapture(abc.ABC):
    """Capture running at one anycast site.

    Subclasses differ in *how* records reach the central site, matching
    the paper's three deployments; all must preserve every record.
    """

    def __init__(self, site_code: str) -> None:
        self.site_code = site_code

    @abc.abstractmethod
    def record(self, reply: DeliveredReply) -> None:
        """Capture one reply arriving at this site."""

    @abc.abstractmethod
    def drain(self) -> List[DeliveredReply]:
        """Return (and clear) everything captured so far."""


class StreamingCapture(SiteCapture):
    """Custom near-real-time forwarder (used at Tangled).

    Forwards each record to a central sink as it arrives, tagging it
    with the capture site.
    """

    def __init__(
        self, site_code: str, sink: Optional[Callable[[DeliveredReply], None]] = None
    ) -> None:
        super().__init__(site_code)
        self._sink = sink
        self._buffer: List[DeliveredReply] = []

    def record(self, reply: DeliveredReply) -> None:
        """Forward one reply to the sink (or buffer it when sinkless)."""
        if reply.site_code != self.site_code:
            raise MeasurementError(
                f"capture at {self.site_code} received a reply for {reply.site_code}"
            )
        if self._sink is not None:
            self._sink(reply)
        else:
            self._buffer.append(reply)

    def drain(self) -> List[DeliveredReply]:
        """Hand over everything buffered since the last drain."""
        drained, self._buffer = self._buffer, []
        return drained


class LanderCapture(SiteCapture):
    """LANDER-style continuous capture (used at B-Root).

    Buffers records into fixed-length time bins, as a continuously
    running capture infrastructure would, and hands over whole bins.
    """

    def __init__(self, site_code: str, bin_seconds: float = 60.0) -> None:
        super().__init__(site_code)
        if bin_seconds <= 0:
            raise MeasurementError("bin_seconds must be positive")
        self._bin_seconds = bin_seconds
        self._bins: dict = {}

    def record(self, reply: DeliveredReply) -> None:
        """File one reply into its fixed-length time bin."""
        if reply.site_code != self.site_code:
            raise MeasurementError(
                f"capture at {self.site_code} received a reply for {reply.site_code}"
            )
        bin_index = int(reply.timestamp // self._bin_seconds)
        self._bins.setdefault(bin_index, []).append(reply)

    def drain(self) -> List[DeliveredReply]:
        """Hand over all bins, in time order, and reset them."""
        records = [
            reply
            for bin_index in sorted(self._bins)
            for reply in self._bins[bin_index]
        ]
        self._bins.clear()
        return records


class PcapLikeCapture(SiteCapture):
    """tcpdump-style capture to a text stream, parsed back on drain.

    Round-trips records through a serialisation format so a separate
    transfer step (the paper copies data manually) is exercised.
    """

    def __init__(self, site_code: str, stream: TextIO) -> None:
        super().__init__(site_code)
        self._stream = stream

    def record(self, reply: DeliveredReply) -> None:
        """Serialise one reply onto the text stream."""
        if reply.site_code != self.site_code:
            raise MeasurementError(
                f"capture at {self.site_code} received a reply for {reply.site_code}"
            )
        self._stream.write(
            f"{reply.timestamp:.6f}\t{format_ipv4(reply.source_address)}\t"
            f"{reply.identifier}\t{reply.sequence}\n"
        )

    def drain(self) -> List[DeliveredReply]:
        """Parse the whole stream back into reply records."""
        self._stream.seek(0)
        records: List[DeliveredReply] = []
        for line_number, line in enumerate(self._stream, 1):
            line = line.strip()
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) != 4:
                raise DatasetError(
                    f"{self.site_code} capture line {line_number}: "
                    f"expected 4 fields, got {len(fields)}"
                )
            timestamp_text, address_text, identifier_text, sequence_text = fields
            records.append(
                DeliveredReply(
                    site_code=self.site_code,
                    source_address=parse_ipv4(address_text),
                    identifier=int(identifier_text),
                    sequence=int(sequence_text),
                    timestamp=float(timestamp_text),
                )
            )
        self._stream.seek(0)
        self._stream.truncate()
        return records
