"""Open-resolver platform: catchment mapping via recursive resolvers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.anycast.service import AnycastService
from repro.bgp.propagation import RoutingOutcome
from repro.dns.message import CLASS_CHAOS, TYPE_TXT, DnsMessage
from repro.dns.server import SiteIdentityServer
from repro.errors import ConfigurationError
from repro.rng import uniform_unit
from repro.topology.internet import Internet

_RESOLVER_SALT = 0x52534C56
_SHUTDOWN_SALT = 0x53485554
_BUSY_SALT = 0x42555359


@dataclass(frozen=True)
class OpenResolverResult:
    """One resolver's measurement outcome."""

    block: int
    site_code: Optional[str]
    hostname: Optional[str]


class OpenResolverMeasurement:
    """Results of querying every reachable open resolver once."""

    def __init__(self, results: List[OpenResolverResult], site_codes: List[str]):
        self.results = results
        self.site_codes = site_codes

    @property
    def considered_resolvers(self) -> int:
        """Resolvers the measurement was attempted against."""
        return len(self.results)

    @property
    def responding(self) -> List[OpenResolverResult]:
        """Results that produced an answer."""
        return [result for result in self.results if result.site_code is not None]

    def responding_blocks(self) -> Set[int]:
        """Distinct /24 blocks with a responding resolver."""
        return {result.block for result in self.responding}

    def fractions(self) -> Dict[str, float]:
        """Share of responding resolvers per site."""
        total = len(self.responding)
        counts = {code: 0 for code in self.site_codes}
        for result in self.responding:
            counts[result.site_code] = counts.get(result.site_code, 0) + 1
        if total == 0:
            return {code: 0.0 for code in self.site_codes}
        return {code: count / total for code, count in counts.items()}

    def fraction_of(self, site_code: str) -> float:
        """Share of responding resolvers served by ``site_code``."""
        return self.fractions().get(site_code, 0.0)

    def block_catchments(self) -> Dict[int, str]:
        """Site per responding resolver block."""
        return {result.block: result.site_code for result in self.responding}


class OpenResolverPlatform:
    """The population of open recursive resolvers in the topology.

    ``shutdown_fraction`` models the steady closure of open resolvers:
    it removes that share of the historical population before any
    measurement (the paper's reason the method faded).
    """

    def __init__(
        self,
        internet: Internet,
        base_density: float = 0.045,
        shutdown_fraction: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 < base_density <= 1.0:
            raise ConfigurationError("base_density must be in (0, 1]")
        if not 0.0 <= shutdown_fraction < 1.0:
            raise ConfigurationError("shutdown_fraction must be in [0, 1)")
        self.internet = internet
        self._seed = internet.seed if seed is None else seed
        self._density = base_density
        self._shutdown = shutdown_fraction
        self.resolver_blocks = self._discover()

    def _discover(self) -> List[int]:
        """Blocks hosting a still-open resolver (deterministic)."""
        blocks: List[int] = []
        for block in self.internet.blocks:
            if uniform_unit(self._seed, _RESOLVER_SALT, block) >= self._density:
                continue
            if uniform_unit(self._seed, _SHUTDOWN_SALT, block) < self._shutdown:
                continue  # closed since the technique's heyday
            blocks.append(block)
        return blocks

    def __len__(self) -> int:
        return len(self.resolver_blocks)

    def is_resolver_busy(self, block: int, measurement_id: int) -> bool:
        """Transient failure: resolver rate-limited or overloaded (~5%)."""
        return uniform_unit(self._seed, _BUSY_SALT, block, measurement_id) < 0.05

    def measure(
        self,
        routing: RoutingOutcome,
        service: AnycastService,
        measurement_id: int = 0,
    ) -> OpenResolverMeasurement:
        """Query every open resolver for the service's site identity.

        Each resolver recursively queries the anycast service; BGP
        delivers its query to the resolver block's catchment site, whose
        nameserver identifies itself in the CHAOS TXT answer.
        """
        servers = {
            site.code: SiteIdentityServer(site.code, service.name)
            for site in service.sites
        }
        hostname_to_site = {
            server.hostname: code for code, server in servers.items()
        }
        results: List[OpenResolverResult] = []
        for index, block in enumerate(self.resolver_blocks):
            if self.is_resolver_busy(block, measurement_id):
                results.append(OpenResolverResult(block, None, None))
                continue
            site_code = routing.site_of_block(block, measurement_id)
            if site_code is None:
                results.append(OpenResolverResult(block, None, None))
                continue
            query = DnsMessage.query(
                message_id=(index + measurement_id) & 0xFFFF,
                name="hostname.bind",
                qtype=TYPE_TXT,
                qclass=CLASS_CHAOS,
            )
            response = servers[site_code].handle(DnsMessage.decode(query.encode()))
            decoded = DnsMessage.decode(response.encode())
            if decoded.rcode != 0 or not decoded.answers:
                results.append(OpenResolverResult(block, None, None))
                continue
            hostname = decoded.answers[0].txt_strings()[0]
            results.append(
                OpenResolverResult(block, hostname_to_site.get(hostname), hostname)
            )
        return OpenResolverMeasurement(results, service.site_codes)
