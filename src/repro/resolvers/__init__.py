"""Open DNS resolver measurement platform.

The anycast-mapping technique that predates both Atlas and Verfploeter
(paper §2, Fan et al. [18]): ask open recursive resolvers around the
Internet to query the anycast service; the site that answers each
resolver's query identifies the resolver's catchment.  Open resolvers
once offered ~300k vantage points but are being steadily shut down over
DNS-amplification concerns — the paper notes a direct comparison with
Verfploeter as future work, which this package provides.
"""

from repro.resolvers.platform import (
    OpenResolverMeasurement,
    OpenResolverPlatform,
    OpenResolverResult,
)

__all__ = [
    "OpenResolverPlatform",
    "OpenResolverMeasurement",
    "OpenResolverResult",
]
