"""Scan dataset serialisation.

The paper releases all of its measurement datasets; this module gives
scans the same treatment: a one-line-per-block TSV format carrying the
catchment and RTT of every mapped /24, plus the scan's metadata and
cleaning statistics, round-trippable through
:func:`write_scan` / :func:`read_scan`.
"""

from __future__ import annotations

from typing import TextIO

from repro.anycast.catchment import CatchmentMap
from repro.core.verfploeter import ScanResult, ScanStats
from repro.errors import DatasetError
from repro.netaddr.blocks import format_block, parse_block

_FORMAT_VERSION = 1


def write_scan(scan: ScanResult, stream: TextIO) -> None:
    """Serialise ``scan`` as a self-describing TSV dataset."""
    stats = scan.stats
    stream.write(f"# verfploeter-scan v{_FORMAT_VERSION}\n")
    stream.write(
        f"# dataset={scan.dataset_id} round={scan.round_id} "
        f"start={scan.start_time:.6f} duration={scan.duration_seconds:.6f}\n"
    )
    stream.write(
        f"# sites={','.join(scan.catchment.site_codes)}\n"
    )
    stream.write(
        f"# stats sent={stats.probes_sent} received={stats.replies_received} "
        f"wrong_round={stats.wrong_round} unsolicited={stats.unsolicited} "
        f"late={stats.late} duplicates={stats.duplicates} kept={stats.kept}\n"
    )
    rtts = scan.rtts or {}
    for block in sorted(scan.catchment.blocks()):
        site = scan.catchment.site_of(block)
        rtt = rtts.get(block)
        rtt_text = f"{rtt:.3f}" if rtt is not None else "-"
        stream.write(f"{format_block(block)}\t{site}\t{rtt_text}\n")


def _parse_kv(text: str) -> dict:
    pairs = {}
    for field in text.split():
        key, _, value = field.partition("=")
        if not value:
            raise DatasetError(f"malformed header field {field!r}")
        pairs[key] = value
    return pairs


def read_scan(stream: TextIO) -> ScanResult:
    """Parse a dataset produced by :func:`write_scan`."""
    magic = stream.readline().strip()
    if magic != f"# verfploeter-scan v{_FORMAT_VERSION}":
        raise DatasetError(f"not a verfploeter scan dataset: {magic!r}")
    meta_line = stream.readline().strip()
    if not meta_line.startswith("# "):
        raise DatasetError("missing metadata header")
    meta = _parse_kv(meta_line[2:])
    sites_line = stream.readline().strip()
    if not sites_line.startswith("# sites="):
        raise DatasetError("missing sites header")
    site_codes = sites_line[len("# sites="):].split(",")
    stats_line = stream.readline().strip()
    if not stats_line.startswith("# stats "):
        raise DatasetError("missing stats header")
    stats_fields = _parse_kv(stats_line[len("# stats "):])

    mapping = {}
    rtts = {}
    for line_number, line in enumerate(stream, 5):
        line = line.strip()
        if not line:
            continue
        fields = line.split("\t")
        if len(fields) != 3:
            raise DatasetError(
                f"line {line_number}: expected 3 fields, got {len(fields)}"
            )
        block = parse_block(fields[0])
        mapping[block] = fields[1]
        if fields[2] != "-":
            rtts[block] = float(fields[2])

    stats = ScanStats(
        probes_sent=int(stats_fields["sent"]),
        replies_received=int(stats_fields["received"]),
        wrong_round=int(stats_fields["wrong_round"]),
        unsolicited=int(stats_fields["unsolicited"]),
        late=int(stats_fields["late"]),
        duplicates=int(stats_fields["duplicates"]),
        kept=int(stats_fields["kept"]),
    )
    return ScanResult(
        dataset_id=meta["dataset"],
        round_id=int(meta["round"]),
        start_time=float(meta["start"]),
        duration_seconds=float(meta["duration"]),
        catchment=CatchmentMap(site_codes, mapping),
        stats=stats,
        rtts=rtts,
    )
