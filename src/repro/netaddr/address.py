"""IPv4 address parsing, formatting, and a lightweight wrapper type."""

from __future__ import annotations

import functools
from typing import Union

from repro.errors import AddressError

MAX_ADDRESS = (1 << 32) - 1


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer.

    Strict: exactly four decimal octets, each 0-255, no leading ``+``/``-``
    signs, no whitespace.  Leading zeros are rejected because historic
    parsers disagree on whether they are octal (CVE-class ambiguity).
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"invalid IPv4 address {text!r}: expected 4 octets")
    value = 0
    for part in parts:
        if not part or not part.isdigit():
            raise AddressError(f"invalid IPv4 address {text!r}: bad octet {part!r}")
        if len(part) > 1 and part[0] == "0":
            raise AddressError(
                f"invalid IPv4 address {text!r}: leading zero in octet {part!r}"
            )
        octet = int(part)
        if octet > 255:
            raise AddressError(f"invalid IPv4 address {text!r}: octet {octet} > 255")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format 32-bit integer ``value`` as a dotted quad."""
    if not 0 <= value <= MAX_ADDRESS:
        raise AddressError(f"address {value:#x} out of 32-bit range")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def is_valid_ipv4(text: str) -> bool:
    """Return True if ``text`` parses as a strict dotted-quad address."""
    try:
        parse_ipv4(text)
    except AddressError:
        return False
    return True


@functools.total_ordering
class IPv4Address:
    """An immutable IPv4 address.

    Thin wrapper over an int; ints and other ``IPv4Address`` objects
    compare and hash interchangeably where the library accepts either.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, str, "IPv4Address"]):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, str):
            self._value = parse_ipv4(value)
        elif isinstance(value, int):
            if not 0 <= value <= MAX_ADDRESS:
                raise AddressError(f"address {value:#x} out of 32-bit range")
            self._value = value
        else:
            raise AddressError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The address as a 32-bit integer."""
        return self._value

    @property
    def block(self) -> int:
        """The /24 block id containing this address (``value >> 8``)."""
        return self._value >> 8

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __str__(self) -> str:
        return format_ipv4(self._value)

    def __repr__(self) -> str:
        return f"IPv4Address({format_ipv4(self._value)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        if isinstance(other, int):
            return self._value < other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)
