"""IPv4 address machinery: addresses, prefixes, /24 blocks, LPM tries.

Addresses are plain 32-bit integers internally; the classes here wrap
them with parsing, formatting, and containment logic.  The /24 *block*
(``address >> 8``) is the unit of measurement throughout the library,
matching the paper's use of /24 as the smallest BGP-routable prefix.
"""

from repro.netaddr.address import (
    IPv4Address,
    format_ipv4,
    is_valid_ipv4,
    parse_ipv4,
)
from repro.netaddr.blocks import (
    BLOCK_COUNT,
    block_base_address,
    block_of_address,
    block_to_prefix,
    format_block,
    parse_block,
)
from repro.netaddr.prefix import Prefix
from repro.netaddr.sets import PrefixSet
from repro.netaddr.trie import LongestPrefixTrie

__all__ = [
    "IPv4Address",
    "Prefix",
    "PrefixSet",
    "LongestPrefixTrie",
    "parse_ipv4",
    "format_ipv4",
    "is_valid_ipv4",
    "BLOCK_COUNT",
    "block_of_address",
    "block_base_address",
    "block_to_prefix",
    "format_block",
    "parse_block",
]
