"""Sets of prefixes with containment queries and aggregation."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.errors import PrefixLookupError
from repro.netaddr.prefix import Prefix
from repro.netaddr.trie import LongestPrefixTrie


class PrefixSet:
    """A mutable set of CIDR prefixes.

    Supports membership of addresses (is this address covered by any
    prefix?) and aggregation (merge sibling prefixes into their parent).
    """

    def __init__(self, prefixes: Iterable[Prefix] = ()) -> None:
        self._trie: LongestPrefixTrie[bool] = LongestPrefixTrie()
        for prefix in prefixes:
            self.add(prefix)

    def add(self, prefix: Prefix) -> None:
        """Add ``prefix`` to the set."""
        self._trie.insert(prefix, True)

    def discard(self, prefix: Prefix) -> None:
        """Remove ``prefix`` if present."""
        self._trie.remove(prefix)

    def __len__(self) -> int:
        return len(self._trie)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._trie

    def __iter__(self) -> Iterator[Prefix]:
        for prefix, _ in self._trie.items():
            yield prefix

    def covers_address(self, address: int) -> bool:
        """Return True if any member prefix contains ``address``."""
        return self._trie.lookup(address) is not None

    def covering_prefix(self, address: int) -> Prefix:
        """Return the longest member prefix containing ``address``.

        Raises :class:`~repro.errors.PrefixLookupError` (a ``KeyError``)
        if no member covers the address.
        """
        match = self._trie.lookup(address)
        if match is None:
            raise PrefixLookupError(f"no prefix covers {address:#x}")
        return match[0]

    def aggregated(self) -> "PrefixSet":
        """Return a new set with sibling prefixes merged and subnets dropped.

        Repeatedly merges pairs of sibling prefixes (same parent, both
        present) and removes prefixes already covered by a shorter member.
        """
        prefixes = sorted(self)
        changed = True
        while changed:
            changed = False
            kept: List[Prefix] = []
            for prefix in prefixes:
                if kept and kept[-1].contains_prefix(prefix):
                    changed = True
                    continue
                if (
                    kept
                    and prefix.length == kept[-1].length
                    and prefix.length > 0
                    and kept[-1].supernet() == prefix.supernet()
                ):
                    kept[-1] = prefix.supernet()
                    changed = True
                    continue
                kept.append(prefix)
            prefixes = sorted(kept)
        return PrefixSet(prefixes)

    def address_count(self) -> int:
        """Total addresses covered by the aggregated set (no double count)."""
        return sum(prefix.size for prefix in self.aggregated())
