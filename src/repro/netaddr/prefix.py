"""CIDR prefixes.

A :class:`Prefix` is an immutable ``network/length`` pair stored as ints.
Prefixes sort first by network address and then by length, which puts
covering prefixes immediately before their subnets — convenient for
aggregation sweeps.
"""

from __future__ import annotations

import functools
from typing import Iterator, Tuple, Union

from repro.errors import AddressError
from repro.netaddr.address import IPv4Address, format_ipv4, parse_ipv4


@functools.total_ordering
class Prefix:
    """An immutable IPv4 CIDR prefix such as ``192.0.2.0/24``."""

    __slots__ = ("_network", "_length")

    def __init__(self, network: Union[int, str, IPv4Address], length: int = None):
        if isinstance(network, str) and length is None:
            network, length = self._split_cidr(network)
        if length is None:
            raise AddressError("prefix length is required")
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length {length} out of range 0-32")
        value = int(IPv4Address(network)) if not isinstance(network, int) else network
        if not 0 <= value <= 0xFFFFFFFF:
            raise AddressError(f"network {value:#x} out of 32-bit range")
        mask = self._mask_for(length)
        if value & ~mask & 0xFFFFFFFF:
            raise AddressError(
                f"{format_ipv4(value)}/{length} has host bits set"
            )
        self._network = value
        self._length = length

    @staticmethod
    def _split_cidr(text: str) -> Tuple[int, int]:
        network_text, _, length_text = text.partition("/")
        if not length_text or not length_text.isdigit():
            raise AddressError(f"invalid CIDR {text!r}")
        return parse_ipv4(network_text), int(length_text)

    @staticmethod
    def _mask_for(length: int) -> int:
        return (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0

    @property
    def network(self) -> int:
        """Network address as a 32-bit integer."""
        return self._network

    @property
    def length(self) -> int:
        """Prefix length (0-32)."""
        return self._length

    @property
    def netmask(self) -> int:
        """Netmask as a 32-bit integer."""
        return self._mask_for(self._length)

    @property
    def broadcast(self) -> int:
        """Highest address in the prefix."""
        return self._network | (~self.netmask & 0xFFFFFFFF)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self._length)

    @property
    def block_count(self) -> int:
        """Number of whole /24 blocks covered (0 for prefixes longer than /24)."""
        if self._length > 24:
            return 0
        return 1 << (24 - self._length)

    def contains_address(self, address: Union[int, IPv4Address]) -> bool:
        """Return True if ``address`` falls inside this prefix."""
        return (int(address) & self.netmask) == self._network

    def contains_prefix(self, other: "Prefix") -> bool:
        """Return True if ``other`` is equal to or a subnet of this prefix."""
        return other._length >= self._length and self.contains_address(other._network)

    def overlaps(self, other: "Prefix") -> bool:
        """Return True if the two prefixes share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def blocks(self) -> Iterator[int]:
        """Yield the /24 block ids covered by this prefix (empty if longer than /24)."""
        if self._length > 24:
            return
        start = self._network >> 8
        yield from range(start, start + self.block_count)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Yield the subnets of this prefix at ``new_length``."""
        if new_length < self._length or new_length > 32:
            raise AddressError(
                f"cannot subnet /{self._length} into /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self._network, self._network + self.size, step):
            yield Prefix(network, new_length)

    def supernet(self) -> "Prefix":
        """Return the parent prefix one bit shorter."""
        if self._length == 0:
            raise AddressError("/0 has no supernet")
        parent_length = self._length - 1
        mask = self._mask_for(parent_length)
        return Prefix(self._network & mask, parent_length)

    def __str__(self) -> str:
        return f"{format_ipv4(self._network)}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return (self._network, self._length) == (other._network, other._length)
        return NotImplemented

    def __lt__(self, other: "Prefix") -> bool:
        if isinstance(other, Prefix):
            return (self._network, self._length) < (other._network, other._length)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._network, self._length))
