"""Binary radix trie with longest-prefix-match lookup.

This is the routing-table data structure used for mapping addresses and
blocks to announced BGP prefixes (and thence to origin ASes).  The trie
is path-uncompressed but prefix lengths on the Internet are short
(<= 24 here), so lookups are at most 24 steps.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.netaddr.prefix import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class LongestPrefixTrie(Generic[V]):
    """Maps :class:`Prefix` keys to values with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._descend(prefix)
        return node is not None and node.has_value

    @staticmethod
    def _bits(network: int, length: int) -> Iterator[int]:
        for position in range(length):
            yield (network >> (31 - position)) & 1

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value for ``prefix``."""
        node = self._root
        for bit in self._bits(prefix.network, prefix.length):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> bool:
        """Remove ``prefix``; return True if it was present.

        Leaves empty interior nodes in place; the trie is built once per
        topology so reclaiming them is not worth the bookkeeping.
        """
        node = self._descend(prefix)
        if node is None or not node.has_value:
            return False
        node.value = None
        node.has_value = False
        self._size -= 1
        return True

    def _descend(self, prefix: Prefix) -> Optional[_Node[V]]:
        node = self._root
        for bit in self._bits(prefix.network, prefix.length):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node

    def exact(self, prefix: Prefix) -> Optional[V]:
        """Return the value stored exactly at ``prefix``, or None."""
        node = self._descend(prefix)
        if node is not None and node.has_value:
            return node.value
        return None

    def lookup(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix-match ``address``; return ``(prefix, value)`` or None."""
        node = self._root
        best: Optional[Tuple[int, V]] = None
        if node.has_value:
            best = (0, node.value)
        network = 0
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            network |= bit << (31 - depth)
            node = child
            if node.has_value:
                best = (depth + 1, node.value)
        if best is None:
            return None
        length, value = best
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        return Prefix(address & mask, length), value

    def lookup_value(self, address: int) -> Optional[V]:
        """Longest-prefix-match ``address``; return just the value or None."""
        match = self.lookup(address)
        return match[1] if match is not None else None

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Yield all ``(prefix, value)`` pairs in address order."""
        stack: List[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, length = stack.pop()
            if node.has_value:
                yield Prefix(network, length), node.value
            # Push right child first so the left (0) bit pops first.
            right = node.children[1]
            if right is not None:
                stack.append((right, network | (1 << (31 - length)), length + 1))
            left = node.children[0]
            if left is not None:
                stack.append((left, network, length + 1))

    def to_dict(self) -> Dict[Prefix, V]:
        """Return a dict snapshot of all entries."""
        return dict(self.items())
