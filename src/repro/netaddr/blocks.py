"""/24 block helpers.

Throughout the library a *block* is a /24 network identified by the top
24 bits of its base address (``address >> 8``), matching the paper's use
of /24s as passive vantage points.  Block ids are plain ints in
``[0, 2**24)`` so they can be numpy indices.
"""

from __future__ import annotations

from repro.errors import AddressError
from repro.netaddr.address import format_ipv4, parse_ipv4
from repro.netaddr.prefix import Prefix

BLOCK_COUNT = 1 << 24


def block_of_address(address: int) -> int:
    """Return the block id containing 32-bit ``address``."""
    if not 0 <= address <= 0xFFFFFFFF:
        raise AddressError(f"address {address:#x} out of 32-bit range")
    return address >> 8


def block_base_address(block: int) -> int:
    """Return the base (``.0``) address of ``block``."""
    if not 0 <= block < BLOCK_COUNT:
        raise AddressError(f"block id {block} out of range")
    return block << 8


def block_to_prefix(block: int) -> Prefix:
    """Return the /24 :class:`Prefix` for ``block``."""
    return Prefix(block_base_address(block), 24)


def format_block(block: int) -> str:
    """Format ``block`` as its CIDR string, e.g. ``192.0.2.0/24``."""
    return f"{format_ipv4(block_base_address(block))}/24"


def parse_block(text: str) -> int:
    """Parse ``a.b.c.0/24`` (or a bare base address) into a block id."""
    address_text, _, length_text = text.partition("/")
    if length_text and length_text != "24":
        raise AddressError(f"{text!r} is not a /24")
    address = parse_ipv4(address_text)
    if address & 0xFF:
        raise AddressError(f"{text!r} is not /24-aligned")
    return address >> 8
