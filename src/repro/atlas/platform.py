"""The Atlas platform: skewed VP deployment and CHAOS measurements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.anycast.service import AnycastService
from repro.atlas.vp import AtlasVP
from repro.bgp.propagation import RoutingOutcome
from repro.dns.message import CLASS_CHAOS, TYPE_TXT, DnsMessage
from repro.dns.server import SiteIdentityServer
from repro.errors import ConfigurationError, MeasurementError
from repro.geo.regions import COUNTRIES
from repro.rng import derive_rng, uniform_unit
from repro.topology.internet import Internet

_DOWN_SALT = 0x444F574E


@dataclass(frozen=True)
class AtlasResult:
    """One VP's measurement outcome (``site_code`` None = no response)."""

    vp: AtlasVP
    site_code: Optional[str]
    hostname: Optional[str]


class AtlasMeasurement:
    """Results of one platform-wide CHAOS measurement."""

    def __init__(self, results: List[AtlasResult], site_codes: List[str]) -> None:
        self.results = results
        self.site_codes = site_codes

    @property
    def considered_vps(self) -> int:
        """VPs the measurement was scheduled on."""
        return len(self.results)

    @property
    def responding(self) -> List[AtlasResult]:
        """Results with an answer."""
        return [result for result in self.results if result.site_code is not None]

    @property
    def responding_vps(self) -> int:
        """VPs that completed the measurement."""
        return len(self.responding)

    def considered_blocks(self) -> Set[int]:
        """Distinct /24 blocks hosting scheduled VPs."""
        return {result.vp.block for result in self.results}

    def responding_blocks(self) -> Set[int]:
        """Distinct /24 blocks with at least one responding VP."""
        return {result.vp.block for result in self.responding}

    def vp_counts(self) -> Dict[str, int]:
        """Responding VPs per site."""
        counts = {code: 0 for code in self.site_codes}
        for result in self.responding:
            counts[result.site_code] = counts.get(result.site_code, 0) + 1
        return counts

    def fractions(self) -> Dict[str, float]:
        """Share of responding VPs per site (the paper's Atlas metric)."""
        total = self.responding_vps
        if total == 0:
            return {code: 0.0 for code in self.site_codes}
        return {code: count / total for code, count in self.vp_counts().items()}

    def fraction_of(self, site_code: str) -> float:
        """Share of responding VPs served by ``site_code``."""
        return self.fractions().get(site_code, 0.0)

    def block_catchments(self) -> Dict[int, str]:
        """Site per responding block (first responding VP wins)."""
        mapping: Dict[int, str] = {}
        for result in self.responding:
            mapping.setdefault(result.vp.block, result.site_code)
        return mapping


class AtlasPlatform:
    """A deployed population of Atlas VPs over a synthetic Internet."""

    def __init__(
        self,
        internet: Internet,
        vp_count: int,
        seed: Optional[int] = None,
        unavailable_fraction: float = 0.046,
    ) -> None:
        if vp_count < 1:
            raise ConfigurationError("vp_count must be >= 1")
        if not 0.0 <= unavailable_fraction < 1.0:
            raise ConfigurationError("unavailable_fraction must be in [0, 1)")
        self.internet = internet
        self._seed = internet.seed if seed is None else seed
        self._unavailable_fraction = unavailable_fraction
        self.vps = self._deploy(vp_count)

    def _deploy(self, vp_count: int) -> List[AtlasVP]:
        """Place VPs in blocks, weighted by each country's Atlas density.

        The Europe skew comes straight from the per-country
        ``atlas_weight`` in the world model; countries with Internet
        users but few probes (China, Korea, ...) get almost none.
        """
        rng = derive_rng(self._seed, "atlas-deploy")
        blocks_by_country: Dict[str, List[int]] = {}
        for block in self.internet.blocks:
            country = self.internet.country_of_block(block)
            if country is not None:
                blocks_by_country.setdefault(country, []).append(block)
        countries = [c for c in COUNTRIES if c.code in blocks_by_country]
        if not countries:
            raise MeasurementError("topology has no geolocated blocks to host VPs")
        weights = [c.atlas_weight for c in countries]
        vps: List[AtlasVP] = []
        model = self.internet.host_model
        for vp_id in range(vp_count):
            country = rng.choices(countries, weights=weights, k=1)[0]
            candidates = blocks_by_country[country.code]
            block = rng.choice(candidates)
            # Atlas probes sit in well-connected networks, which are
            # likelier than average to answer pings — this is why the
            # paper finds ~77% of Atlas blocks also seen by Verfploeter.
            if not model.is_stable_responder(block, country.code):
                retry = rng.choice(candidates)
                if model.is_stable_responder(retry, country.code):
                    block = retry
            record = self.internet.geodb.require(block)
            vps.append(
                AtlasVP(vp_id, block, country.code, record.latitude, record.longitude)
            )
        return vps

    def is_vp_down(self, vp: AtlasVP, measurement_id: int) -> bool:
        """Deterministic per-(VP, measurement) downtime draw."""
        return (
            uniform_unit(self._seed, _DOWN_SALT, vp.vp_id, measurement_id)
            < self._unavailable_fraction
        )

    def measure(
        self,
        routing: RoutingOutcome,
        service: AnycastService,
        measurement_id: int = 0,
    ) -> AtlasMeasurement:
        """Run a platform-wide ``hostname.bind`` CHAOS measurement.

        Each available VP sends a CHAOS TXT query that BGP delivers to
        its catchment site's nameserver; the TXT answer names the site.
        """
        servers = {
            site.code: SiteIdentityServer(site.code, service.name)
            for site in service.sites
        }
        hostname_to_site = {server.hostname: code for code, server in servers.items()}
        results: List[AtlasResult] = []
        for vp in self.vps:
            if self.is_vp_down(vp, measurement_id):
                results.append(AtlasResult(vp, None, None))
                continue
            site_code = routing.site_of_block(vp.block, measurement_id)
            if site_code is None:
                results.append(AtlasResult(vp, None, None))
                continue
            query = DnsMessage.query(
                message_id=(vp.vp_id + measurement_id) & 0xFFFF,
                name="hostname.bind",
                qtype=TYPE_TXT,
                qclass=CLASS_CHAOS,
            )
            wire = query.encode()
            response = servers[site_code].handle(DnsMessage.decode(wire))
            decoded = DnsMessage.decode(response.encode())
            if decoded.rcode != 0 or not decoded.answers:
                results.append(AtlasResult(vp, None, None))
                continue
            hostname = decoded.answers[0].txt_strings()[0]
            results.append(
                AtlasResult(vp, hostname_to_site.get(hostname), hostname)
            )
        return AtlasMeasurement(results, service.site_codes)
