"""Atlas vantage points."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AtlasVP:
    """One physical Atlas probe.

    Unlike Verfploeter's passive VPs, each Atlas VP is a deployed device
    with registered geolocation (always known) living in some /24 block
    of the Internet.
    """

    vp_id: int
    block: int
    country_code: str
    latitude: float
    longitude: float
