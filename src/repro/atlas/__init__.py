"""RIPE Atlas platform simulation.

Models the measurement platform the paper compares against: ~10k
physical vantage points whose deployment is heavily skewed toward
Europe (well documented in [8] and visible in the paper's Figure 2a),
querying the anycast service with CHAOS TXT ``hostname.bind`` to learn
their serving site.
"""

from repro.atlas.platform import AtlasMeasurement, AtlasPlatform, AtlasResult
from repro.atlas.vp import AtlasVP

__all__ = ["AtlasVP", "AtlasPlatform", "AtlasMeasurement", "AtlasResult"]
