"""The anycast service: a prefix announced from several sites."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.bgp.policy import AnnouncementPolicy
from repro.errors import ConfigurationError
from repro.anycast.site import AnycastSite
from repro.netaddr.prefix import Prefix


class AnycastService:
    """An anycast deployment: service prefix, sites, measurement address.

    The measurement address must live inside the service prefix so that
    Verfploeter's echo requests carry a source address whose replies are
    routed by the *anycast* prefix (paper §3.1).  By convention we use
    ``.1`` in the prefix, and the paper's test-prefix trick (announcing
    a parallel /24 out of the covering /23) is modelled by cloning the
    service with a different prefix.
    """

    def __init__(
        self,
        name: str,
        prefix: Prefix,
        sites: Iterable[AnycastSite],
        measurement_address: Optional[int] = None,
    ) -> None:
        self.name = name
        self.prefix = prefix
        self.sites: List[AnycastSite] = list(sites)
        if not self.sites:
            raise ConfigurationError(f"service {name!r} needs at least one site")
        codes = [site.code for site in self.sites]
        if len(set(codes)) != len(codes):
            raise ConfigurationError(f"service {name!r} has duplicate site codes")
        if measurement_address is None:
            measurement_address = prefix.network + 1
        if not prefix.contains_address(measurement_address):
            raise ConfigurationError(
                f"measurement address must be inside service prefix {prefix}"
            )
        self.measurement_address = measurement_address

    @property
    def site_codes(self) -> List[str]:
        """Site codes in declaration order."""
        return [site.code for site in self.sites]

    def site(self, code: str) -> AnycastSite:
        """Look up a site by code."""
        for site in self.sites:
            if site.code == code:
                return site
        raise ConfigurationError(f"service {self.name!r} has no site {code!r}")

    def upstreams(self) -> Dict[str, int]:
        """Mapping of site code to upstream ASN."""
        return {site.code: site.upstream_asn for site in self.sites}

    def default_policy(self) -> AnnouncementPolicy:
        """All sites announcing, no prepending."""
        return AnnouncementPolicy.uniform(self.upstreams())

    def policy(
        self,
        prepends: Optional[Mapping[str, int]] = None,
        withdrawn: Iterable[str] = (),
    ) -> AnnouncementPolicy:
        """A policy with per-site prepends and optional withdrawn sites."""
        return AnnouncementPolicy.uniform(self.upstreams(), prepends, withdrawn)

    def test_prefix_clone(self, test_prefix: Prefix) -> "AnycastService":
        """The paper's pre-deployment trick: announce a parallel test prefix.

        Returns a service identical in sites but numbered from
        ``test_prefix`` (e.g. the unused half of the covering /23).
        """
        return AnycastService(
            f"{self.name}-test", test_prefix, self.sites, test_prefix.network + 1
        )

    def __repr__(self) -> str:
        return (
            f"AnycastService({self.name!r}, {self.prefix}, "
            f"sites={self.site_codes})"
        )
