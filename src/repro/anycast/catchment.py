"""Catchment maps: which /24 block is served by which site."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

UNKNOWN_SITE = "UNK"


@dataclass(frozen=True)
class CatchmentDiff:
    """Differences between two catchment maps over a common site set."""

    stable: int
    flipped: int
    appeared: int
    disappeared: int
    flipped_blocks: Tuple[int, ...]


class CatchmentMap:
    """Immutable-ish mapping of /24 block -> anycast site code."""

    def __init__(self, site_codes: Iterable[str], mapping: Mapping[int, str]) -> None:
        self._site_codes: List[str] = list(site_codes)
        self._mapping: Dict[int, str] = dict(mapping)

    @property
    def site_codes(self) -> List[str]:
        """All site codes this map may reference."""
        return list(self._site_codes)

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, block: int) -> bool:
        return block in self._mapping

    def site_of(self, block: int) -> Optional[str]:
        """Site serving ``block``, or None when unmapped."""
        return self._mapping.get(block)

    def blocks(self) -> Iterator[int]:
        """All mapped blocks."""
        return iter(self._mapping)

    def items(self) -> Iterator[Tuple[int, str]]:
        """All ``(block, site)`` pairs."""
        return iter(self._mapping.items())

    def blocks_of_site(self, site_code: str) -> List[int]:
        """Blocks in the catchment of ``site_code``."""
        return [block for block, site in self._mapping.items() if site == site_code]

    def counts(self) -> Dict[str, int]:
        """Blocks per site (sites with zero blocks included)."""
        counts = {code: 0 for code in self._site_codes}
        for site in self._mapping.values():
            counts[site] = counts.get(site, 0) + 1
        return counts

    def fractions(self) -> Dict[str, float]:
        """Share of mapped blocks per site."""
        total = len(self._mapping)
        if total == 0:
            return {code: 0.0 for code in self._site_codes}
        return {code: count / total for code, count in self.counts().items()}

    def fraction_of(self, site_code: str) -> float:
        """Share of mapped blocks served by ``site_code``."""
        return self.fractions().get(site_code, 0.0)

    def restrict(self, blocks: Iterable[int]) -> "CatchmentMap":
        """A new map containing only ``blocks`` (those that are mapped)."""
        keep = set(blocks)
        return CatchmentMap(
            self._site_codes,
            {block: site for block, site in self._mapping.items() if block in keep},
        )

    def diff(self, later: "CatchmentMap") -> CatchmentDiff:
        """Compare with a ``later`` map: stable/flipped/appeared/disappeared.

        Matches the paper's Figure 9 categories: *flipped* blocks are
        mapped in both rounds but to different sites; *appeared*
        (from-NR) are only in the later round; *disappeared* (to-NR)
        only in the earlier.
        """
        stable = 0
        flipped: List[int] = []
        earlier_blocks: Set[int] = set(self._mapping)
        later_blocks: Set[int] = set(later._mapping)
        for block in sorted(earlier_blocks & later_blocks):
            if self._mapping[block] == later._mapping[block]:
                stable += 1
            else:
                flipped.append(block)
        return CatchmentDiff(
            stable=stable,
            flipped=len(flipped),
            appeared=len(later_blocks - earlier_blocks),
            disappeared=len(earlier_blocks - later_blocks),
            flipped_blocks=tuple(flipped),
        )
