"""Catchment maps: which /24 block is served by which site.

Two interchangeable representations live here:

- :class:`CatchmentMap` — the dict-backed reference implementation,
  one ``{block: site}`` entry per mapped block.  Simple, obviously
  correct, and the behavioural contract for the columnar path.
- :class:`ArrayCatchmentMap` — the columnar implementation: a shared
  sorted ``uint64`` *block universe* plus one ``int16`` site index per
  universe block (``-1`` = unmapped).  All public methods are
  vectorised (``bincount``/``searchsorted``/boolean masks) and
  bit-equal to the reference, including ``diff``'s sorted
  ``flipped_blocks``.  Rounds of one measurement series share the same
  universe array, which makes per-round diffs pure array comparisons.
"""
# reprolint: hot-path

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

UNKNOWN_SITE = "UNK"

_UINT64_MAX = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class CatchmentDiff:
    """Differences between two catchment maps over a common site set."""

    stable: int
    flipped: int
    appeared: int
    disappeared: int
    flipped_blocks: Tuple[int, ...]


class CatchmentMap:
    """Immutable-ish mapping of /24 block -> anycast site code."""

    def __init__(self, site_codes: Iterable[str], mapping: Mapping[int, str]) -> None:
        self._site_codes: List[str] = list(site_codes)
        self._mapping: Dict[int, str] = dict(mapping)

    @property
    def site_codes(self) -> List[str]:
        """All site codes this map may reference."""
        return list(self._site_codes)

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, block: int) -> bool:
        return block in self._mapping

    def site_of(self, block: int) -> Optional[str]:
        """Site serving ``block``, or None when unmapped."""
        return self._mapping.get(block)

    def blocks(self) -> Iterator[int]:
        """All mapped blocks."""
        return iter(self._mapping)

    def items(self) -> Iterator[Tuple[int, str]]:
        """All ``(block, site)`` pairs."""
        return iter(self._mapping.items())

    def blocks_of_site(self, site_code: str) -> List[int]:
        """Blocks in the catchment of ``site_code``."""
        return [block for block, site in self._mapping.items() if site == site_code]

    def counts(self) -> Dict[str, int]:
        """Blocks per site (sites with zero blocks included)."""
        counts = {code: 0 for code in self._site_codes}
        for site in self._mapping.values():
            counts[site] = counts.get(site, 0) + 1  # reprolint: disable=D110 — reference path
        return counts

    def fractions(self) -> Dict[str, float]:
        """Share of mapped blocks per site."""
        total = len(self._mapping)
        if total == 0:
            return {code: 0.0 for code in self._site_codes}
        return {code: count / total for code, count in self.counts().items()}

    def fraction_of(self, site_code: str) -> float:
        """Share of mapped blocks served by ``site_code``."""
        return self.fractions().get(site_code, 0.0)

    def restrict(self, blocks: Iterable[int]) -> "CatchmentMap":
        """A new map containing only ``blocks`` (those that are mapped)."""
        keep = set(blocks)
        return CatchmentMap(
            self._site_codes,
            {block: site for block, site in self._mapping.items() if block in keep},
        )

    def diff(self, later: "CatchmentMap") -> CatchmentDiff:
        """Compare with a ``later`` map: stable/flipped/appeared/disappeared.

        Matches the paper's Figure 9 categories: *flipped* blocks are
        mapped in both rounds but to different sites; *appeared*
        (from-NR) are only in the later round; *disappeared* (to-NR)
        only in the earlier.
        """
        stable = 0
        flipped: List[int] = []
        earlier_blocks: Set[int] = set(self._mapping)
        later_blocks: Set[int] = set(later._mapping)
        for block in sorted(earlier_blocks & later_blocks):
            if self._mapping[block] == later._mapping[block]:
                stable += 1
            else:
                flipped.append(block)
        return CatchmentDiff(
            stable=stable,
            flipped=len(flipped),
            appeared=len(later_blocks - earlier_blocks),
            disappeared=len(earlier_blocks - later_blocks),
            flipped_blocks=tuple(flipped),
        )


class ArrayCatchmentMap(CatchmentMap):
    """Columnar catchment map over a shared, sorted block universe.

    ``universe`` is a strictly-ascending ``uint64`` array of candidate
    blocks; ``sites`` holds one ``int16`` index into ``site_codes`` per
    universe entry, ``-1`` for unmapped.  A *mapped* block is one with
    a non-negative site index.  The universe array is shared (not
    copied) between the rounds of a series, so equal-universe diffs
    reduce to element-wise comparisons.
    """

    def __init__(
        self,
        site_codes: Iterable[str],
        universe: np.ndarray,
        sites: np.ndarray,
        validate: bool = True,
    ) -> None:
        self._site_codes = list(site_codes)
        universe = np.asarray(universe, dtype=np.uint64)
        sites = np.asarray(sites, dtype=np.int16)
        if validate:
            if universe.shape != sites.shape or universe.ndim != 1:
                raise ConfigurationError(
                    "universe and sites must be 1-D arrays of equal length"
                )
            if universe.size > 1 and not (np.diff(universe.astype(np.int64)) > 0).all():
                raise ConfigurationError("block universe must be strictly ascending")
            if sites.size and int(sites.max()) >= len(self._site_codes):
                raise ConfigurationError("site index out of range for site_codes")
        self._universe = universe
        self._sites = sites
        self._mapping_cache: Optional[Dict[int, str]] = None
        self._mapped_count: Optional[int] = None

    def __getstate__(self) -> Tuple[List[str], np.ndarray, np.ndarray]:
        """Pickle only the columns, never the lazy dict caches.

        Shard workers ship catchments across process boundaries; the
        caches are derived data that would bloat the payload (and a
        fully-materialised dict cache dwarfs the arrays themselves).
        """
        return (self._site_codes, self._universe, self._sites)

    def __setstate__(
        self, state: Tuple[List[str], np.ndarray, np.ndarray]
    ) -> None:
        """Restore columns with cold caches (rebuilt lazily on demand)."""
        self._site_codes, self._universe, self._sites = state
        self._mapping_cache = None
        self._mapped_count = None

    @classmethod
    def from_mapping(
        cls, site_codes: Iterable[str], mapping: Mapping[int, str]
    ) -> "ArrayCatchmentMap":
        """Build a columnar map from a plain ``{block: site}`` mapping."""
        codes = list(site_codes)
        index = {code: i for i, code in enumerate(codes)}
        blocks = sorted(mapping)
        sites = np.empty(len(blocks), dtype=np.int16)
        for row, block in enumerate(blocks):
            site = mapping[block]
            if site not in index:
                raise ConfigurationError(
                    f"site {site!r} of block {block} is not in site_codes"
                )
            sites[row] = index[site]
        return cls(
            codes, np.asarray(blocks, dtype=np.uint64), sites, validate=False
        )

    def to_reference(self) -> CatchmentMap:
        """The equivalent dict-backed :class:`CatchmentMap`."""
        return CatchmentMap(self._site_codes, dict(self.items()))

    # -- columnar accessors ------------------------------------------------

    @property
    def universe(self) -> np.ndarray:
        """The shared sorted block universe (do not mutate)."""
        return self._universe

    @property
    def site_index_array(self) -> np.ndarray:
        """Per-universe-block site indices, ``-1`` = unmapped (do not mutate)."""
        return self._sites

    def mapped_block_array(self) -> np.ndarray:
        """Mapped blocks as an ascending ``int64`` array."""
        return self._universe[self._sites >= 0].astype(np.int64)

    def index_of_site(self, site_code: str) -> Optional[int]:
        """Index of ``site_code`` in :attr:`site_codes`, or None."""
        try:
            return self._site_codes.index(site_code)
        except ValueError:
            return None

    def site_indices_of(self, blocks: np.ndarray) -> np.ndarray:
        """Site index for each of ``blocks`` (``-1`` = absent or unmapped)."""
        blocks = np.asarray(blocks)
        if self._universe.size == 0 or blocks.size == 0:
            return np.full(blocks.shape, -1, dtype=np.int16)
        keys = blocks.astype(np.uint64)
        pos = np.searchsorted(self._universe, keys)
        pos = np.minimum(pos, self._universe.size - 1)
        found = self._universe[pos] == keys
        return np.where(found, self._sites[pos], np.int16(-1)).astype(np.int16)

    # -- dict-API equivalents ----------------------------------------------

    @property
    def _mapping(self) -> Dict[int, str]:  # cross-representation interop
        if self._mapping_cache is None:
            self._mapping_cache = {
                int(block): self._site_codes[site]
                for block, site in zip(
                    self._universe[self._sites >= 0], self._sites[self._sites >= 0]
                )
            }
        return self._mapping_cache

    def __len__(self) -> int:
        if self._mapped_count is None:
            self._mapped_count = int(np.count_nonzero(self._sites >= 0))
        return self._mapped_count

    def __contains__(self, block: int) -> bool:
        return self._index_of_block(block) is not None

    def _index_of_block(self, block: int) -> Optional[int]:
        """Universe row of a *mapped* ``block``, or None."""
        if not 0 <= block <= _UINT64_MAX or self._universe.size == 0:
            return None
        pos = int(np.searchsorted(self._universe, np.uint64(block)))
        if pos >= self._universe.size or int(self._universe[pos]) != block:
            return None
        return pos if self._sites[pos] >= 0 else None

    def site_of(self, block: int) -> Optional[str]:
        """Site serving ``block``, or None when unmapped."""
        pos = self._index_of_block(block)
        return self._site_codes[self._sites[pos]] if pos is not None else None

    def blocks(self) -> Iterator[int]:
        """All mapped blocks, ascending."""
        return (int(block) for block in self._universe[self._sites >= 0])

    def items(self) -> Iterator[Tuple[int, str]]:
        """All ``(block, site)`` pairs, ascending by block."""
        mask = self._sites >= 0
        return (
            (int(block), self._site_codes[site])
            for block, site in zip(self._universe[mask], self._sites[mask])
        )

    def blocks_of_site(self, site_code: str) -> List[int]:
        """Blocks in the catchment of ``site_code``, ascending."""
        index = self.index_of_site(site_code)
        if index is None:
            return []
        return [int(block) for block in self._universe[self._sites == index]]

    def counts(self) -> Dict[str, int]:
        """Blocks per site (sites with zero blocks included)."""
        mapped = self._sites[self._sites >= 0]
        tally = np.bincount(mapped, minlength=len(self._site_codes))
        return {code: int(tally[i]) for i, code in enumerate(self._site_codes)}

    def fractions(self) -> Dict[str, float]:
        """Share of mapped blocks per site."""
        total = len(self)
        if total == 0:
            return {code: 0.0 for code in self._site_codes}
        return {code: count / total for code, count in self.counts().items()}

    def fraction_of(self, site_code: str) -> float:
        """Share of mapped blocks served by ``site_code``."""
        total = len(self)
        index = self.index_of_site(site_code)
        if total == 0 or index is None:
            return 0.0
        return int(np.count_nonzero(self._sites == index)) / total

    def restrict(self, blocks: Iterable[int]) -> "ArrayCatchmentMap":
        """A new map keeping only ``blocks``; the universe stays shared."""
        if isinstance(blocks, np.ndarray):
            keep = np.unique(blocks.astype(np.uint64))
        else:
            valid = [block for block in blocks if 0 <= block <= _UINT64_MAX]
            keep = np.unique(np.asarray(valid, dtype=np.uint64))
        member = np.isin(self._universe, keep, assume_unique=True)
        return ArrayCatchmentMap(
            self._site_codes,
            self._universe,
            np.where(member, self._sites, np.int16(-1)),
            validate=False,
        )

    def diff(self, later: "CatchmentMap") -> CatchmentDiff:
        """Vectorised diff; bit-equal to the dict reference.

        Equal universes (the series case: the exact same array object,
        or equal contents) compare element-wise; different universes
        join on the sorted block arrays; anything else — a dict-backed
        ``later``, differing site vocabularies — falls back to the
        reference implementation.
        """
        if (
            not isinstance(later, ArrayCatchmentMap)
            or self._site_codes != later._site_codes
        ):
            return super().diff(later)
        a_sites, b_sites = self._sites, later._sites
        if self._universe is later._universe or (
            self._universe.shape == later._universe.shape
            and np.array_equal(self._universe, later._universe)
        ):
            a_mapped = a_sites >= 0
            b_mapped = b_sites >= 0
            both = a_mapped & b_mapped
            flipped_blocks = self._universe[both & (a_sites != b_sites)]
            stable = int(np.count_nonzero(both & (a_sites == b_sites)))
        else:
            _, rows_a, rows_b = np.intersect1d(
                self._universe,
                later._universe,
                assume_unique=True,
                return_indices=True,
            )
            sa, sb = a_sites[rows_a], b_sites[rows_b]
            both = (sa >= 0) & (sb >= 0)
            flipped_blocks = self._universe[rows_a[both & (sa != sb)]]
            stable = int(np.count_nonzero(both & (sa == sb)))
        flipped = int(flipped_blocks.size)
        return CatchmentDiff(
            stable=stable,
            flipped=flipped,
            appeared=len(later) - stable - flipped,
            disappeared=len(self) - stable - flipped,
            flipped_blocks=tuple(int(block) for block in np.sort(flipped_blocks)),
        )


class CatchmentAccumulator:
    """Mutable current-catchment state over a shared block universe.

    The always-on mapping service folds a stream of measurement rounds
    into one *current* catchment: every round remaps the blocks it
    heard from and leaves the rest at their last-known site.  This
    accumulator holds that state as a single ``int16`` site-index
    column over the immutable universe and updates it **in place**,
    block by block — no per-round rebuild of the map, no dict
    materialisation.

    Folding rounds through :meth:`apply_catchment` (or their kept
    replies through :meth:`apply_blocks`, batch by batch, in stream
    order) is bit-identical to a batch recompute that merges the same
    rounds' ``{block: site}`` mappings in round order — asserted by
    the equivalence tests in ``tests/test_service.py``.
    """

    def __init__(self, site_codes: Sequence[str], universe: np.ndarray) -> None:
        self._site_codes = list(site_codes)
        universe = np.asarray(universe, dtype=np.uint64)
        if universe.ndim != 1:
            raise ConfigurationError("block universe must be a 1-D array")
        if universe.size > 1 and not (np.diff(universe.astype(np.int64)) > 0).all():
            raise ConfigurationError("block universe must be strictly ascending")
        self._universe = universe
        self._sites = np.full(universe.size, -1, dtype=np.int16)
        self._generation = 0

    @property
    def site_codes(self) -> List[str]:
        """Site codes the accumulated indices refer to."""
        return list(self._site_codes)

    @property
    def universe(self) -> np.ndarray:
        """The shared sorted block universe (do not mutate)."""
        return self._universe

    @property
    def generation(self) -> int:
        """Number of updates applied so far (monotonic)."""
        return self._generation

    def __len__(self) -> int:
        return int(np.count_nonzero(self._sites >= 0))

    def apply_blocks(self, blocks: np.ndarray, site_indices: np.ndarray) -> int:
        """Remap ``blocks`` to ``site_indices`` in place; returns rows changed.

        Duplicate blocks within one call resolve last-write-wins, the
        same way a dict merge of the batch would.  Blocks outside the
        universe raise — the stream and the state must share one block
        vocabulary.
        """
        blocks = np.asarray(blocks, dtype=np.uint64)
        site_indices = np.asarray(site_indices, dtype=np.int16)
        if blocks.shape != site_indices.shape or blocks.ndim != 1:
            raise ConfigurationError(
                "blocks and site_indices must be 1-D arrays of equal length"
            )
        if blocks.size == 0:
            return 0
        if site_indices.size and int(site_indices.max()) >= len(self._site_codes):
            raise ConfigurationError("site index out of range for site_codes")
        positions = np.searchsorted(self._universe, blocks)
        positions = np.minimum(positions, max(self._universe.size - 1, 0))
        if self._universe.size == 0 or not (
            self._universe[positions] == blocks
        ).all():
            raise ConfigurationError("block outside the accumulator's universe")
        # Last write wins on duplicate blocks: np.unique on the reversed
        # array keeps each block's *last* original occurrence.
        reversed_blocks = blocks[::-1]
        _, first_in_reversed = np.unique(reversed_blocks, return_index=True)
        keep = blocks.size - 1 - first_in_reversed  # ascending block order
        positions = positions[keep]
        updates = site_indices[keep]
        changed = int(np.count_nonzero(self._sites[positions] != updates))
        self._sites[positions] = updates
        self._generation += 1
        return changed

    def apply_catchment(self, round_map: ArrayCatchmentMap) -> int:
        """Fold one round's map in: its mapped rows overwrite, the rest keep.

        Requires the round to share this accumulator's universe (the
        same array object or equal contents), which is how the fast
        engine materialises every round of a series — the update is
        then a single masked scatter, no join.
        """
        if round_map.site_codes != self._site_codes:
            raise ConfigurationError(
                "round map's site codes differ from the accumulator's"
            )
        other = round_map.universe
        if other is not self._universe and not (
            other.shape == self._universe.shape
            and np.array_equal(other, self._universe)
        ):
            raise ConfigurationError(
                "round map's universe differs from the accumulator's"
            )
        incoming = round_map.site_index_array
        mapped = incoming >= 0
        changed = int(np.count_nonzero(self._sites[mapped] != incoming[mapped]))
        self._sites[mapped] = incoming[mapped]
        self._generation += 1
        return changed

    def site_index_of(self, block: int) -> int:
        """Current site index of ``block`` (-1 = unmapped or unknown)."""
        if not 0 <= block <= _UINT64_MAX or self._universe.size == 0:
            return -1
        pos = int(np.searchsorted(self._universe, np.uint64(block)))
        if pos >= self._universe.size or int(self._universe[pos]) != block:
            return -1
        return int(self._sites[pos])

    def snapshot(self) -> ArrayCatchmentMap:
        """An immutable copy of the current state (universe stays shared)."""
        return ArrayCatchmentMap(
            self._site_codes,
            self._universe,
            self._sites.copy(),
            validate=False,
        )


def columnar_catchment(
    site_codes: Sequence[str], mapping: Mapping[int, str]
) -> ArrayCatchmentMap:
    """Convenience: :meth:`ArrayCatchmentMap.from_mapping`."""
    return ArrayCatchmentMap.from_mapping(site_codes, mapping)
