"""Anycast service model: sites, the service itself, and catchment maps."""

from repro.anycast.catchment import (
    ArrayCatchmentMap,
    CatchmentAccumulator,
    CatchmentMap,
)
from repro.anycast.service import AnycastService
from repro.anycast.site import AnycastSite

__all__ = [
    "AnycastSite",
    "AnycastService",
    "CatchmentMap",
    "ArrayCatchmentMap",
    "CatchmentAccumulator",
]
