"""Anycast sites."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class AnycastSite:
    """One anycast site (paper Table 3 rows).

    A site is a location announcing the service prefix through a
    specific upstream AS.  ``code`` is the short airport-style label
    used throughout the paper (LAX, MIA, CDG, ...).
    """

    code: str
    name: str
    country_code: str
    latitude: float
    longitude: float
    upstream_asn: int

    @property
    def location(self) -> Tuple[float, float]:
        """(latitude, longitude) of the site."""
        return (self.latitude, self.longitude)

    def __str__(self) -> str:
        return f"{self.code} ({self.name}, upstream AS{self.upstream_asn})"
