"""Memory-mapped scenario tables, keyed by run-metadata fingerprint.

Building a paper-scale scenario pays a few big one-time costs: the
per-record Python passes behind ``Internet.block_table()`` and
``GeoDatabase.columnar()``, and the per-block loop behind a day of
traffic logs.  Those tables are pure functions of the scenario
identity ``(name, scale, seed)``, so this module persists them once as
``.npy`` files under a directory named by the same blake2b fingerprint
:func:`repro.obs.run_metadata` stamps on every run artefact, then
re-attaches them as ``np.memmap`` arrays — a cold start touches only
file metadata and costs milliseconds, and worker processes can attach
the same files instead of rebuilding per-process caches.

Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written table under a valid fingerprint; the manifest is
written last and its presence is what marks a fingerprint as complete.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, DatasetError
from repro.geo.geodb import GeoColumns
from repro.obs import run_metadata
from repro.traffic.logs import DayLoad

_ENV_ROOT = "REPRO_TABLE_CACHE"
_MANIFEST = "manifest.json"

#: blake2b digest size matching :func:`repro.obs.run_metadata`'s
#: fingerprints, so content keys and scenario keys look alike on disk.
_DIGEST_SIZE = 8


def scenario_fingerprint(name: str, scale: str, seed: int) -> str:
    """The fingerprint a scenario's tables are stored under.

    Identical to the ``fingerprint`` field of
    :func:`repro.obs.run_metadata` for the same identity, so run
    artefacts and persisted tables key the same way.
    """
    return str(run_metadata(scenario=name, scale=scale, seed=seed)["fingerprint"])


class TableStore:
    """A directory of fingerprint-keyed, memory-mappable numpy tables."""

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(_ENV_ROOT) or os.path.join(
                tempfile.gettempdir(), "repro-tables"
            )
        self.root = root

    def dir_of(self, fingerprint: str) -> str:
        """Directory holding one fingerprint's tables."""
        return os.path.join(self.root, fingerprint)

    def has(self, fingerprint: str) -> bool:
        """True if a complete table set exists (manifest written last)."""
        return os.path.exists(os.path.join(self.dir_of(fingerprint), _MANIFEST))

    def _array_path(self, fingerprint: str, name: str) -> str:
        return os.path.join(self.dir_of(fingerprint), f"{name}.npy")

    def write_array(self, fingerprint: str, name: str, array: np.ndarray) -> None:
        """Persist one named array atomically."""
        directory = self.dir_of(fingerprint)
        os.makedirs(directory, exist_ok=True)
        final = self._array_path(fingerprint, name)
        scratch = final + ".tmp"
        with open(scratch, "wb") as handle:
            np.save(handle, np.ascontiguousarray(array))
        os.replace(scratch, final)

    def read_array(self, fingerprint: str, name: str) -> np.ndarray:
        """Attach one named array as a read-only memmap."""
        path = self._array_path(fingerprint, name)
        if not os.path.exists(path):
            raise DatasetError(f"no table {name!r} under fingerprint {fingerprint}")
        return np.load(path, mmap_mode="r")

    def write_manifest(self, fingerprint: str, payload: Dict[str, object]) -> None:
        """Persist the manifest atomically (write this last)."""
        directory = self.dir_of(fingerprint)
        os.makedirs(directory, exist_ok=True)
        final = os.path.join(directory, _MANIFEST)
        scratch = final + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(scratch, final)

    def read_manifest(self, fingerprint: str) -> Dict[str, object]:
        """Load the manifest of one fingerprint."""
        path = os.path.join(self.dir_of(fingerprint), _MANIFEST)
        if not os.path.exists(path):
            raise DatasetError(f"no persisted tables under fingerprint {fingerprint}")
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)


def _traffic_prefix(service_name: str, date_label: str) -> str:
    return f"traffic.{service_name}.{date_label}"


def persist_scenario_tables(
    store: TableStore,
    scenario,
    day_loads: Sequence[DayLoad] = (),
) -> str:
    """Persist a scenario's round-invariant tables; returns the fingerprint.

    Stores the block table (the block universe plus AS/PoP columns),
    the geo database's columnar join arrays, and the traffic bins of
    any given day loads.  ``scenario`` is a
    :class:`repro.core.scenarios.Scenario` (typed loosely to keep this
    module importable below the scenario builders).
    """
    fingerprint = scenario_fingerprint(
        scenario.name, scenario.scale, scenario.internet.seed
    )
    blocks, asns, pop_ids = scenario.internet.block_table()
    store.write_array(fingerprint, "block_table.blocks", blocks)
    store.write_array(fingerprint, "block_table.asns", asns)
    store.write_array(fingerprint, "block_table.pop_ids", pop_ids)
    columns = scenario.internet.geodb.columnar()
    store.write_array(fingerprint, "geo.blocks", columns.blocks)
    store.write_array(fingerprint, "geo.latitudes", columns.latitudes)
    store.write_array(fingerprint, "geo.longitudes", columns.longitudes)
    store.write_array(fingerprint, "geo.country_index", columns.country_index)
    traffic_entries: List[Dict[str, str]] = []
    for load in day_loads:
        prefix = _traffic_prefix(load.service_name, load.date_label)
        store.write_array(fingerprint, f"{prefix}.blocks", load.blocks)
        store.write_array(fingerprint, f"{prefix}.queries", load.queries)
        store.write_array(fingerprint, f"{prefix}.good_fraction", load.good_fraction)
        store.write_array(fingerprint, f"{prefix}.reply_fraction", load.reply_fraction)
        traffic_entries.append(
            {"service": load.service_name, "date": load.date_label}
        )
    store.write_manifest(
        fingerprint,
        {
            "scenario": scenario.name,
            "scale": scenario.scale,
            "seed": scenario.internet.seed,
            "blocks": int(blocks.size),
            "countries": list(columns.countries),
            "traffic": traffic_entries,
        },
    )
    return fingerprint


def attach_scenario_tables(store: TableStore, scenario) -> Dict[str, object]:
    """Attach persisted tables to a rebuilt scenario; returns the manifest.

    The internet's block table and the geo database's columnar snapshot
    become read-only memmaps, so neither pays its Python rebuild pass
    in this process (or in any worker that re-attaches).  Raises
    :class:`~repro.errors.DatasetError` when the scenario was never
    persisted.
    """
    fingerprint = scenario_fingerprint(
        scenario.name, scenario.scale, scenario.internet.seed
    )
    manifest = store.read_manifest(fingerprint)
    scenario.internet.attach_block_table(
        store.read_array(fingerprint, "block_table.blocks"),
        store.read_array(fingerprint, "block_table.asns"),
        store.read_array(fingerprint, "block_table.pop_ids"),
    )
    scenario.internet.geodb.attach_columns(
        GeoColumns(
            blocks=store.read_array(fingerprint, "geo.blocks"),
            latitudes=store.read_array(fingerprint, "geo.latitudes"),
            longitudes=store.read_array(fingerprint, "geo.longitudes"),
            country_index=store.read_array(fingerprint, "geo.country_index"),
            countries=tuple(manifest["countries"]),
        )
    )
    return manifest


def attached_day_load(
    store: TableStore,
    scenario,
    service_name: str,
    date_label: str,
) -> DayLoad:
    """Rebuild a persisted day of traffic straight from its memmaps.

    The heavy per-block synthesis loop is skipped entirely; the
    returned :class:`DayLoad` is backed by the on-disk arrays.
    """
    fingerprint = scenario_fingerprint(
        scenario.name, scenario.scale, scenario.internet.seed
    )
    manifest = store.read_manifest(fingerprint)
    entries = [
        entry
        for entry in manifest.get("traffic", [])
        if entry["service"] == service_name and entry["date"] == date_label
    ]
    if not entries:
        raise DatasetError(
            f"no persisted traffic for {service_name!r} on {date_label!r}"
        )
    prefix = _traffic_prefix(service_name, date_label)
    return DayLoad(
        service_name,
        date_label,
        store.read_array(fingerprint, f"{prefix}.blocks"),
        store.read_array(fingerprint, f"{prefix}.queries"),
        store.read_array(fingerprint, f"{prefix}.good_fraction"),
        store.read_array(fingerprint, f"{prefix}.reply_fraction"),
    )


# -- content-addressed arrays and round state ------------------------------
#
# Scenario tables above key by *identity* (name, scale, seed); everything
# below keys by *content*: the fingerprint is a blake2b over dtype, shape,
# and raw bytes, so two runs that build the same arrays share one on-disk
# copy, and a stale cache entry is impossible by construction.


def content_fingerprint(
    arrays: Mapping[str, np.ndarray],
    scalars: Optional[Mapping[str, object]] = None,
) -> str:
    """Content hash of named arrays (plus optional JSON-able scalars).

    Arrays are hashed as ``name | dtype | shape | raw bytes`` in sorted
    name order; the hash never copies a C-contiguous buffer.  Same
    digest size as :func:`repro.obs.run_metadata` fingerprints, so the
    two kinds of key are interchangeable as store directory names.
    """
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    if scalars:
        digest.update(
            json.dumps(scalars, sort_keys=True, default=str).encode("utf-8")
        )
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(memoryview(array).cast("B"))
    return digest.hexdigest()


#: Recently-fingerprinted arrays, keyed by object id.  Each entry holds
#: the array itself, so a cached id cannot be recycled by the allocator
#: while its entry lives; FIFO eviction bounds the held references.
#: Safe because every array persisted through this module is treated as
#: immutable (most are literally read-only memmaps or engine state that
#: is never written after precompute).
_FINGERPRINT_MEMO: "OrderedDict[int, Tuple[np.ndarray, str]]" = OrderedDict()
_FINGERPRINT_MEMO_LIMIT = 16


def _memoised_fingerprint(array: np.ndarray) -> str:
    entry = _FINGERPRINT_MEMO.get(id(array))
    if entry is not None and entry[0] is array:
        return entry[1]
    fingerprint = content_fingerprint({"array": array})
    _FINGERPRINT_MEMO[id(array)] = (array, fingerprint)
    while len(_FINGERPRINT_MEMO) > _FINGERPRINT_MEMO_LIMIT:
        _FINGERPRINT_MEMO.popitem(last=False)
    return fingerprint


def ensure_array(store: TableStore, array: np.ndarray) -> str:
    """Persist one array content-addressed; returns its fingerprint.

    Idempotent: an array whose fingerprint already exists in ``store``
    is not rewritten.  Repeat calls with the *same array object* skip
    even the hash (weighting joins pass the same universe and traffic
    columns round after round).
    """
    fingerprint = _memoised_fingerprint(array)
    if not store.has(fingerprint):
        store.write_array(fingerprint, "array", array)
        store.write_manifest(
            fingerprint,
            {
                "kind": "array",
                "dtype": str(array.dtype),
                "shape": list(array.shape),
            },
        )
    return fingerprint


def attach_array(store: TableStore, fingerprint: str) -> np.ndarray:
    """Attach one content-addressed array as a read-only memmap."""
    manifest = store.read_manifest(fingerprint)
    if manifest.get("kind") != "array":
        raise DatasetError(
            f"fingerprint {fingerprint} holds {manifest.get('kind')!r}, "
            "not a single array"
        )
    return store.read_array(fingerprint, "array")


#: Per-row columns of a :class:`repro.core.fastscan.RoundState`, in the
#: order they are hashed and persisted (``site_rtt`` is 2-D; the salt
#: prefixes are stored as ``state.prefix.<salt>``).
_STATE_COLUMNS = (
    "blocks",
    "base",
    "alternate",
    "flipper",
    "participates",
    "stable",
    "off_address",
    "duplicator",
    "site_rtt",
    "access",
    "lat_ok",
)


def _round_state_arrays(state) -> Dict[str, np.ndarray]:
    arrays = {f"state.{name}": getattr(state, name) for name in _STATE_COLUMNS}
    for salt, prefix in state.prefixes.items():
        arrays[f"state.prefix.{int(salt)}"] = prefix
    return arrays


def _round_state_scalars(state) -> Dict[str, object]:
    return {
        "kind": "round_state",
        "site_codes": list(state.site_codes),
        "salts": sorted(int(salt) for salt in state.prefixes),
        "jitter_scale": state.jitter_scale,
        "host_config": dataclasses.asdict(state.host_config),
        "flip_config": dataclasses.asdict(state.flip_config),
        "late_cutoff": state.late_cutoff,
        "interval": state.interval,
        "order_parent_seed": state.order_parent_seed,
        "n_total": state.n_total,
    }


def persist_round_state(store: TableStore, state) -> str:
    """Persist a full-universe ``RoundState``; returns its fingerprint.

    This is what shrinks shard-worker payloads to a few hundred bytes:
    the parent externalises the engine's round-invariant columns once,
    and every worker re-attaches them as read-only memmaps by
    fingerprint instead of unpickling hundreds of megabytes per task.
    Idempotent per content; shard slices are refused (workers slice
    after attaching, so only the full state is ever stored).
    """
    if state.row_start != 0 or state.rows != state.n_total:
        raise ConfigurationError(
            "only a full-universe RoundState can be persisted; "
            f"got rows [{state.row_start}, {state.row_start + state.rows}) "
            f"of {state.n_total}"
        )
    scalars = _round_state_scalars(state)
    arrays = _round_state_arrays(state)
    fingerprint = content_fingerprint(arrays, scalars)
    if store.has(fingerprint):
        return fingerprint
    for name, array in arrays.items():
        store.write_array(fingerprint, name, array)
    store.write_manifest(fingerprint, scalars)
    return fingerprint


def attach_round_state(store: TableStore, fingerprint: str):
    """Rebuild a persisted ``RoundState`` backed by read-only memmaps.

    Every array column is attached, not copied; scalars and the two
    model configs come back from the manifest.  Raises
    :class:`~repro.errors.DatasetError` when the fingerprint holds
    something other than a round state.
    """
    # Deferred import: fastscan imports this module for persistence.
    from repro.bgp.instability import FlipModelConfig
    from repro.core.fastscan import RoundState
    from repro.topology.hosts import HostModelConfig

    manifest = store.read_manifest(fingerprint)
    if manifest.get("kind") != "round_state":
        raise DatasetError(
            f"fingerprint {fingerprint} holds {manifest.get('kind')!r}, "
            "not a round state"
        )
    columns = {
        name: store.read_array(fingerprint, f"state.{name}")
        for name in _STATE_COLUMNS
    }
    prefixes = {
        int(salt): store.read_array(fingerprint, f"state.prefix.{int(salt)}")
        for salt in manifest["salts"]
    }
    return RoundState(
        site_codes=list(manifest["site_codes"]),
        prefixes=prefixes,
        jitter_scale=float(manifest["jitter_scale"]),
        host_config=HostModelConfig(**manifest["host_config"]),
        flip_config=FlipModelConfig(**manifest["flip_config"]),
        late_cutoff=float(manifest["late_cutoff"]),
        interval=float(manifest["interval"]),
        order_parent_seed=int(manifest["order_parent_seed"]),
        n_total=int(manifest["n_total"]),
        row_start=0,
        **columns,
    )
