"""Memory-mapped scenario tables, keyed by run-metadata fingerprint.

Building a paper-scale scenario pays a few big one-time costs: the
per-record Python passes behind ``Internet.block_table()`` and
``GeoDatabase.columnar()``, and the per-block loop behind a day of
traffic logs.  Those tables are pure functions of the scenario
identity ``(name, scale, seed)``, so this module persists them once as
``.npy`` files under a directory named by the same blake2b fingerprint
:func:`repro.obs.run_metadata` stamps on every run artefact, then
re-attaches them as ``np.memmap`` arrays — a cold start touches only
file metadata and costs milliseconds, and worker processes can attach
the same files instead of rebuilding per-process caches.

Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written table under a valid fingerprint; the manifest is
written last and its presence is what marks a fingerprint as complete.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.geo.geodb import GeoColumns
from repro.obs import run_metadata
from repro.traffic.logs import DayLoad

_ENV_ROOT = "REPRO_TABLE_CACHE"
_MANIFEST = "manifest.json"


def scenario_fingerprint(name: str, scale: str, seed: int) -> str:
    """The fingerprint a scenario's tables are stored under.

    Identical to the ``fingerprint`` field of
    :func:`repro.obs.run_metadata` for the same identity, so run
    artefacts and persisted tables key the same way.
    """
    return str(run_metadata(scenario=name, scale=scale, seed=seed)["fingerprint"])


class TableStore:
    """A directory of fingerprint-keyed, memory-mappable numpy tables."""

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(_ENV_ROOT) or os.path.join(
                tempfile.gettempdir(), "repro-tables"
            )
        self.root = root

    def dir_of(self, fingerprint: str) -> str:
        """Directory holding one fingerprint's tables."""
        return os.path.join(self.root, fingerprint)

    def has(self, fingerprint: str) -> bool:
        """True if a complete table set exists (manifest written last)."""
        return os.path.exists(os.path.join(self.dir_of(fingerprint), _MANIFEST))

    def _array_path(self, fingerprint: str, name: str) -> str:
        return os.path.join(self.dir_of(fingerprint), f"{name}.npy")

    def write_array(self, fingerprint: str, name: str, array: np.ndarray) -> None:
        """Persist one named array atomically."""
        directory = self.dir_of(fingerprint)
        os.makedirs(directory, exist_ok=True)
        final = self._array_path(fingerprint, name)
        scratch = final + ".tmp"
        with open(scratch, "wb") as handle:
            np.save(handle, np.ascontiguousarray(array))
        os.replace(scratch, final)

    def read_array(self, fingerprint: str, name: str) -> np.ndarray:
        """Attach one named array as a read-only memmap."""
        path = self._array_path(fingerprint, name)
        if not os.path.exists(path):
            raise DatasetError(f"no table {name!r} under fingerprint {fingerprint}")
        return np.load(path, mmap_mode="r")

    def write_manifest(self, fingerprint: str, payload: Dict[str, object]) -> None:
        """Persist the manifest atomically (write this last)."""
        directory = self.dir_of(fingerprint)
        os.makedirs(directory, exist_ok=True)
        final = os.path.join(directory, _MANIFEST)
        scratch = final + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(scratch, final)

    def read_manifest(self, fingerprint: str) -> Dict[str, object]:
        """Load the manifest of one fingerprint."""
        path = os.path.join(self.dir_of(fingerprint), _MANIFEST)
        if not os.path.exists(path):
            raise DatasetError(f"no persisted tables under fingerprint {fingerprint}")
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)


def _traffic_prefix(service_name: str, date_label: str) -> str:
    return f"traffic.{service_name}.{date_label}"


def persist_scenario_tables(
    store: TableStore,
    scenario,
    day_loads: Sequence[DayLoad] = (),
) -> str:
    """Persist a scenario's round-invariant tables; returns the fingerprint.

    Stores the block table (the block universe plus AS/PoP columns),
    the geo database's columnar join arrays, and the traffic bins of
    any given day loads.  ``scenario`` is a
    :class:`repro.core.scenarios.Scenario` (typed loosely to keep this
    module importable below the scenario builders).
    """
    fingerprint = scenario_fingerprint(
        scenario.name, scenario.scale, scenario.internet.seed
    )
    blocks, asns, pop_ids = scenario.internet.block_table()
    store.write_array(fingerprint, "block_table.blocks", blocks)
    store.write_array(fingerprint, "block_table.asns", asns)
    store.write_array(fingerprint, "block_table.pop_ids", pop_ids)
    columns = scenario.internet.geodb.columnar()
    store.write_array(fingerprint, "geo.blocks", columns.blocks)
    store.write_array(fingerprint, "geo.latitudes", columns.latitudes)
    store.write_array(fingerprint, "geo.longitudes", columns.longitudes)
    store.write_array(fingerprint, "geo.country_index", columns.country_index)
    traffic_entries: List[Dict[str, str]] = []
    for load in day_loads:
        prefix = _traffic_prefix(load.service_name, load.date_label)
        store.write_array(fingerprint, f"{prefix}.blocks", load.blocks)
        store.write_array(fingerprint, f"{prefix}.queries", load.queries)
        store.write_array(fingerprint, f"{prefix}.good_fraction", load.good_fraction)
        store.write_array(fingerprint, f"{prefix}.reply_fraction", load.reply_fraction)
        traffic_entries.append(
            {"service": load.service_name, "date": load.date_label}
        )
    store.write_manifest(
        fingerprint,
        {
            "scenario": scenario.name,
            "scale": scenario.scale,
            "seed": scenario.internet.seed,
            "blocks": int(blocks.size),
            "countries": list(columns.countries),
            "traffic": traffic_entries,
        },
    )
    return fingerprint


def attach_scenario_tables(store: TableStore, scenario) -> Dict[str, object]:
    """Attach persisted tables to a rebuilt scenario; returns the manifest.

    The internet's block table and the geo database's columnar snapshot
    become read-only memmaps, so neither pays its Python rebuild pass
    in this process (or in any worker that re-attaches).  Raises
    :class:`~repro.errors.DatasetError` when the scenario was never
    persisted.
    """
    fingerprint = scenario_fingerprint(
        scenario.name, scenario.scale, scenario.internet.seed
    )
    manifest = store.read_manifest(fingerprint)
    scenario.internet.attach_block_table(
        store.read_array(fingerprint, "block_table.blocks"),
        store.read_array(fingerprint, "block_table.asns"),
        store.read_array(fingerprint, "block_table.pop_ids"),
    )
    scenario.internet.geodb.attach_columns(
        GeoColumns(
            blocks=store.read_array(fingerprint, "geo.blocks"),
            latitudes=store.read_array(fingerprint, "geo.latitudes"),
            longitudes=store.read_array(fingerprint, "geo.longitudes"),
            country_index=store.read_array(fingerprint, "geo.country_index"),
            countries=tuple(manifest["countries"]),
        )
    )
    return manifest


def attached_day_load(
    store: TableStore,
    scenario,
    service_name: str,
    date_label: str,
) -> DayLoad:
    """Rebuild a persisted day of traffic straight from its memmaps.

    The heavy per-block synthesis loop is skipped entirely; the
    returned :class:`DayLoad` is backed by the on-disk arrays.
    """
    fingerprint = scenario_fingerprint(
        scenario.name, scenario.scale, scenario.internet.seed
    )
    manifest = store.read_manifest(fingerprint)
    entries = [
        entry
        for entry in manifest.get("traffic", [])
        if entry["service"] == service_name and entry["date"] == date_label
    ]
    if not entries:
        raise DatasetError(
            f"no persisted traffic for {service_name!r} on {date_label!r}"
        )
    prefix = _traffic_prefix(service_name, date_label)
    return DayLoad(
        service_name,
        date_label,
        store.read_array(fingerprint, f"{prefix}.blocks"),
        store.read_array(fingerprint, f"{prefix}.queries"),
        store.read_array(fingerprint, f"{prefix}.good_fraction"),
        store.read_array(fingerprint, f"{prefix}.reply_fraction"),
    )
