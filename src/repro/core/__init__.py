"""Top-level orchestration: the Verfploeter system and canonical scenarios."""

from repro.core.comparison import CoverageComparison, compare_coverage
from repro.core.experiments import (
    PrependMeasurement,
    StabilityRound,
    StabilitySeries,
    build_stability_series,
    prepend_sweep,
    run_stability_series,
)
from repro.core.scenarios import (
    SCALES,
    Scenario,
    broot_like,
    nl_like,
    tangled_like,
)
from repro.core.fastscan import FastScanEngine
from repro.core.planning import evaluate_site_addition, find_upstream_near
from repro.core.playbook import (
    Playbook,
    PlaybookEntry,
    PlaybookPlanner,
    derive_capacities,
    enumerate_lattice,
    format_playbook_table,
)
from repro.core.verfploeter import ScanResult, ScanStats, Verfploeter

__all__ = [
    "Verfploeter",
    "ScanResult",
    "ScanStats",
    "CoverageComparison",
    "compare_coverage",
    "Scenario",
    "SCALES",
    "broot_like",
    "tangled_like",
    "nl_like",
    "prepend_sweep",
    "PrependMeasurement",
    "run_stability_series",
    "StabilityRound",
    "StabilitySeries",
    "build_stability_series",
    "FastScanEngine",
    "evaluate_site_addition",
    "find_upstream_near",
    "Playbook",
    "PlaybookEntry",
    "PlaybookPlanner",
    "derive_capacities",
    "enumerate_lattice",
    "format_playbook_table",
]
