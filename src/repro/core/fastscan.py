"""Vectorised scan engine.

Replays :meth:`Verfploeter.run_scan`'s semantics with numpy over all
blocks at once — bit-exact (same hash draws, same cleaning rules, same
RTTs), asserted by the equivalence tests — at 10-50x the speed.  This
is what lets the reproduction run paper-scale experiments: the paper's
96-round day over millions of blocks is a pure Python non-starter, but
perfectly tractable vectorised.

The engine precomputes everything round-invariant (permutation domain,
stable responders, base catchment sites, geography) once per routing
state, then evaluates each round with a handful of array operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.anycast.catchment import CatchmentMap
from repro.bgp import instability as _instability
from repro.bgp.propagation import RoutingOutcome
from repro.core.verfploeter import ScanResult, ScanStats, Verfploeter
from repro.geo.distance import EARTH_RADIUS_KM
from repro.icmp import latency as _latency
from repro.rng import mix64, uniform_unit_np
from repro.topology import hosts as _hosts

_ROUNDS = 4  # Feistel rounds; must match probing.order


class _VectorPermutation:
    """Vectorised twin of :class:`repro.probing.order.PseudorandomOrder`."""

    def __init__(self, n: int, seed: int) -> None:
        self._n = n
        self._seed = seed
        bits = max(2, (n - 1).bit_length())
        if bits % 2:
            bits += 1
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1

    def _round_function(self, values: np.ndarray, round_index: int) -> np.ndarray:
        from repro.rng import mix64_np

        with np.errstate(over="ignore"):
            mixed = (
                np.uint64(self._seed)
                ^ (values * np.uint64(0x9E3779B1))
                ^ np.uint64(round_index << 48)
            )
        return mix64_np(mixed) & np.uint64(self._half_mask)

    def _feistel(self, values: np.ndarray) -> np.ndarray:
        left = values >> np.uint64(self._half_bits)
        right = values & np.uint64(self._half_mask)
        for round_index in range(_ROUNDS):
            left, right = right, left ^ self._round_function(right, round_index)
        return (left << np.uint64(self._half_bits)) | right

    def permutation(self) -> np.ndarray:
        """``perm[p]`` = hitlist index probed at position ``p``."""
        values = self._feistel(np.arange(self._n, dtype=np.uint64))
        out_of_range = values >= self._n
        while out_of_range.any():
            values[out_of_range] = self._feistel(values[out_of_range])
            out_of_range = values >= self._n
        return values.astype(np.int64)


class FastScanEngine:
    """Vectorised equivalent of repeated ``Verfploeter.run_scan`` calls."""

    def __init__(
        self,
        verfploeter: Verfploeter,
        routing: Optional[RoutingOutcome] = None,
    ) -> None:
        self.verfploeter = verfploeter
        self.routing = routing if routing is not None else verfploeter.routing_for()
        internet = verfploeter.internet
        self._seed = internet.seed
        self._host_config = internet.host_model.config
        self._flip_config = self.routing.flip_model.config

        hitlist = verfploeter.hitlist
        self._n = len(hitlist)
        self._blocks = np.array(hitlist.blocks, dtype=np.uint64)
        self._site_codes = list(self.routing.policy.site_codes)
        site_index = {code: i for i, code in enumerate(self._site_codes)}

        # --- per-block round-invariant state (one Python pass) ----------
        base = np.full(self._n, -1, dtype=np.int16)
        alternate = np.full(self._n, -1, dtype=np.int16)
        flipper = np.zeros(self._n, dtype=bool)
        threshold = np.empty(self._n, dtype=np.float64)
        lat = np.full(self._n, np.nan, dtype=np.float64)
        lon = np.full(self._n, np.nan, dtype=np.float64)
        model = internet.host_model
        for row, block in enumerate(int(b) for b in self._blocks):
            record = internet.geodb.locate(block)
            country = record.country_code if record is not None else None
            threshold[row] = model.responsiveness_for(country)
            if record is not None:
                lat[row] = record.latitude
                lon[row] = record.longitude
            site = self.routing.site_of_block(block)
            if site is None:
                continue
            base[row] = site_index[site]
            pop = internet.pop_of_block(block)
            selection = self.routing.selections[pop.asn]
            flipper[row] = internet.ases[pop.asn].flipper
            alt = selection.alternate_site
            if alt is not None and alt != site and alt in site_index:
                alternate[row] = site_index[alt]
        self._base = base
        self._alternate = alternate
        self._flipper = flipper

        # --- round-invariant stochastic masks ----------------------------
        cfg = self._host_config
        self._stable = (
            uniform_unit_np(self._seed, _hosts._STABLE_SALT, self._blocks)
            < threshold
        )
        self._off_address = (
            uniform_unit_np(self._seed, _hosts._OFFADDR_SALT, self._blocks)
            < cfg.off_address_fraction
        )
        self._duplicator = (
            uniform_unit_np(self._seed, _hosts._DUP_SALT, self._blocks)
            < cfg.duplicate_fraction
        )
        self._participates = self._flipper & (
            uniform_unit_np(self._seed, _instability._PARTICIPATE_SALT, self._blocks)
            < self._flip_config.flipper_block_fraction
        )

        # --- latency precomputation ---------------------------------------
        lm = verfploeter.latency_model
        self._lat_ok = ~np.isnan(lat)
        self._site_rtt = np.full((len(self._site_codes), self._n), np.nan)
        lat_rad = np.radians(lat)
        lon_rad = np.radians(lon)
        for index, code in enumerate(self._site_codes):
            site = verfploeter.service.site(code)
            site_lat = np.radians(site.latitude)
            site_lon = np.radians(site.longitude)
            half_dlat = (site_lat - lat_rad) / 2.0
            half_dlon = (site_lon - lon_rad) / 2.0
            a = (
                np.sin(half_dlat) ** 2
                + np.cos(lat_rad) * np.cos(site_lat) * np.sin(half_dlon) ** 2
            )
            distance = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0, 1)))
            self._site_rtt[index] = (
                2.0 * lm._stretch * distance / _latency.KM_PER_MS
            )
        access_draw = uniform_unit_np(self._seed, _latency._ACCESS_SALT, self._blocks)
        low, high = lm._access_range
        self._access = low + (high - low) * access_draw * access_draw
        self._jitter_scale = lm._jitter

        self._prober = verfploeter._prober
        self._interval = 1.0 / verfploeter.prober_config.rate_pps
        self._late_cutoff = verfploeter.cleaning.late_cutoff_seconds

    # -- per-round evaluation ---------------------------------------------

    def _send_offsets(self, round_id: int) -> np.ndarray:
        """Seconds after round start each hitlist entry's probe is sent."""
        # One derivation site: reuse the scalar prober's stream so both
        # engines walk the identical permutation.
        perm = _VectorPermutation(self._n, self._prober.order_seed(round_id)).permutation()
        offsets = np.empty(self._n, dtype=np.float64)
        offsets[perm] = np.arange(self._n, dtype=np.float64) * self._interval
        return offsets

    def run_scan(
        self,
        round_id: int = 0,
        start_time: float = 0.0,
        dataset_id: Optional[str] = None,
    ) -> ScanResult:
        """One vectorised measurement round (equals ``Verfploeter.run_scan``)."""
        cfg = self._host_config
        blocks = self._blocks
        responds = self._stable & (
            uniform_unit_np(self._seed, _hosts._CHURN_SALT, blocks, round_id)
            >= cfg.churn_probability
        )

        # Site selection with per-round flips.
        flip_draw = uniform_unit_np(
            self._seed, _instability._FLIP_SALT, blocks, round_id
        )
        has_alternate = self._alternate >= 0
        flips = has_alternate & (
            (self._participates & (flip_draw < self._flip_config.flipper_flip_probability))
            | (~self._flipper & (flip_draw < self._flip_config.background_flip_probability))
        )
        site = np.where(flips, self._alternate, self._base)
        delivered = responds & (site >= 0)

        # Reply counts (duplicates).
        tail = uniform_unit_np(self._seed, _hosts._DUPN_SALT, blocks, round_id)
        heavy = tail < cfg.heavy_duplicate_fraction
        counts = np.ones(self._n, dtype=np.int64)
        counts[self._duplicator & ~heavy] = 2
        heaviness = tail / cfg.heavy_duplicate_fraction
        heavy_counts = 3 + ((cfg.max_duplicates - 3) * heaviness).astype(np.int64)
        counts = np.where(self._duplicator & heavy, heavy_counts, counts)
        counts = np.where(delivered, counts, 0)

        # First-reply delay (milliseconds), mirroring the dataplane.
        latency_draw = uniform_unit_np(
            self._seed, _hosts._LATENCY_SALT, blocks, round_id
        )
        late_replier = (
            uniform_unit_np(self._seed, _hosts._LATE_SALT, blocks, round_id)
            < cfg.late_fraction
        )
        host_delay = np.where(
            late_replier,
            cfg.late_threshold_ms * (1.0 + 4.0 * latency_draw),
            10.0 + 390.0 * latency_draw,
        )
        jitter = self._jitter_scale * uniform_unit_np(
            self._seed, _latency._JITTER_SALT, blocks, round_id
        )
        site_clamped = np.clip(site, 0, len(self._site_codes) - 1)
        path_delay = (
            self._site_rtt[site_clamped, np.arange(self._n)]
            + self._access
            + jitter
        )
        use_path = self._lat_ok & ~late_replier & (site >= 0)
        delay = np.where(use_path, path_delay, host_delay)

        # Cleaning: how many of each block's replies beat the cut-off?
        offsets = self._send_offsets(round_id)
        first_rel = offsets + delay / 1000.0
        dup_gap = 0.1 / 1000.0  # duplicates trail by 0.1 ms
        within = np.floor((self._late_cutoff - first_rel) / dup_gap) + 1
        within = np.clip(within, 0, counts).astype(np.int64)
        within = np.where(first_rel <= self._late_cutoff, within, 0)
        within = np.where(delivered, within, 0)

        received = int(counts.sum())
        unsolicited_mask = delivered & self._off_address
        unsolicited = int(counts[unsolicited_mask].sum())
        countable = delivered & ~self._off_address
        late = int((counts[countable] - within[countable]).sum())
        kept_mask = countable & (within >= 1)
        duplicates = int((within[kept_mask] - 1).sum())
        kept = int(kept_mask.sum())

        mapping: Dict[int, str] = {}
        rtts: Dict[int, float] = {}
        kept_blocks = blocks[kept_mask].astype(np.int64)
        kept_sites = site[kept_mask]
        kept_delays = delay[kept_mask]
        for block, site_idx, block_delay in zip(kept_blocks, kept_sites, kept_delays):
            mapping[int(block)] = self._site_codes[site_idx]
            rtts[int(block)] = float(block_delay)

        stats = ScanStats(
            probes_sent=self._n,
            replies_received=received,
            wrong_round=0,
            unsolicited=unsolicited,
            late=late,
            duplicates=duplicates,
            kept=kept,
        )
        return ScanResult(
            dataset_id=dataset_id or f"fast-r{round_id}",
            round_id=round_id,
            start_time=start_time,
            duration_seconds=self._n * self._interval,
            catchment=CatchmentMap(self._site_codes, mapping),
            stats=stats,
            rtts=rtts,
        )

    def run_series(
        self,
        rounds: int,
        interval_seconds: float = 900.0,
        dataset_prefix: str = "fast-series",
    ) -> List[ScanResult]:
        """A stability series, vectorised round by round."""
        return [
            self.run_scan(
                round_id=round_id,
                start_time=round_id * interval_seconds,
                dataset_id=f"{dataset_prefix}-r{round_id:03d}",
            )
            for round_id in range(rounds)
        ]
