"""Vectorised scan engine.

Replays :meth:`Verfploeter.run_scan`'s semantics with numpy over all
blocks at once — bit-exact (same hash draws, same cleaning rules, same
RTTs), asserted by the equivalence tests — at 10-50x the speed.  This
is what lets the reproduction run paper-scale experiments: the paper's
96-round day over millions of blocks is a pure Python non-starter, but
perfectly tractable vectorised.

The engine precomputes everything round-invariant (permutation domain,
stable responders, base catchment sites, geography) once per routing
state into a :class:`RoundState` — a plain, picklable bundle of numpy
columns.  Precomputation itself is columnar: blocks join against the
internet's block table and the geo database's columnar snapshot with
``searchsorted``, and per-PoP routing facts are computed once per PoP
and broadcast, so no per-block Python loop runs at any point.

Round evaluation is a module-level pure function over a
:class:`RoundState` (:func:`evaluate_round`), so the same code path
serves both the in-process engine and the multiprocess shard workers
in :mod:`repro.core.sharding` — bit-identity between the two is by
construction, not by parallel maintenance of two implementations.
Every stochastic draw depends only on ``(seed, salt, block, round)``,
and probe send offsets are recovered per shard through the inverse of
the global Feistel permutation, so a :meth:`RoundState.shard` slice
evaluates to exactly the rows the full state would.

Results are columnar end-to-end by default: each round returns an
:class:`~repro.anycast.catchment.ArrayCatchmentMap` over the engine's
shared block universe plus a :class:`BlockValueMap` of RTTs, so
consumers (diffs, load weighting, stability series) stay in numpy.
``columnar=False`` selects the dict-backed reference materialisation
the equivalence suite compares against.
"""
# reprolint: hot-path

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.anycast.catchment import ArrayCatchmentMap, CatchmentMap
from repro.bgp import instability as _instability
from repro.bgp.instability import FlipModelConfig
from repro.bgp.propagation import RoutingOutcome
from repro.collector.results import BlockValueMap
from repro.core.verfploeter import ScanResult, ScanStats, Verfploeter
from repro.errors import ConfigurationError
from repro.geo.distance import EARTH_RADIUS_KM
from repro.icmp import latency as _latency
from repro.obs import Observer
from repro.probing.order import round_order_seed
from repro.rng import hash_prefix_np, uniform_from_prefix_np, uniform_unit_np
from repro.topology import hosts as _hosts
from repro.topology.hosts import HostModelConfig

_ROUNDS = 4  # Feistel rounds; must match probing.order


class _VectorPermutation:
    """Vectorised twin of :class:`repro.probing.order.PseudorandomOrder`."""

    def __init__(self, n: int, seed: int) -> None:
        self._n = n
        self._seed = seed
        bits = max(2, (n - 1).bit_length())
        if bits % 2:
            bits += 1
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1

    def _round_function(self, values: np.ndarray, round_index: int) -> np.ndarray:
        from repro.rng import mix64_np

        with np.errstate(over="ignore"):
            mixed = (
                np.uint64(self._seed)
                ^ (values * np.uint64(0x9E3779B1))
                ^ np.uint64(round_index << 48)
            )
        return mix64_np(mixed) & np.uint64(self._half_mask)

    def _feistel(self, values: np.ndarray) -> np.ndarray:
        left = values >> np.uint64(self._half_bits)
        right = values & np.uint64(self._half_mask)
        for round_index in range(_ROUNDS):
            left, right = right, left ^ self._round_function(right, round_index)
        return (left << np.uint64(self._half_bits)) | right

    def _feistel_inverse(self, values: np.ndarray) -> np.ndarray:
        left = values >> np.uint64(self._half_bits)
        right = values & np.uint64(self._half_mask)
        for round_index in reversed(range(_ROUNDS)):
            left, right = right ^ self._round_function(left, round_index), left
        return (left << np.uint64(self._half_bits)) | right

    def permutation(self) -> np.ndarray:
        """``perm[p]`` = hitlist index probed at position ``p``."""
        values = self._feistel(np.arange(self._n, dtype=np.uint64))
        out_of_range = values >= self._n
        while out_of_range.any():
            values[out_of_range] = self._feistel(values[out_of_range])
            out_of_range = values >= self._n
        return values.astype(np.int64)

    def positions_of(self, indices: np.ndarray) -> np.ndarray:
        """Schedule positions of the given hitlist ``indices``.

        The inverse of :meth:`permutation` without materialising the
        whole domain: decrypt, cycle-walking backwards while the value
        lands outside ``[0, n)``.  Because the forward walk only ever
        passes *through* out-of-range values, walking back stops at
        exactly the position the forward permutation started from.
        Shard workers use this to recover their rows' send offsets.
        """
        values = indices.astype(np.uint64)
        if (values >= self._n).any():
            raise ConfigurationError("permutation input outside [0, n)")
        values = self._feistel_inverse(values)
        out_of_range = values >= self._n
        while out_of_range.any():
            values[out_of_range] = self._feistel_inverse(values[out_of_range])
            out_of_range = values >= self._n
        return values.astype(np.int64)


@dataclass
class RoundState:
    """Everything round-invariant about a scan, as picklable columns.

    One row per hitlist block.  A state is either the full universe
    (``row_start == 0``, ``rows == n_total``) or a contiguous shard of
    it produced by :meth:`shard`; every per-row value in a shard is a
    slice of the full state's value, never recomputed, so shard
    evaluation is bit-identical to evaluating the same rows in-process.
    """

    site_codes: List[str]
    blocks: np.ndarray  # uint64, strictly ascending
    base: np.ndarray  # int16 site index, -1 = unrouted
    alternate: np.ndarray  # int16 site index, -1 = none
    flipper: np.ndarray  # bool
    participates: np.ndarray  # bool
    stable: np.ndarray  # bool
    off_address: np.ndarray  # bool
    duplicator: np.ndarray  # bool
    prefixes: Dict[int, np.ndarray]  # salt -> uint64 per-block hash prefix
    site_rtt: np.ndarray  # (sites, rows) float64 milliseconds
    access: np.ndarray  # float64 milliseconds
    lat_ok: np.ndarray  # bool
    jitter_scale: float
    host_config: HostModelConfig
    flip_config: FlipModelConfig
    late_cutoff: float  # seconds
    interval: float  # seconds between probes
    order_parent_seed: int
    n_total: int  # permutation domain (full universe size)
    row_start: int = 0  # first hitlist index covered by this state

    @property
    def rows(self) -> int:
        """Number of blocks this state covers."""
        return int(self.blocks.size)

    def shard(self, start: int, stop: int) -> "RoundState":
        """The contiguous sub-state covering hitlist rows [start, stop)."""
        if not 0 <= start < stop <= self.rows:
            raise ConfigurationError(
                f"shard [{start}, {stop}) outside [0, {self.rows})"
            )
        return replace(
            self,
            blocks=self.blocks[start:stop],
            base=self.base[start:stop],
            alternate=self.alternate[start:stop],
            flipper=self.flipper[start:stop],
            participates=self.participates[start:stop],
            stable=self.stable[start:stop],
            off_address=self.off_address[start:stop],
            duplicator=self.duplicator[start:stop],
            prefixes={salt: arr[start:stop] for salt, arr in self.prefixes.items()},
            site_rtt=self.site_rtt[:, start:stop],
            access=self.access[start:stop],
            lat_ok=self.lat_ok[start:stop],
            row_start=self.row_start + start,
        )


@dataclass
class RoundArrays:
    """One evaluated round, before materialisation into a ScanResult."""

    site: np.ndarray  # int16 replying site per row (meaningful where kept)
    delay: np.ndarray  # float64 first-reply delay (ms) per row
    kept_mask: np.ndarray  # bool: row survives cleaning
    stats: ScanStats


def _round_draw(state: RoundState, salt: int, round_id: int) -> np.ndarray:
    """One per-block uniform draw for this round (prefix finished)."""
    return uniform_from_prefix_np(state.prefixes[salt], round_id)


def send_offsets(state: RoundState, round_id: int) -> np.ndarray:
    """Seconds after round start each of this state's probes is sent.

    The permutation always spans the *full* ``n_total`` domain — shard
    boundaries must not change anyone's schedule position.  The full
    state scatters the forward permutation (one pass); a shard decrypts
    just its own rows through the inverse Feistel.  Both paths multiply
    the identical integer position by the identical float interval, so
    the offsets are bit-equal.
    """
    seed = round_order_seed(state.order_parent_seed, round_id)
    perm = _VectorPermutation(state.n_total, seed)
    if state.row_start == 0 and state.rows == state.n_total:
        offsets = np.empty(state.n_total, dtype=np.float64)
        offsets[perm.permutation()] = (
            np.arange(state.n_total, dtype=np.float64) * state.interval
        )
        return offsets
    rows = np.arange(
        state.row_start, state.row_start + state.rows, dtype=np.uint64
    )
    return perm.positions_of(rows).astype(np.float64) * state.interval


def evaluate_round(state: RoundState, round_id: int) -> RoundArrays:
    """One measurement round over ``state`` (pure array passes).

    Module-level so process-pool workers can evaluate pickled shard
    states with the very code the in-process engine runs.
    """
    cfg = state.host_config
    n = state.rows
    responds = state.stable & (
        _round_draw(state, _hosts._CHURN_SALT, round_id) >= cfg.churn_probability
    )

    # Site selection with per-round flips.
    flip_draw = _round_draw(state, _instability._FLIP_SALT, round_id)
    has_alternate = state.alternate >= 0
    flips = has_alternate & (
        (state.participates & (flip_draw < state.flip_config.flipper_flip_probability))
        | (~state.flipper & (flip_draw < state.flip_config.background_flip_probability))
    )
    site = np.where(flips, state.alternate, state.base)
    delivered = responds & (site >= 0)

    # Reply counts (duplicates).
    tail = _round_draw(state, _hosts._DUPN_SALT, round_id)
    heavy = tail < cfg.heavy_duplicate_fraction
    counts = np.ones(n, dtype=np.int64)
    counts[state.duplicator & ~heavy] = 2
    heaviness = tail / cfg.heavy_duplicate_fraction
    heavy_counts = 3 + ((cfg.max_duplicates - 3) * heaviness).astype(np.int64)
    counts = np.where(state.duplicator & heavy, heavy_counts, counts)
    counts = np.where(delivered, counts, 0)

    # First-reply delay (milliseconds), mirroring the dataplane.
    latency_draw = _round_draw(state, _hosts._LATENCY_SALT, round_id)
    late_replier = (
        _round_draw(state, _hosts._LATE_SALT, round_id) < cfg.late_fraction
    )
    host_delay = np.where(
        late_replier,
        cfg.late_threshold_ms * (1.0 + 4.0 * latency_draw),
        10.0 + 390.0 * latency_draw,
    )
    jitter = state.jitter_scale * _round_draw(state, _latency._JITTER_SALT, round_id)
    site_clamped = np.clip(site, 0, len(state.site_codes) - 1)
    path_delay = (
        state.site_rtt[site_clamped, np.arange(n)] + state.access + jitter
    )
    use_path = state.lat_ok & ~late_replier & (site >= 0)
    delay = np.where(use_path, path_delay, host_delay)

    # Cleaning: how many of each block's replies beat the cut-off?
    offsets = send_offsets(state, round_id)
    first_rel = offsets + delay / 1000.0
    dup_gap = 0.1 / 1000.0  # duplicates trail by 0.1 ms
    within = np.floor((state.late_cutoff - first_rel) / dup_gap) + 1
    within = np.clip(within, 0, counts).astype(np.int64)
    within = np.where(first_rel <= state.late_cutoff, within, 0)
    within = np.where(delivered, within, 0)

    received = int(counts.sum())
    unsolicited_mask = delivered & state.off_address
    unsolicited = int(counts[unsolicited_mask].sum())
    countable = delivered & ~state.off_address
    late = int((counts[countable] - within[countable]).sum())
    kept_mask = countable & (within >= 1)
    duplicates = int((within[kept_mask] - 1).sum())
    kept = int(kept_mask.sum())

    stats = ScanStats(
        probes_sent=n,
        replies_received=received,
        wrong_round=0,
        unsolicited=unsolicited,
        late=late,
        duplicates=duplicates,
        kept=kept,
    )
    return RoundArrays(site=site, delay=delay, kept_mask=kept_mask, stats=stats)


def materialise_columnar(
    state: RoundState,
    arrays: RoundArrays,
    round_id: int,
    start_time: float,
    dataset_id: str,
) -> ScanResult:
    """Columnar ScanResult over ``state``'s block universe.

    ``state.blocks`` becomes the shared universe array of every round
    materialised from the same state, so same-universe diffs stay pure
    array compares and pickling a list of rounds serialises the
    universe once (pickle memoises the shared ndarray).
    """
    catchment = ArrayCatchmentMap(
        state.site_codes,
        state.blocks,
        np.where(arrays.kept_mask, arrays.site, np.int16(-1)).astype(np.int16),
        validate=False,
    )
    rtts = BlockValueMap(
        state.blocks[arrays.kept_mask].astype(np.int64),
        arrays.delay[arrays.kept_mask],
    )
    return ScanResult(
        dataset_id=dataset_id,
        round_id=round_id,
        start_time=start_time,
        duration_seconds=state.rows * state.interval,
        catchment=catchment,
        stats=arrays.stats,
        rtts=rtts,
    )


class FastScanEngine:
    """Vectorised equivalent of repeated ``Verfploeter.run_scan`` calls."""

    def __init__(
        self,
        verfploeter: Verfploeter,
        routing: Optional[RoutingOutcome] = None,
        columnar: bool = True,
        observer: Optional[Observer] = None,
    ) -> None:
        self.verfploeter = verfploeter
        self.observer = (
            observer if observer is not None else verfploeter.observer
        )
        self.routing = routing if routing is not None else verfploeter.routing_for()
        self.columnar = columnar
        self._prober = verfploeter._prober
        with self.observer.tracer.span(
            "fastscan.precompute", columnar=columnar
        ) as span:
            with self.observer.profile("fastscan.precompute"):
                self.state = self._precompute(verfploeter)
            span.set(blocks=self.state.rows, sites=len(self.state.site_codes))
        self._external: Dict[str, str] = {}

    def externalize(self, store) -> str:
        """Persist this engine's round state through ``store``; returns
        the content fingerprint workers attach by.

        Cached per store root, so a pool running several series over one
        engine fingerprints and persists at most once.
        """
        from repro.core.tables import persist_round_state

        cached = self._external.get(store.root)
        if cached is not None:
            return cached
        with self.observer.tracer.span("fastscan.externalize") as span:
            fingerprint = persist_round_state(store, self.state)
            span.set(fingerprint=fingerprint, blocks=self.state.rows)
        self._external[store.root] = fingerprint
        return fingerprint

    def _precompute(self, verfploeter: Verfploeter) -> RoundState:
        """Build every round-invariant array (one pass per routing state)."""
        internet = verfploeter.internet
        seed = internet.seed
        host_config = internet.host_model.config
        flip_config = self.routing.flip_model.config

        hitlist = verfploeter.hitlist
        n = len(hitlist)
        blocks = np.array(hitlist.blocks, dtype=np.uint64)
        site_codes = list(self.routing.policy.site_codes)
        site_index = {code: i for i, code in enumerate(site_codes)}

        # --- per-block round-invariant state (bulk joins, no block loop) --
        # Routing facts vary per PoP, not per block: compute site / alternate /
        # flipper once per PoP (and per AS behind it), then broadcast over the
        # hitlist through the internet's columnar block table.
        pop_count = len(internet.pops)
        pop_base = np.full(pop_count, -1, dtype=np.int16)
        pop_alternate = np.full(pop_count, -1, dtype=np.int16)
        pop_flipper = np.zeros(pop_count, dtype=bool)
        for pop in internet.pops:
            site = self.routing.site_of_pop(pop)
            if site is None:
                continue
            pop_base[pop.pop_id] = site_index[site]
            pop_flipper[pop.pop_id] = internet.ases[pop.asn].flipper
            alternate = self.routing.selections[pop.asn].alternate_site
            if alternate is not None and alternate != site and alternate in site_index:
                pop_alternate[pop.pop_id] = site_index[alternate]

        table_blocks, _, table_pops = internet.block_table()
        signed_blocks = blocks.astype(np.int64)
        rows = np.searchsorted(table_blocks, signed_blocks)
        rows = np.minimum(rows, max(table_blocks.size - 1, 0))
        populated = (table_blocks.size > 0) & (table_blocks[rows] == signed_blocks)
        block_pops = np.where(populated, table_pops[rows], 0)
        base = np.where(populated, pop_base[block_pops], np.int16(-1)).astype(np.int16)
        has_site = base >= 0
        alternate = np.where(
            has_site, pop_alternate[block_pops], np.int16(-1)
        ).astype(np.int16)
        flipper = has_site & pop_flipper[block_pops]

        # Geography joins against the geo database's columnar snapshot;
        # responsiveness thresholds are per country, broadcast to blocks.
        model = internet.host_model
        columns = internet.geodb.columnar()
        geo_rows, located = internet.geodb.join(signed_blocks)
        lat = np.where(located, columns.latitudes[geo_rows], np.nan)
        lon = np.where(located, columns.longitudes[geo_rows], np.nan)
        country_thresholds = np.array(
            [model.responsiveness_for(code) for code in columns.countries],
            dtype=np.float64,
        )
        base_threshold = model.responsiveness_for(None)
        if columns.countries:
            threshold = np.where(
                located,
                country_thresholds[columns.country_index[geo_rows]],
                base_threshold,
            )
        else:
            threshold = np.full(n, base_threshold, dtype=np.float64)

        # --- round-invariant stochastic masks ----------------------------
        cfg = host_config
        stable = uniform_unit_np(seed, _hosts._STABLE_SALT, blocks) < threshold
        off_address = (
            uniform_unit_np(seed, _hosts._OFFADDR_SALT, blocks)
            < cfg.off_address_fraction
        )
        duplicator = (
            uniform_unit_np(seed, _hosts._DUP_SALT, blocks)
            < cfg.duplicate_fraction
        )
        participates = flipper & (
            uniform_unit_np(seed, _instability._PARTICIPATE_SALT, blocks)
            < flip_config.flipper_block_fraction
        )

        # Per-round draws share a round-invariant hash prefix over
        # (seed, salt, blocks); each round then needs only one array
        # mix pass to absorb the round id.
        prefixes = {
            salt: hash_prefix_np(seed, salt, blocks)
            for salt in (
                _hosts._CHURN_SALT,
                _hosts._DUPN_SALT,
                _hosts._LATENCY_SALT,
                _hosts._LATE_SALT,
                _instability._FLIP_SALT,
                _latency._JITTER_SALT,
            )
        }

        # --- latency precomputation ---------------------------------------
        lm = verfploeter.latency_model
        lat_ok = ~np.isnan(lat)
        site_rtt = np.full((len(site_codes), n), np.nan)
        lat_rad = np.radians(lat)
        lon_rad = np.radians(lon)
        for index, code in enumerate(site_codes):
            site = verfploeter.service.site(code)
            site_lat = np.radians(site.latitude)
            site_lon = np.radians(site.longitude)
            half_dlat = (site_lat - lat_rad) / 2.0
            half_dlon = (site_lon - lon_rad) / 2.0
            a = (
                np.sin(half_dlat) ** 2
                + np.cos(lat_rad) * np.cos(site_lat) * np.sin(half_dlon) ** 2
            )
            distance = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0, 1)))
            site_rtt[index] = 2.0 * lm._stretch * distance / _latency.KM_PER_MS
        access_draw = uniform_unit_np(seed, _latency._ACCESS_SALT, blocks)
        low, high = lm._access_range
        access = low + (high - low) * access_draw * access_draw

        return RoundState(
            site_codes=site_codes,
            blocks=blocks,
            base=base,
            alternate=alternate,
            flipper=flipper,
            participates=participates,
            stable=stable,
            off_address=off_address,
            duplicator=duplicator,
            prefixes=prefixes,
            site_rtt=site_rtt,
            access=access,
            lat_ok=lat_ok,
            jitter_scale=lm._jitter,
            host_config=host_config,
            flip_config=flip_config,
            late_cutoff=verfploeter.cleaning.late_cutoff_seconds,
            interval=1.0 / verfploeter.prober_config.rate_pps,
            order_parent_seed=verfploeter._prober._seed,
            n_total=n,
        )

    # -- per-round evaluation ---------------------------------------------

    def _send_offsets(self, round_id: int) -> np.ndarray:
        """Per-block send offsets of one round (the prober's schedule)."""
        return send_offsets(self.state, round_id)

    def run_scan(
        self,
        round_id: int = 0,
        start_time: float = 0.0,
        dataset_id: Optional[str] = None,
    ) -> ScanResult:
        """One vectorised measurement round (equals ``Verfploeter.run_scan``)."""
        with self.observer.tracer.span(
            "fastscan.round", round_id=round_id
        ) as span:
            with self.observer.profile("fastscan.round"):
                result = self._evaluate_round(round_id, start_time, dataset_id)
            span.set(
                probes_sent=result.stats.probes_sent,
                replies_received=result.stats.replies_received,
                kept=result.stats.kept,
            )
        metrics = self.observer.metrics
        metrics.counter("probe.probes_sent").inc(result.stats.probes_sent)
        metrics.counter("collector.replies_received").inc(
            result.stats.replies_received
        )
        metrics.counter("cleaning.kept").inc(result.stats.kept)
        metrics.counter("cleaning.dropped", rule="unsolicited").inc(
            result.stats.unsolicited
        )
        metrics.counter("cleaning.dropped", rule="late").inc(result.stats.late)
        metrics.counter("cleaning.dropped", rule="duplicate").inc(
            result.stats.duplicates
        )
        if self.observer.enabled:
            for code, fraction in sorted(result.catchment.fractions().items()):
                metrics.gauge("catchment.fraction", site=code).set(fraction)
        return result

    def _evaluate_round(
        self,
        round_id: int,
        start_time: float,
        dataset_id: Optional[str],
    ) -> ScanResult:
        """Evaluate one round and materialise it (columnar or reference)."""
        state = self.state
        arrays = evaluate_round(state, round_id)
        label = dataset_id or f"fast-r{round_id}"
        if self.columnar:
            return materialise_columnar(state, arrays, round_id, start_time, label)

        # Dict-backed reference materialisation (equivalence baseline).
        mapping: Dict[int, str] = {}
        rtt_dict: Dict[int, float] = {}
        kept_blocks = state.blocks[arrays.kept_mask].astype(np.int64)
        kept_sites = arrays.site[arrays.kept_mask]
        kept_delays = arrays.delay[arrays.kept_mask]
        for block, site_idx, block_delay in zip(kept_blocks, kept_sites, kept_delays):
            mapping[int(block)] = state.site_codes[site_idx]  # reprolint: disable=D110 — reference path
            rtt_dict[int(block)] = float(block_delay)  # reprolint: disable=D110 — reference path
        catchment: CatchmentMap = CatchmentMap(state.site_codes, mapping)
        return ScanResult(
            dataset_id=label,
            round_id=round_id,
            start_time=start_time,
            duration_seconds=state.rows * state.interval,
            catchment=catchment,
            stats=arrays.stats,
            rtts=rtt_dict,
        )

    def run_series(
        self,
        rounds: int,
        interval_seconds: float = 900.0,
        dataset_prefix: str = "fast-series",
        parallel: int = 1,
    ) -> List[ScanResult]:
        """A stability series, vectorised round by round.

        ``parallel`` > 1 fans the rounds out over a thread pool
        (mirroring the experiment drivers' opt-in fan-out): each round
        reads only the engine's immutable precomputed arrays, so the
        fan-out changes wall-clock time, never results.  Results keep
        round order either way.  For process-level fan-out sharded over
        the block universe, see :func:`repro.core.sharding.run_sharded_series`.
        """

        def one_round(round_id: int) -> ScanResult:
            return self.run_scan(
                round_id=round_id,
                start_time=round_id * interval_seconds,
                dataset_id=f"{dataset_prefix}-r{round_id:03d}",
            )

        with self.observer.tracer.span(
            "fastscan.series", rounds=rounds, parallel=parallel
        ):
            if parallel > 1 and rounds > 1:
                with ThreadPoolExecutor(max_workers=min(parallel, rounds)) as pool:
                    return list(pool.map(one_round, range(rounds)))
            return [one_round(round_id) for round_id in range(rounds)]
