"""Vectorised scan engine.

Replays :meth:`Verfploeter.run_scan`'s semantics with numpy over all
blocks at once — bit-exact (same hash draws, same cleaning rules, same
RTTs), asserted by the equivalence tests — at 10-50x the speed.  This
is what lets the reproduction run paper-scale experiments: the paper's
96-round day over millions of blocks is a pure Python non-starter, but
perfectly tractable vectorised.

The engine precomputes everything round-invariant (permutation domain,
stable responders, base catchment sites, geography) once per routing
state, then evaluates each round with a handful of array operations.
Precomputation itself is columnar: blocks join against the internet's
block table and the geo database's columnar snapshot with
``searchsorted``, and per-PoP routing facts are computed once per PoP
and broadcast, so no per-block Python loop runs at any point.

Results are columnar end-to-end by default: each round returns an
:class:`~repro.anycast.catchment.ArrayCatchmentMap` over the engine's
shared block universe plus a :class:`BlockValueMap` of RTTs, so
consumers (diffs, load weighting, stability series) stay in numpy.
``columnar=False`` selects the dict-backed reference materialisation
the equivalence suite compares against.
"""
# reprolint: hot-path

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

import numpy as np

from repro.anycast.catchment import ArrayCatchmentMap, CatchmentMap
from repro.bgp import instability as _instability
from repro.bgp.propagation import RoutingOutcome
from repro.collector.results import BlockValueMap
from repro.core.verfploeter import ScanResult, ScanStats, Verfploeter
from repro.geo.distance import EARTH_RADIUS_KM
from repro.icmp import latency as _latency
from repro.obs import Observer
from repro.rng import hash_prefix_np, uniform_from_prefix_np, uniform_unit_np
from repro.topology import hosts as _hosts

_ROUNDS = 4  # Feistel rounds; must match probing.order


class _VectorPermutation:
    """Vectorised twin of :class:`repro.probing.order.PseudorandomOrder`."""

    def __init__(self, n: int, seed: int) -> None:
        self._n = n
        self._seed = seed
        bits = max(2, (n - 1).bit_length())
        if bits % 2:
            bits += 1
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1

    def _round_function(self, values: np.ndarray, round_index: int) -> np.ndarray:
        from repro.rng import mix64_np

        with np.errstate(over="ignore"):
            mixed = (
                np.uint64(self._seed)
                ^ (values * np.uint64(0x9E3779B1))
                ^ np.uint64(round_index << 48)
            )
        return mix64_np(mixed) & np.uint64(self._half_mask)

    def _feistel(self, values: np.ndarray) -> np.ndarray:
        left = values >> np.uint64(self._half_bits)
        right = values & np.uint64(self._half_mask)
        for round_index in range(_ROUNDS):
            left, right = right, left ^ self._round_function(right, round_index)
        return (left << np.uint64(self._half_bits)) | right

    def permutation(self) -> np.ndarray:
        """``perm[p]`` = hitlist index probed at position ``p``."""
        values = self._feistel(np.arange(self._n, dtype=np.uint64))
        out_of_range = values >= self._n
        while out_of_range.any():
            values[out_of_range] = self._feistel(values[out_of_range])
            out_of_range = values >= self._n
        return values.astype(np.int64)


class FastScanEngine:
    """Vectorised equivalent of repeated ``Verfploeter.run_scan`` calls."""

    def __init__(
        self,
        verfploeter: Verfploeter,
        routing: Optional[RoutingOutcome] = None,
        columnar: bool = True,
        observer: Optional[Observer] = None,
    ) -> None:
        self.verfploeter = verfploeter
        self.observer = (
            observer if observer is not None else verfploeter.observer
        )
        self.routing = routing if routing is not None else verfploeter.routing_for()
        self.columnar = columnar
        with self.observer.tracer.span(
            "fastscan.precompute", columnar=columnar
        ) as span:
            with self.observer.profile("fastscan.precompute"):
                self._precompute(verfploeter)
            span.set(blocks=self._n, sites=len(self._site_codes))

    def _precompute(self, verfploeter: Verfploeter) -> None:
        """Build every round-invariant array (one pass per routing state)."""
        internet = verfploeter.internet
        self._seed = internet.seed
        self._host_config = internet.host_model.config
        self._flip_config = self.routing.flip_model.config

        hitlist = verfploeter.hitlist
        self._n = len(hitlist)
        self._blocks = np.array(hitlist.blocks, dtype=np.uint64)
        self._site_codes = list(self.routing.policy.site_codes)
        site_index = {code: i for i, code in enumerate(self._site_codes)}

        # --- per-block round-invariant state (bulk joins, no block loop) --
        # Routing facts vary per PoP, not per block: compute site / alternate /
        # flipper once per PoP (and per AS behind it), then broadcast over the
        # hitlist through the internet's columnar block table.
        pop_count = len(internet.pops)
        pop_base = np.full(pop_count, -1, dtype=np.int16)
        pop_alternate = np.full(pop_count, -1, dtype=np.int16)
        pop_flipper = np.zeros(pop_count, dtype=bool)
        for pop in internet.pops:
            site = self.routing.site_of_pop(pop)
            if site is None:
                continue
            pop_base[pop.pop_id] = site_index[site]
            pop_flipper[pop.pop_id] = internet.ases[pop.asn].flipper
            alternate = self.routing.selections[pop.asn].alternate_site
            if alternate is not None and alternate != site and alternate in site_index:
                pop_alternate[pop.pop_id] = site_index[alternate]

        table_blocks, _, table_pops = internet.block_table()
        signed_blocks = self._blocks.astype(np.int64)
        rows = np.searchsorted(table_blocks, signed_blocks)
        rows = np.minimum(rows, max(table_blocks.size - 1, 0))
        populated = (table_blocks.size > 0) & (table_blocks[rows] == signed_blocks)
        block_pops = np.where(populated, table_pops[rows], 0)
        base = np.where(populated, pop_base[block_pops], np.int16(-1)).astype(np.int16)
        has_site = base >= 0
        alternate = np.where(
            has_site, pop_alternate[block_pops], np.int16(-1)
        ).astype(np.int16)
        flipper = has_site & pop_flipper[block_pops]
        self._base = base
        self._alternate = alternate
        self._flipper = flipper

        # Geography joins against the geo database's columnar snapshot;
        # responsiveness thresholds are per country, broadcast to blocks.
        model = internet.host_model
        columns = internet.geodb.columnar()
        geo_rows, located = internet.geodb.join(signed_blocks)
        lat = np.where(located, columns.latitudes[geo_rows], np.nan)
        lon = np.where(located, columns.longitudes[geo_rows], np.nan)
        country_thresholds = np.array(
            [model.responsiveness_for(code) for code in columns.countries],
            dtype=np.float64,
        )
        base_threshold = model.responsiveness_for(None)
        if columns.countries:
            threshold = np.where(
                located,
                country_thresholds[columns.country_index[geo_rows]],
                base_threshold,
            )
        else:
            threshold = np.full(self._n, base_threshold, dtype=np.float64)

        # --- round-invariant stochastic masks ----------------------------
        cfg = self._host_config
        self._stable = (
            uniform_unit_np(self._seed, _hosts._STABLE_SALT, self._blocks)
            < threshold
        )
        self._off_address = (
            uniform_unit_np(self._seed, _hosts._OFFADDR_SALT, self._blocks)
            < cfg.off_address_fraction
        )
        self._duplicator = (
            uniform_unit_np(self._seed, _hosts._DUP_SALT, self._blocks)
            < cfg.duplicate_fraction
        )
        self._participates = self._flipper & (
            uniform_unit_np(self._seed, _instability._PARTICIPATE_SALT, self._blocks)
            < self._flip_config.flipper_block_fraction
        )

        # Per-round draws share a round-invariant hash prefix over
        # (seed, salt, blocks); each round then needs only one array
        # mix pass to absorb the round id.
        self._round_prefixes = {
            salt: hash_prefix_np(self._seed, salt, self._blocks)
            for salt in (
                _hosts._CHURN_SALT,
                _hosts._DUPN_SALT,
                _hosts._LATENCY_SALT,
                _hosts._LATE_SALT,
                _instability._FLIP_SALT,
                _latency._JITTER_SALT,
            )
        }

        # --- latency precomputation ---------------------------------------
        lm = verfploeter.latency_model
        self._lat_ok = ~np.isnan(lat)
        self._site_rtt = np.full((len(self._site_codes), self._n), np.nan)
        lat_rad = np.radians(lat)
        lon_rad = np.radians(lon)
        for index, code in enumerate(self._site_codes):
            site = verfploeter.service.site(code)
            site_lat = np.radians(site.latitude)
            site_lon = np.radians(site.longitude)
            half_dlat = (site_lat - lat_rad) / 2.0
            half_dlon = (site_lon - lon_rad) / 2.0
            a = (
                np.sin(half_dlat) ** 2
                + np.cos(lat_rad) * np.cos(site_lat) * np.sin(half_dlon) ** 2
            )
            distance = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0, 1)))
            self._site_rtt[index] = (
                2.0 * lm._stretch * distance / _latency.KM_PER_MS
            )
        access_draw = uniform_unit_np(self._seed, _latency._ACCESS_SALT, self._blocks)
        low, high = lm._access_range
        self._access = low + (high - low) * access_draw * access_draw
        self._jitter_scale = lm._jitter

        self._prober = verfploeter._prober
        self._interval = 1.0 / verfploeter.prober_config.rate_pps
        self._late_cutoff = verfploeter.cleaning.late_cutoff_seconds
        self._row_index = np.arange(self._n)
        self._position_offsets = (
            np.arange(self._n, dtype=np.float64) * self._interval
        )

    # -- per-round evaluation ---------------------------------------------

    def _round_draw(self, salt: int, round_id: int) -> np.ndarray:
        """One per-block uniform draw for this round (prefix finished)."""
        return uniform_from_prefix_np(self._round_prefixes[salt], round_id)

    def _send_offsets(self, round_id: int) -> np.ndarray:
        """Seconds after round start each hitlist entry's probe is sent."""
        # One derivation site: reuse the scalar prober's stream so both
        # engines walk the identical permutation.
        perm = _VectorPermutation(self._n, self._prober.order_seed(round_id)).permutation()
        offsets = np.empty(self._n, dtype=np.float64)
        offsets[perm] = self._position_offsets
        return offsets

    def run_scan(
        self,
        round_id: int = 0,
        start_time: float = 0.0,
        dataset_id: Optional[str] = None,
    ) -> ScanResult:
        """One vectorised measurement round (equals ``Verfploeter.run_scan``)."""
        with self.observer.tracer.span(
            "fastscan.round", round_id=round_id
        ) as span:
            with self.observer.profile("fastscan.round"):
                result = self._evaluate_round(round_id, start_time, dataset_id)
            span.set(
                probes_sent=result.stats.probes_sent,
                replies_received=result.stats.replies_received,
                kept=result.stats.kept,
            )
        metrics = self.observer.metrics
        metrics.counter("probe.probes_sent").inc(result.stats.probes_sent)
        metrics.counter("collector.replies_received").inc(
            result.stats.replies_received
        )
        metrics.counter("cleaning.kept").inc(result.stats.kept)
        metrics.counter("cleaning.dropped", rule="unsolicited").inc(
            result.stats.unsolicited
        )
        metrics.counter("cleaning.dropped", rule="late").inc(result.stats.late)
        metrics.counter("cleaning.dropped", rule="duplicate").inc(
            result.stats.duplicates
        )
        if self.observer.enabled:
            for code, fraction in sorted(result.catchment.fractions().items()):
                metrics.gauge("catchment.fraction", site=code).set(fraction)
        return result

    def _evaluate_round(
        self,
        round_id: int,
        start_time: float,
        dataset_id: Optional[str],
    ) -> ScanResult:
        """The uninstrumented round evaluation (pure array passes)."""
        cfg = self._host_config
        blocks = self._blocks
        responds = self._stable & (
            self._round_draw(_hosts._CHURN_SALT, round_id)
            >= cfg.churn_probability
        )

        # Site selection with per-round flips.
        flip_draw = self._round_draw(_instability._FLIP_SALT, round_id)
        has_alternate = self._alternate >= 0
        flips = has_alternate & (
            (self._participates & (flip_draw < self._flip_config.flipper_flip_probability))
            | (~self._flipper & (flip_draw < self._flip_config.background_flip_probability))
        )
        site = np.where(flips, self._alternate, self._base)
        delivered = responds & (site >= 0)

        # Reply counts (duplicates).
        tail = self._round_draw(_hosts._DUPN_SALT, round_id)
        heavy = tail < cfg.heavy_duplicate_fraction
        counts = np.ones(self._n, dtype=np.int64)
        counts[self._duplicator & ~heavy] = 2
        heaviness = tail / cfg.heavy_duplicate_fraction
        heavy_counts = 3 + ((cfg.max_duplicates - 3) * heaviness).astype(np.int64)
        counts = np.where(self._duplicator & heavy, heavy_counts, counts)
        counts = np.where(delivered, counts, 0)

        # First-reply delay (milliseconds), mirroring the dataplane.
        latency_draw = self._round_draw(_hosts._LATENCY_SALT, round_id)
        late_replier = (
            self._round_draw(_hosts._LATE_SALT, round_id) < cfg.late_fraction
        )
        host_delay = np.where(
            late_replier,
            cfg.late_threshold_ms * (1.0 + 4.0 * latency_draw),
            10.0 + 390.0 * latency_draw,
        )
        jitter = self._jitter_scale * self._round_draw(
            _latency._JITTER_SALT, round_id
        )
        site_clamped = np.clip(site, 0, len(self._site_codes) - 1)
        path_delay = (
            self._site_rtt[site_clamped, self._row_index]
            + self._access
            + jitter
        )
        use_path = self._lat_ok & ~late_replier & (site >= 0)
        delay = np.where(use_path, path_delay, host_delay)

        # Cleaning: how many of each block's replies beat the cut-off?
        offsets = self._send_offsets(round_id)
        first_rel = offsets + delay / 1000.0
        dup_gap = 0.1 / 1000.0  # duplicates trail by 0.1 ms
        within = np.floor((self._late_cutoff - first_rel) / dup_gap) + 1
        within = np.clip(within, 0, counts).astype(np.int64)
        within = np.where(first_rel <= self._late_cutoff, within, 0)
        within = np.where(delivered, within, 0)

        received = int(counts.sum())
        unsolicited_mask = delivered & self._off_address
        unsolicited = int(counts[unsolicited_mask].sum())
        countable = delivered & ~self._off_address
        late = int((counts[countable] - within[countable]).sum())
        kept_mask = countable & (within >= 1)
        duplicates = int((within[kept_mask] - 1).sum())
        kept = int(kept_mask.sum())

        if self.columnar:
            # The universe array is shared across every round this engine
            # produces, so consecutive-round diffs are pure array compares.
            catchment: CatchmentMap = ArrayCatchmentMap(
                self._site_codes,
                blocks,
                np.where(kept_mask, site, np.int16(-1)).astype(np.int16),
                validate=False,
            )
            rtts = BlockValueMap(
                blocks[kept_mask].astype(np.int64), delay[kept_mask]
            )
        else:
            # Dict-backed reference materialisation (equivalence baseline).
            mapping: Dict[int, str] = {}
            rtt_dict: Dict[int, float] = {}
            kept_blocks = blocks[kept_mask].astype(np.int64)
            kept_sites = site[kept_mask]
            kept_delays = delay[kept_mask]
            for block, site_idx, block_delay in zip(kept_blocks, kept_sites, kept_delays):
                mapping[int(block)] = self._site_codes[site_idx]  # reprolint: disable=D110 — reference path
                rtt_dict[int(block)] = float(block_delay)  # reprolint: disable=D110 — reference path
            catchment = CatchmentMap(self._site_codes, mapping)
            rtts = rtt_dict

        stats = ScanStats(
            probes_sent=self._n,
            replies_received=received,
            wrong_round=0,
            unsolicited=unsolicited,
            late=late,
            duplicates=duplicates,
            kept=kept,
        )
        return ScanResult(
            dataset_id=dataset_id or f"fast-r{round_id}",
            round_id=round_id,
            start_time=start_time,
            duration_seconds=self._n * self._interval,
            catchment=catchment,
            stats=stats,
            rtts=rtts,
        )

    def run_series(
        self,
        rounds: int,
        interval_seconds: float = 900.0,
        dataset_prefix: str = "fast-series",
        parallel: int = 1,
    ) -> List[ScanResult]:
        """A stability series, vectorised round by round.

        ``parallel`` > 1 fans the rounds out over a thread pool
        (mirroring the experiment drivers' opt-in fan-out): each round
        reads only the engine's immutable precomputed arrays, so the
        fan-out changes wall-clock time, never results.  Results keep
        round order either way.
        """

        def one_round(round_id: int) -> ScanResult:
            return self.run_scan(
                round_id=round_id,
                start_time=round_id * interval_seconds,
                dataset_id=f"{dataset_prefix}-r{round_id:03d}",
            )

        with self.observer.tracer.span(
            "fastscan.series", rounds=rounds, parallel=parallel
        ):
            if parallel > 1 and rounds > 1:
                with ThreadPoolExecutor(max_workers=min(parallel, rounds)) as pool:
                    return list(pool.map(one_round, range(rounds)))
            return [one_round(round_id) for round_id in range(rounds)]
