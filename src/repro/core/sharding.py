"""Sharded multiprocess scanning and load weighting, zero-copy edition.

The paper maps catchments for the whole responsive IPv4 Internet —
millions of /24 blocks — which wants more than one core.  This module
partitions the shared uint64 block universe into contiguous ranges
(:class:`ShardPlan`) and fans :func:`repro.core.fastscan.evaluate_round`
and the load-weighting join across a persistent
:class:`repro.core.pool.ShardPool`, then deterministically concatenates
the per-shard columns back into full-universe results.

Workers are zero-copy: the parent externalises every round-invariant
column once through :class:`repro.core.tables.TableStore`
(:meth:`FastScanEngine.externalize`, :func:`ensure_array`), and a task
payload is just ``(store root, fingerprint, shard bounds, round
params)`` — a few hundred bytes regardless of universe size.  Each
worker process attaches the fingerprinted arrays as read-only memmaps
through a per-process cache (`core.pool`), so repeated series over one
engine ship no arrays at all.  Results come back compact too: kept-only
site/delay columns plus a packed keep mask; the parent rebuilds full
columns against its own copy of the universe.

The merged output is **bit-identical** to the single-process path, by
construction rather than by luck:

* every stochastic draw in the engine depends only on
  ``(seed, salt, block, round)`` via ``hash_prefix_np``, so a shard's
  rows evaluate to exactly the values the full pass would produce;
* probe send offsets — the one cross-block coupling — are recovered
  per shard through the inverse of the *global* Feistel permutation
  (:meth:`_VectorPermutation.positions_of`), multiplying the identical
  integer position by the identical float interval;
* float accumulations are never merged as per-shard partial sums
  (float addition is not associative).  Workers return exact integers
  (int16 site indices, packed bool masks, per-row float64 delays that
  are copied, never summed); the parent owns **all** float
  accumulation, running each daily/hourly ``bincount`` as one full
  pass in fixed order — the identical sequence of additions the
  single-process join performs.

Process-pool construction lives in `repro.core.pool` (reprolint rule
D112); every pool target here is a module-level function resolving
fingerprints through that module's per-process attach cache.
"""

from __future__ import annotations

import os
import pickle
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.anycast.catchment import ArrayCatchmentMap
from repro.collector.results import BlockValueMap, ScanResult, ScanStats
from repro.core.fastscan import FastScanEngine, RoundState, evaluate_round
from repro.core.pool import ShardPool, attached_array, attached_round_state
from repro.core.tables import ensure_array
from repro.errors import ConfigurationError, DatasetError, EquivalenceError
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN, SiteLoad
from repro.obs import NULL_OBSERVER, Observer
from repro.traffic.logs import HOURS


@dataclass(frozen=True)
class ShardPlan:
    """A partition of ``[0, universe_size)`` into contiguous ranges."""

    universe_size: int
    bounds: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.universe_size <= 0:
            raise ConfigurationError("shard plan needs a non-empty universe")
        if not self.bounds:
            raise ConfigurationError("shard plan needs at least one shard")
        cursor = 0
        for start, stop in self.bounds:
            if start != cursor or stop <= start:
                raise ConfigurationError(
                    f"shard bounds must tile the universe; got {self.bounds}"
                )
            cursor = stop
        if cursor != self.universe_size:
            raise ConfigurationError(
                f"shard bounds cover [0, {cursor}), universe is "
                f"[0, {self.universe_size})"
            )

    @classmethod
    def split(cls, universe_size: int, shards: int) -> "ShardPlan":
        """Near-equal contiguous split (first remainder shards get +1).

        ``shards`` is clamped to ``universe_size`` so no shard is
        empty; the split depends only on the two integers, never on
        worker count or timing.
        """
        if universe_size <= 0:
            raise ConfigurationError("shard plan needs a non-empty universe")
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        shards = min(shards, universe_size)
        base, remainder = divmod(universe_size, shards)
        bounds: List[Tuple[int, int]] = []
        cursor = 0
        for index in range(shards):
            size = base + (1 if index < remainder else 0)
            bounds.append((cursor, cursor + size))
            cursor += size
        return cls(universe_size=universe_size, bounds=tuple(bounds))

    @property
    def shard_count(self) -> int:
        """Number of shards in the plan."""
        return len(self.bounds)

    def sizes(self) -> List[int]:
        """Rows per shard."""
        return [stop - start for start, stop in self.bounds]

    def imbalance(self) -> float:
        """Largest shard over mean shard size (1.0 = perfectly even)."""
        sizes = self.sizes()
        return max(sizes) * len(sizes) / self.universe_size


def assert_buffers_equal(actual, expected, label: str = "array") -> None:
    """Assert two arrays are bit-identical (dtype, shape, and bytes).

    Bitwise, not ``allclose``: the sharded paths promise exact
    reproduction of the single-process results, so the comparison is on
    raw buffers.  Used by the equivalence tests and the benchmark.
    """
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    if actual.dtype != expected.dtype:
        raise EquivalenceError(
            f"{label}: dtype {actual.dtype} != {expected.dtype}"
        )
    if actual.shape != expected.shape:
        raise EquivalenceError(
            f"{label}: shape {actual.shape} != {expected.shape}"
        )
    actual_bytes = np.frombuffer(actual.tobytes(), dtype=np.uint8)
    expected_bytes = np.frombuffer(expected.tobytes(), dtype=np.uint8)
    if not np.array_equal(actual_bytes, expected_bytes):
        first_byte = int(np.nonzero(actual_bytes != expected_bytes)[0][0])
        element = first_byte // max(actual.itemsize, 1)
        raise EquivalenceError(
            f"{label}: buffers differ (first differing element index "
            f"{element} of {actual.size})"
        )


def assert_scan_results_identical(actual: ScanResult, expected: ScanResult) -> None:
    """Assert two columnar scan results match bit for bit."""
    if actual.dataset_id != expected.dataset_id:
        raise EquivalenceError(
            f"dataset_id {actual.dataset_id!r} != {expected.dataset_id!r}"
        )
    if actual.round_id != expected.round_id:
        raise EquivalenceError(f"round_id {actual.round_id} != {expected.round_id}")
    if (actual.start_time, actual.duration_seconds) != (
        expected.start_time,
        expected.duration_seconds,
    ):
        raise EquivalenceError("start_time/duration differ")
    if actual.stats != expected.stats:
        raise EquivalenceError(f"stats {actual.stats} != {expected.stats}")
    assert_buffers_equal(
        actual.catchment.universe, expected.catchment.universe, "catchment.universe"
    )
    assert_buffers_equal(
        actual.catchment.site_index_array,
        expected.catchment.site_index_array,
        "catchment.sites",
    )
    assert_buffers_equal(
        actual.rtts.block_array(), expected.rtts.block_array(), "rtts.blocks"
    )
    assert_buffers_equal(
        actual.rtts.value_array(), expected.rtts.value_array(), "rtts.values"
    )


def assert_site_loads_identical(actual: SiteLoad, expected: SiteLoad) -> None:
    """Assert two site loads match bit for bit (daily and hourly)."""
    if actual.site_codes != expected.site_codes:
        raise EquivalenceError("site_codes differ")
    for code in (*expected.site_codes, UNKNOWN):
        if actual.daily_of(code) != expected.daily_of(code):
            raise EquivalenceError(
                f"daily[{code}]: {actual.daily_of(code)!r} != "
                f"{expected.daily_of(code)!r}"
            )
        assert_buffers_equal(
            actual.hourly_of(code), expected.hourly_of(code), f"hourly[{code}]"
        )


def merge_stats(parts: Sequence[ScanStats]) -> ScanStats:
    """Sum per-shard scan statistics (all fields are exact integers)."""
    return ScanStats(
        probes_sent=sum(part.probes_sent for part in parts),
        replies_received=sum(part.replies_received for part in parts),
        wrong_round=sum(part.wrong_round for part in parts),
        unsolicited=sum(part.unsolicited for part in parts),
        late=sum(part.late for part in parts),
        duplicates=sum(part.duplicates for part in parts),
        kept=sum(part.kept for part in parts),
    )


def resolve_fanout(shards: Optional[int], workers: Optional[int]) -> Tuple[int, int]:
    """Fill in the shard/worker defaults (workers=0 means run inline)."""
    if shards is None:
        shards = workers if workers else 1
    if workers is None:
        workers = min(shards, len(os.sched_getaffinity(0)))
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if workers < 0:
        raise ConfigurationError("workers must be >= 0")
    return shards, workers


def _payload_bytes(payloads: Sequence[object]) -> int:
    """Total pickled size of a fan-out's payloads (instrumentation)."""
    return sum(len(pickle.dumps(payload)) for payload in payloads)


# -- pool workers (top-level so they pickle; fingerprints in, columns out) --


def _scan_shard_worker(payload) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, ScanStats]]:
    """Evaluate every round of one shard; returns compact round columns.

    The payload carries no arrays — just the store root, the round
    state's content fingerprint, and the shard bounds; the state is
    attached (or found warm) in this process's cache.  Each round comes
    back as ``(kept site indices, packed keep mask, kept delays,
    stats)``: the parent rebuilds full-universe columns from its own
    copy, so result pickling scales with *kept* rows only.
    """
    store_root, fingerprint, start, stop, rounds = payload
    state = attached_round_state(store_root, fingerprint).shard(start, stop)
    results = []
    for round_id in range(rounds):
        arrays = evaluate_round(state, round_id)
        results.append(
            (
                arrays.site[arrays.kept_mask],
                np.packbits(arrays.kept_mask),
                arrays.delay[arrays.kept_mask],
                arrays.stats,
            )
        )
    return results


def _join_shard_worker(payload) -> np.ndarray:
    """Resolve one slice of traffic blocks to site indices (int16).

    All three columns — catchment universe, site indices, and traffic
    blocks — arrive as fingerprints and are read from this process's
    attached memmaps; only the int16 result slice is shipped back.
    """
    store_root, site_codes, universe_fp, sites_fp, blocks_fp, start, stop = payload
    catchment = ArrayCatchmentMap(
        site_codes,
        attached_array(store_root, universe_fp),
        attached_array(store_root, sites_fp),
        validate=False,
    )
    traffic_blocks = attached_array(store_root, blocks_fp)
    return catchment.site_indices_of(traffic_blocks[start:stop])


# -- sharded scan series ---------------------------------------------------


def _merge_round(
    state: RoundState,
    shard_rounds: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray, ScanStats]],
    bounds: Sequence[Tuple[int, int]],
    round_id: int,
    interval_seconds: float,
    dataset_prefix: str,
) -> ScanResult:
    """Rebuild one round's full-universe result from compact shard columns.

    Exactly mirrors :func:`repro.core.fastscan.materialise_columnar`
    per shard — full site column is ``-1`` except where the keep mask
    is set, RTT rows are the kept blocks in shard order — then
    concatenates, so the result is bit-identical to evaluating the
    full universe in one pass.
    """
    site_parts: List[np.ndarray] = []
    block_parts: List[np.ndarray] = []
    value_parts: List[np.ndarray] = []
    for (start, stop), (kept_sites, packed_mask, kept_delays, _) in zip(
        bounds, shard_rounds
    ):
        rows = stop - start
        mask = np.unpackbits(packed_mask, count=rows).view(np.bool_)
        sites = np.full(rows, -1, dtype=np.int16)
        sites[mask] = kept_sites
        site_parts.append(sites)
        block_parts.append(state.blocks[start:stop][mask].astype(np.int64))
        value_parts.append(kept_delays)
    sites = site_parts[0] if len(site_parts) == 1 else np.concatenate(site_parts)
    catchment = ArrayCatchmentMap(
        state.site_codes, state.blocks, sites, validate=False
    )
    rtts = BlockValueMap(
        block_parts[0] if len(block_parts) == 1 else np.concatenate(block_parts),
        value_parts[0] if len(value_parts) == 1 else np.concatenate(value_parts),
    )
    return ScanResult(
        dataset_id=f"{dataset_prefix}-r{round_id:03d}",
        round_id=round_id,
        start_time=round_id * interval_seconds,
        duration_seconds=state.n_total * state.interval,
        catchment=catchment,
        stats=merge_stats([part[3] for part in shard_rounds]),
        rtts=rtts,
    )


def run_sharded_series(
    engine: FastScanEngine,
    rounds: int,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    interval_seconds: float = 900.0,
    dataset_prefix: str = "fast-series",
    observer: Optional[Observer] = None,
    pool: Optional[ShardPool] = None,
    store=None,
) -> List[ScanResult]:
    """A stability series fanned across block shards and worker processes.

    Equivalent to ``engine.run_series(rounds, ...)`` — same dataset
    ids, same start times, bit-identical catchments, RTTs, and stats —
    but each shard of the block universe is evaluated independently.
    Pass an open :class:`~repro.core.pool.ShardPool` to reuse warm
    workers (and their attach caches) across calls; otherwise a
    temporary pool is created for this series (``workers >= 1`` in
    processes; ``workers == 0`` inline through the same fingerprint
    protocol, for tests and platforms without fork).  Merged results
    share the engine's universe array, so consecutive-round diffs stay
    pure array compares.
    """
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    if observer is None:
        observer = engine.observer
    state = engine.state
    with ExitStack() as stack:
        if pool is None:
            shards, workers = resolve_fanout(shards, workers)
            pool = stack.enter_context(
                ShardPool(workers=workers, store=store, observer=observer)
            )
        else:
            shards, _ = resolve_fanout(shards, pool.workers)
        plan = ShardPlan.split(state.rows, shards)
        with observer.tracer.span(
            "scan.sharded_series",
            rounds=rounds,
            shards=plan.shard_count,
            workers=pool.workers,
        ) as span:
            fingerprint = engine.externalize(pool.store)
            payloads = [
                (pool.store.root, fingerprint, start, stop, rounds)
                for start, stop in plan.bounds
            ]
            payload_bytes = _payload_bytes(payloads)
            per_shard = pool.map(_scan_shard_worker, payloads, observer=observer)
            merged = [
                _merge_round(
                    state,
                    [shard_rounds[round_id] for shard_rounds in per_shard],
                    plan.bounds,
                    round_id,
                    interval_seconds,
                    dataset_prefix,
                )
                for round_id in range(rounds)
            ]
            span.set(blocks=state.rows, payload_bytes=payload_bytes)
    metrics = observer.metrics
    metrics.counter("scan.shard.payload_bytes").inc(payload_bytes)
    metrics.gauge("scan.shards").set(plan.shard_count)
    metrics.gauge("scan.shard_imbalance").set(plan.imbalance())
    return merged


# -- sharded load weighting ------------------------------------------------


def sharded_weight_catchment(
    catchment: ArrayCatchmentMap,
    estimate: LoadEstimate,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    hourly: bool = True,
    observer: Optional[Observer] = None,
    pool: Optional[ShardPool] = None,
    store=None,
) -> SiteLoad:
    """Load weighting with the exact-int join fanned over workers.

    Bit-identical to :func:`repro.load.weighting.weight_catchment` on
    the same array-backed catchment: workers resolve slices of the
    traffic-row join to exact int16 site indices over memmapped
    columns (nothing but fingerprints and bounds is shipped out, int16
    slices shipped back), while the parent owns every float
    accumulation — the daily ``bincount`` and each hour column run as
    full single passes in fixed order, exactly as the single-process
    join performs them.  Pass an open ``ShardPool`` to share warm
    workers with a scan series.
    """
    if observer is None:
        observer = NULL_OBSERVER
    if not isinstance(catchment, ArrayCatchmentMap):
        raise ConfigurationError(
            "sharded weighting requires an array-backed catchment"
        )
    if len(estimate) == 0:
        raise DatasetError("load estimate is empty")
    site_codes = catchment.site_codes
    unknown_bucket = len(site_codes)
    traffic_blocks = estimate.blocks
    with ExitStack() as stack:
        if pool is None:
            shards, workers = resolve_fanout(shards, workers)
            pool = stack.enter_context(
                ShardPool(workers=workers, store=store, observer=observer)
            )
        else:
            shards, _ = resolve_fanout(shards, pool.workers)
        plan = ShardPlan.split(traffic_blocks.size, shards)
        with observer.tracer.span(
            "load.weight.sharded", shards=plan.shard_count, workers=pool.workers
        ) as span:
            universe_fp = ensure_array(pool.store, catchment.universe)
            sites_fp = ensure_array(pool.store, catchment.site_index_array)
            blocks_fp = ensure_array(pool.store, traffic_blocks)
            join_payloads = [
                (
                    pool.store.root,
                    site_codes,
                    universe_fp,
                    sites_fp,
                    blocks_fp,
                    start,
                    stop,
                )
                for start, stop in plan.bounds
            ]
            payload_bytes = _payload_bytes(join_payloads)
            index_parts = pool.map(
                _join_shard_worker, join_payloads, observer=observer
            )
            buckets = _buckets_of(index_parts, unknown_bucket)
            daily_values = estimate.source.daily_of_kind(estimate.kind)
            daily_sums = np.bincount(
                buckets, weights=daily_values, minlength=unknown_bucket + 1
            )
            hourly_sums = np.zeros((unknown_bucket + 1, HOURS))
            if hourly:
                matrix = estimate.hourly_matrix()
                for hour in range(HOURS):
                    hourly_sums[:, hour] = np.bincount(
                        buckets,
                        weights=matrix[:, hour],
                        minlength=unknown_bucket + 1,
                    )
            daily = {code: float(daily_sums[i]) for i, code in enumerate(site_codes)}
            daily[UNKNOWN] = float(daily_sums[unknown_bucket])
            hourly_acc: Dict[str, np.ndarray] = {
                code: hourly_sums[i] for i, code in enumerate(site_codes)
            }
            hourly_acc[UNKNOWN] = hourly_sums[unknown_bucket]
            span.set(join_rows=len(estimate), payload_bytes=payload_bytes)
    metrics = observer.metrics
    metrics.counter("scan.shard.payload_bytes").inc(payload_bytes)
    metrics.gauge("load.join_rows").set(len(estimate))
    return SiteLoad(site_codes, daily, hourly_acc)


def _buckets_of(index_parts: Sequence[np.ndarray], unknown_bucket: int) -> np.ndarray:
    """Concatenate per-shard site indices into daily/hourly bucket ids."""
    joined = (
        index_parts[0]
        if len(index_parts) == 1
        else np.concatenate(index_parts)
    )
    indices = joined.astype(np.int64)
    return np.where(indices >= 0, indices, unknown_bucket)
