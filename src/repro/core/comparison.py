"""Atlas vs Verfploeter coverage comparison (paper Table 4, §5.3)."""

from __future__ import annotations

from typing import Set

from repro.analysis.results import CoverageComparison
from repro.atlas.platform import AtlasMeasurement
from repro.collector.results import ScanResult
from repro.topology.internet import Internet


def compare_coverage(
    atlas: AtlasMeasurement, scan: ScanResult, internet: Internet
) -> CoverageComparison:
    """Build the Table 4 comparison from one Atlas and one Verfploeter run."""
    atlas_blocks: Set[int] = atlas.responding_blocks()
    verf_blocks: Set[int] = set(scan.catchment.blocks())
    overlap = atlas_blocks & verf_blocks
    verf_geolocatable = sum(1 for block in verf_blocks if block in internet.geodb)
    return CoverageComparison(
        atlas_considered_vps=atlas.considered_vps,
        atlas_considered_blocks=len(atlas.considered_blocks()),
        atlas_nonresponding_vps=atlas.considered_vps - atlas.responding_vps,
        atlas_nonresponding_blocks=(
            len(atlas.considered_blocks()) - len(atlas_blocks)
        ),
        atlas_responding_vps=atlas.responding_vps,
        atlas_responding_blocks=len(atlas_blocks),
        # Atlas VP locations are registered at deployment, so every
        # responding block is geolocatable (paper: "no location: 0").
        atlas_geolocatable_blocks=len(atlas_blocks),
        atlas_unique_blocks=len(atlas_blocks - verf_blocks),
        verf_considered_blocks=scan.stats.probes_sent,
        verf_nonresponding_blocks=scan.stats.probes_sent - scan.stats.kept,
        verf_responding_blocks=len(verf_blocks),
        verf_no_location_blocks=len(verf_blocks) - verf_geolocatable,
        verf_geolocatable_blocks=verf_geolocatable,
        verf_unique_blocks=len(verf_blocks - atlas_blocks),
        overlap_blocks=len(overlap),
    )
