"""Canonical scenarios: B-Root, Tangled, and .nl (paper Tables 1-3).

A :class:`Scenario` bundles a seeded topology, an anycast service with
the paper's sites, a RIPE Atlas deployment, and a workload profile.
Builders come in several scales (``tiny`` for unit tests up to
``large`` for benchmarks); every piece is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.anycast.service import AnycastService
from repro.anycast.site import AnycastSite
from repro.atlas.platform import AtlasPlatform
from repro.errors import ConfigurationError
from repro.netaddr.prefix import Prefix
from repro.topology.generator import SeededAS, TopologyConfig, build_internet
from repro.topology.internet import Internet
from repro.traffic.ditl import build_day_load
from repro.traffic.logs import DayLoad
from repro.traffic.workload import WorkloadProfile, nl_profile, root_profile

#: Scale presets: (tier1, transit, stub, max_blocks_per_prefix,
#: block_density_scale).  ``xlarge`` pushes the populated universe
#: past a million /24 blocks — the regime the sharded scan engine
#: and the paper's whole-Internet maps target.
SCALES: Dict[str, Tuple[int, int, int, int, float]] = {
    "tiny": (4, 16, 80, 8, 1.0),
    "small": (6, 50, 400, 24, 1.0),
    "medium": (8, 100, 1200, 48, 1.0),
    "large": (10, 200, 3000, 64, 1.0),
    "xlarge": (12, 2000, 10000, 1024, 8.0),
}

#: Address pools per scale.  ``xlarge`` carves from a /2 (4.2M /24
#: spans) so a million-plus populated blocks fit; every other scale
#: keeps the historical /5 so existing layouts are bit-unchanged.
_DEFAULT_POOL = "8.0.0.0/5"
_SCALE_POOLS: Dict[str, str] = {"xlarge": "64.0.0.0/2"}

#: Verfploeter sees ~430x more blocks than Atlas (paper Table 4); VP
#: counts scale with topology size to preserve roughly that ratio.
_ATLAS_COVERAGE_RATIO = 430.0
_MIN_ATLAS_VPS = 25

# The flipping eyeball giants of paper Table 7, sized so their flip
# shares come out roughly proportional (Chinanet dominates with ~51%).
_GIANTS = (
    SeededAS(
        "CHINANET", "transit", "CN", ("CN", "CN", "CN", "CN"),
        ((14, 2), (16, 5), (18, 6)), flipper=True, block_density=0.35,
    ),
    SeededAS(
        "COMCAST", "transit", "US", ("US", "US"),
        ((16, 1), (18, 1)), flipper=True, block_density=0.30,
    ),
    SeededAS(
        "ITCDELTA", "transit", "RU", ("RU",),
        ((18, 1), (19, 1)), flipper=True, block_density=0.35,
    ),
    SeededAS(
        "ONO-AS", "stub", "ES", ("ES",),
        ((19, 1),), flipper=True, block_density=0.45,
    ),
    SeededAS(
        "ALIBABA", "stub", "CN", ("CN",),
        ((18, 1), (19, 1)), flipper=True, block_density=0.35,
    ),
)


@dataclass
class Scenario:
    """One fully assembled measurement scenario."""

    name: str
    scale: str
    internet: Internet
    service: AnycastService
    atlas: AtlasPlatform
    profile: WorkloadProfile

    def day_load(
        self,
        date_label: str,
        day_index: int = 0,
        target_total_queries: Optional[float] = None,
    ) -> DayLoad:
        """One day of service logs for this scenario's workload."""
        return build_day_load(
            self.internet,
            self.profile,
            date_label,
            day_index=day_index,
            target_total_queries=target_total_queries,
        )


def _scale_params(scale: str) -> Tuple[int, int, int, int, float]:
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


def _atlas_vp_count(internet: Internet) -> int:
    responsive = sum(
        1
        for block in internet.blocks
        if internet.host_model.is_stable_responder(
            block, internet.country_of_block(block)
        )
    )
    return max(_MIN_ATLAS_VPS, int(responsive / _ATLAS_COVERAGE_RATIO))


def _site(code: str, name: str, country: str, lat: float, lon: float,
          upstream_asn: int) -> AnycastSite:
    return AnycastSite(code, name, country, lat, lon, upstream_asn)


def broot_like(scale: str = "small", seed: int = 42,
               vp_count: Optional[int] = None) -> Scenario:
    """B-Root after its May 2017 anycast deployment (paper Table 3).

    Two sites: LAX hosted by USC/ISI (upstream modelled on AS226, well
    connected in the US) and MIA hosted by FIU/AMPATH (upstream AS20080,
    modelled with its real-world South-America-heavy connectivity —
    the paper notes AMPATH "is very well connected in Brazil and
    Argentina").
    """
    tier1, transit, stub, blocks_cap, density = _scale_params(scale)
    seeded = _GIANTS + (
        SeededAS(
            # LAX's upstream (modelled on AS226/Los Nettos): multihomed
            # to three majors, so most of the world reaches LAX cheaply.
            "ISI-NET", "transit", "US", ("US",), ((19, 1),),
            provider_names=("TIER1-0", "TIER1-1", "TIER1-3", "TRANSIT-0"),
        ),
        SeededAS(
            # AMPATH: home in BR with a South-America-wide peering
            # fabric — the paper notes it is "very well connected in
            # Brazil and Argentina" but has no direct ties to the west
            # coast of South America (so containment is imperfect).
            "AMPATH", "transit", "BR", ("US", "BR", "AR"), ((19, 1),),
            provider_names=("TIER1-2",),
            peer_regions=("SA",),
        ),
    )
    internet = build_internet(
        TopologyConfig(
            seed=seed,
            tier1_count=tier1,
            transit_count=transit,
            stub_count=stub,
            max_blocks_per_prefix=blocks_cap,
            block_density_scale=density,
            address_pool=_SCALE_POOLS.get(scale, _DEFAULT_POOL),
            seeded_ases=seeded,
        )
    )
    lax_upstream = internet.find_asn_by_name("ISI-NET")
    mia_upstream = internet.find_asn_by_name("AMPATH")
    service = AnycastService(
        "B.root-servers.net",
        Prefix("199.9.14.0/24"),
        [
            _site("LAX", "Los Angeles (USC/ISI)", "US", 34.05, -118.24, lax_upstream),
            _site("MIA", "Miami (FIU/AMPATH)", "US", 25.76, -80.19, mia_upstream),
        ],
    )
    atlas = AtlasPlatform(internet, vp_count or _atlas_vp_count(internet))
    return Scenario("b-root", scale, internet, service, atlas, root_profile())


def tangled_like(scale: str = "small", seed: int = 1337,
                 vp_count: Optional[int] = None) -> Scenario:
    """The nine-site Tangled testbed (paper Table 3).

    Reproduces the paper's structural quirks: three sites (SYD, CDG,
    LHR) share the Vultr upstream AS; Sao Paulo routes through the same
    upstream as Miami (FIU), which can hide its announcements; and the
    Tokyo site's upstream (WIDE) is weakly connected, so it attracts
    little traffic.
    """
    tier1, transit, stub, blocks_cap, density = _scale_params(scale)
    seeded = _GIANTS + (
        SeededAS("VULTR", "transit", "US", ("AU", "FR", "GB"), ((19, 1),),
                 provider_names=("TIER1-0", "TIER1-1")),
        SeededAS("WIDE", "transit", "JP", ("JP",), ((19, 1),),
                 provider_names=("TRANSIT-0",)),
        SeededAS("UT-NET", "transit", "NL", ("NL",), ((19, 1),),
                 provider_names=("TIER1-3",)),
        SeededAS("FIU", "transit", "US", ("US", "BR"), ((19, 1),),
                 provider_names=("TIER1-2",), peer_regions=("SA",)),
        SeededAS("USC-NET", "transit", "US", ("US",), ((19, 1),),
                 provider_names=("TIER1-0",)),
        SeededAS("DKHOST", "transit", "DK", ("DK",), ((19, 1),),
                 provider_names=("TIER1-3",)),
    )
    internet = build_internet(
        TopologyConfig(
            seed=seed,
            tier1_count=tier1,
            transit_count=transit,
            stub_count=stub,
            max_blocks_per_prefix=blocks_cap,
            block_density_scale=density,
            address_pool=_SCALE_POOLS.get(scale, _DEFAULT_POOL),
            seeded_ases=seeded,
        )
    )
    vultr = internet.find_asn_by_name("VULTR")
    fiu = internet.find_asn_by_name("FIU")
    service = AnycastService(
        "tangled.example.net",
        Prefix("198.51.100.0/24"),
        [
            _site("SYD", "Sydney (Vultr)", "AU", -33.87, 151.21, vultr),
            _site("CDG", "Paris (Vultr)", "FR", 48.86, 2.35, vultr),
            _site("HND", "Tokyo (WIDE)", "JP", 35.68, 139.69,
                  internet.find_asn_by_name("WIDE")),
            _site("ENS", "Enschede (U. Twente)", "NL", 52.22, 6.90,
                  internet.find_asn_by_name("UT-NET")),
            _site("LHR", "London (Vultr)", "GB", 51.51, -0.13, vultr),
            _site("MIA", "Miami (FIU)", "US", 25.76, -80.19, fiu),
            _site("IAD", "Washington (USC)", "US", 38.90, -77.04,
                  internet.find_asn_by_name("USC-NET")),
            _site("SAO", "Sao Paulo (FIU)", "BR", -23.55, -46.63, fiu),
            _site("CPH", "Copenhagen (DK Hostmaster)", "DK", 55.68, 12.57,
                  internet.find_asn_by_name("DKHOST")),
        ],
    )
    atlas = AtlasPlatform(internet, vp_count or _atlas_vp_count(internet))
    return Scenario("tangled", scale, internet, service, atlas, root_profile())


def nl_like(scale: str = "small", seed: int = 2017,
            vp_count: Optional[int] = None) -> Scenario:
    """A .nl-style ccTLD with regional load (paper Figure 4b).

    The paper plots the unicast load of four .nl nameservers; here the
    "service" is a two-site stand-in whose interest is purely its
    NL-centric workload profile.
    """
    tier1, transit, stub, blocks_cap, density = _scale_params(scale)
    seeded = _GIANTS + (
        SeededAS("SIDN-NET", "transit", "NL", ("NL",), ((19, 1),),
                 provider_names=("TIER1-0",)),
        SeededAS("SIDN-US", "transit", "US", ("US",), ((19, 1),),
                 provider_names=("TIER1-1",)),
    )
    internet = build_internet(
        TopologyConfig(
            seed=seed,
            tier1_count=tier1,
            transit_count=transit,
            stub_count=stub,
            max_blocks_per_prefix=blocks_cap,
            block_density_scale=density,
            address_pool=_SCALE_POOLS.get(scale, _DEFAULT_POOL),
            seeded_ases=seeded,
        )
    )
    service = AnycastService(
        "nl-anycast.example.net",
        Prefix("203.0.113.0/24"),
        [
            _site("AMS", "Amsterdam (SIDN)", "NL", 52.37, 4.90,
                  internet.find_asn_by_name("SIDN-NET")),
            _site("IAD", "Washington (SIDN)", "US", 38.90, -77.04,
                  internet.find_asn_by_name("SIDN-US")),
        ],
    )
    atlas = AtlasPlatform(internet, vp_count or _atlas_vp_count(internet))
    return Scenario("nl", scale, internet, service, atlas, nl_profile())


#: CDN deployment plan: (site code, city, country, lat, lon, upstream AS name).
_CDN_SITES = (
    ("IAD", "Washington", "US", 38.9, -77.0, "CDN-NA-EAST"),
    ("ORD", "Chicago", "US", 41.9, -87.6, "CDN-NA-EAST"),
    ("SJC", "San Jose", "US", 37.3, -121.9, "CDN-NA-WEST"),
    ("SEA", "Seattle", "US", 47.6, -122.3, "CDN-NA-WEST"),
    ("YYZ", "Toronto", "CA", 43.7, -79.4, "CDN-NA-EAST"),
    ("FRA", "Frankfurt", "DE", 50.1, 8.7, "CDN-EU"),
    ("CDG", "Paris", "FR", 48.9, 2.4, "CDN-EU"),
    ("LHR", "London", "GB", 51.5, -0.1, "CDN-EU"),
    ("AMS", "Amsterdam", "NL", 52.4, 4.9, "CDN-EU"),
    ("MAD", "Madrid", "ES", 40.4, -3.7, "CDN-EU"),
    ("WAW", "Warsaw", "PL", 52.2, 21.0, "CDN-EU"),
    ("GRU", "Sao Paulo", "BR", -23.5, -46.6, "CDN-SA"),
    ("EZE", "Buenos Aires", "AR", -34.6, -58.4, "CDN-SA"),
    ("JNB", "Johannesburg", "ZA", -26.2, 28.0, "CDN-AF"),
    ("CAI", "Cairo", "EG", 30.0, 31.2, "CDN-AF"),
    ("BOM", "Mumbai", "IN", 19.1, 72.9, "CDN-AS"),
    ("NRT", "Tokyo", "JP", 35.7, 139.8, "CDN-AS"),
    ("SIN", "Singapore", "SG", 1.3, 103.8, "CDN-AS"),
    ("HKG", "Hong Kong", "CN", 22.3, 114.2, "CDN-AS"),
    ("SYD", "Sydney", "AU", -33.9, 151.2, "CDN-OC"),
)

_CDN_UPSTREAMS = (
    SeededAS("CDN-NA-EAST", "transit", "US", ("US", "US", "CA"), ((19, 1),),
             provider_names=("TIER1-0", "TIER1-1")),
    SeededAS("CDN-NA-WEST", "transit", "US", ("US", "US"), ((19, 1),),
             provider_names=("TIER1-0", "TIER1-2")),
    SeededAS("CDN-EU", "transit", "DE", ("DE", "FR", "GB", "NL"), ((19, 1),),
             provider_names=("TIER1-1", "TIER1-3")),
    SeededAS("CDN-SA", "transit", "BR", ("BR", "AR"), ((19, 1),),
             provider_names=("TIER1-2",)),
    SeededAS("CDN-AF", "transit", "ZA", ("ZA", "EG"), ((19, 1),),
             provider_names=("TIER1-0",)),
    SeededAS("CDN-AS", "transit", "SG", ("IN", "JP", "SG", "CN"), ((19, 1),),
             provider_names=("TIER1-1", "TIER1-2")),
    SeededAS("CDN-OC", "transit", "AU", ("AU",), ((19, 1),),
             provider_names=("TIER1-3",)),
)


def cdn_like(scale: str = "small", seed: int = 4242,
             vp_count: Optional[int] = None) -> Scenario:
    """A 20-site CDN-style anycast deployment (paper §7 future work).

    The paper is "interested in studying CDN-based anycast systems";
    this scenario provides one: twenty sites on six continents behind
    seven regional upstream ASes, so shared-upstream dynamics (several
    sites per upstream, hot-potato splits) occur at CDN scale.
    """
    tier1, transit, stub, blocks_cap, density = _scale_params(scale)
    internet = build_internet(
        TopologyConfig(
            seed=seed,
            tier1_count=tier1,
            transit_count=transit,
            stub_count=stub,
            max_blocks_per_prefix=blocks_cap,
            block_density_scale=density,
            address_pool=_SCALE_POOLS.get(scale, _DEFAULT_POOL),
            seeded_ases=_GIANTS + _CDN_UPSTREAMS,
        )
    )
    sites = [
        _site(code, f"{city} (CDN)", country, lat, lon,
              internet.find_asn_by_name(upstream))
        for code, city, country, lat, lon, upstream in _CDN_SITES
    ]
    service = AnycastService(
        "cdn.example.net", Prefix("192.0.2.0/24"), sites
    )
    atlas = AtlasPlatform(internet, vp_count or _atlas_vp_count(internet))
    return Scenario("cdn", scale, internet, service, atlas, root_profile())
