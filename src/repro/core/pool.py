"""Persistent shard pool with per-process memmap attach caching.

:class:`ShardPool` is the one place in the library that constructs a
``ProcessPoolExecutor`` (reprolint rule D112 enforces this).  It exists
because the sharded scan's cost model changed once payloads became
fingerprints instead of arrays: with `core.tables` externalising every
round-invariant column, the expensive part of a worker task is no
longer unpickling state but *attaching* it — and attaching is cacheable
per process.  The pool therefore (a) keeps its worker processes alive
across calls, so `repro scan` series, stability series, and sharded
load joins in one invocation reuse warm workers, and (b) runs every
task through :func:`run_attached`, which resolves fingerprints through
a per-process cache before invoking the real worker function.

Cache safety: the cache is per *process* (a module-global
:class:`_ProcessCache` instance, re-initialised on pid change so a
forked worker never aliases its parent's memmaps), holds only
read-only memmap-backed state keyed by ``(store root, fingerprint)``,
and fingerprints are content hashes — a stale hit is impossible by
construction.  Workers never mutate attached state, so no locking is
needed (reprolint W502's pool-escape analysis stays clean: nothing
reachable from a worker writes a module global; the cache mutates only
attributes of one private instance).

Determinism: the pool changes *where* tasks run, never what they
return; ``map`` yields results in submission order, and all
order-sensitive float accumulation stays in the parent (see
`core.sharding`).  Shutdown mid-use raises
:class:`~repro.errors.PoolError` instead of hanging or leaking the
executor's own ``RuntimeError``.
"""

from __future__ import annotations

import os
import resource
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, PoolError
from repro.obs import NULL_OBSERVER, Observer


class _ProcessCache:
    """Attached state for one worker process, keyed by fingerprint.

    Guarding on pid means a process forked *after* the cache was warm
    starts cold instead of sharing file handles with its parent.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.states: Dict[Tuple[str, str], object] = {}
        self.arrays: Dict[Tuple[str, str], np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.tasks = 0

    def ensure_current(self) -> None:
        if self.pid != os.getpid():
            self.__init__()


_CACHE = _ProcessCache()


def attached_round_state(store_root: str, fingerprint: str):
    """This process's attached ``RoundState`` for a fingerprint."""
    from repro.core.tables import TableStore, attach_round_state

    _CACHE.ensure_current()
    key = (store_root, fingerprint)
    state = _CACHE.states.get(key)
    if state is not None:
        _CACHE.hits += 1
        return state
    _CACHE.misses += 1
    state = attach_round_state(TableStore(store_root), fingerprint)
    _CACHE.states[key] = state
    return state


def attached_array(store_root: str, fingerprint: str) -> np.ndarray:
    """This process's attached memmap for a content-addressed array."""
    from repro.core.tables import TableStore, attach_array

    _CACHE.ensure_current()
    key = (store_root, fingerprint)
    array = _CACHE.arrays.get(key)
    if array is not None:
        _CACHE.hits += 1
        return array
    _CACHE.misses += 1
    array = attach_array(TableStore(store_root), fingerprint)
    _CACHE.arrays[key] = array
    return array


@dataclass(frozen=True)
class TaskStats:
    """Per-task cache and memory telemetry shipped back with a result."""

    attach_hits: int
    attach_misses: int
    reused: bool
    max_rss_kb: int


def run_attached(fn: Callable[[object], object], payload: object):
    """Run one task in this process, reporting attach-cache telemetry.

    Top-level (hence picklable) wrapper the pool submits for every
    task; ``fn`` resolves its own fingerprints via
    :func:`attached_round_state` / :func:`attached_array`.
    """
    _CACHE.ensure_current()
    reused = _CACHE.tasks > 0
    _CACHE.tasks += 1
    hits_before = _CACHE.hits
    misses_before = _CACHE.misses
    result = fn(payload)
    stats = TaskStats(
        attach_hits=_CACHE.hits - hits_before,
        attach_misses=_CACHE.misses - misses_before,
        reused=reused,
        max_rss_kb=int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    )
    return result, stats


class ShardPool:
    """A reusable, context-managed process pool for shard fan-outs.

    ``workers=0`` runs tasks inline through the same attach path (the
    bit-identity tests exercise the full fingerprint protocol without
    process startup); ``workers=None`` uses every core this process may
    schedule on.  The underlying executor is created lazily on first
    ``map`` and survives until :meth:`shutdown`, so consecutive series
    reuse warm workers and their attach caches.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        store=None,
        observer: Optional[Observer] = None,
    ) -> None:
        if workers is None:
            workers = len(os.sched_getaffinity(0))
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        if store is None:
            from repro.core.tables import TableStore

            store = TableStore()
        self.store = store
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.max_worker_rss_kb = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`shutdown` has been called."""
        return self._closed

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the workers; further ``map`` calls raise ``PoolError``.

        The executor reference is deliberately kept: its manager thread
        performs the ``cancel_futures`` sweep through a *weakref* to the
        executor, so dropping the last strong reference here would race
        that sweep — a gc'd executor cancels nothing and an in-flight
        ``map`` would silently drain every queued task instead of
        raising.
        """
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def map(
        self,
        fn: Callable[[object], object],
        payloads: Sequence[object],
        observer: Optional[Observer] = None,
    ) -> List[object]:
        """Run ``fn`` over ``payloads``, results in submission order.

        Raises :class:`~repro.errors.PoolError` if the pool is shut
        down before or during the fan-out; exceptions raised by ``fn``
        itself propagate unchanged.
        """
        observer = observer if observer is not None else self.observer
        if self._closed:
            raise PoolError("ShardPool.map called after shutdown")
        payloads = list(payloads)
        with observer.tracer.span(
            "pool.map", tasks=len(payloads), workers=self.workers
        ):
            if self.workers == 0:
                outcomes = [run_attached(fn, payload) for payload in payloads]
            else:
                outcomes = self._map_processes(fn, payloads)
        metrics = observer.metrics
        hits = sum(stats.attach_hits for _, stats in outcomes)
        misses = sum(stats.attach_misses for _, stats in outcomes)
        reused = sum(1 for _, stats in outcomes if stats.reused)
        metrics.counter("pool.attach.hit").inc(hits)
        metrics.counter("pool.attach.miss").inc(misses)
        metrics.counter("pool.worker.reuse").inc(reused)
        metrics.counter("pool.tasks").inc(len(outcomes))
        for _, stats in outcomes:
            if stats.max_rss_kb > self.max_worker_rss_kb:
                self.max_worker_rss_kb = stats.max_rss_kb
        return [result for result, _ in outcomes]

    def _map_processes(
        self, fn: Callable[[object], object], payloads: List[object]
    ) -> List[Tuple[object, TaskStats]]:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        try:
            futures = [
                self._executor.submit(run_attached, fn, payload)
                for payload in payloads
            ]
        except RuntimeError as error:
            raise PoolError(f"ShardPool shut down mid-use: {error}") from error
        try:
            return [future.result() for future in futures]
        except (CancelledError, BrokenProcessPool) as error:
            raise PoolError(
                f"ShardPool workers died or were cancelled mid-use: {error}"
            ) from error
