"""The Verfploeter measurement system (paper §3.1).

Ties the pieces together: schedule a round of pings from the anycast
measurement address over the hitlist, deliver replies through the
simulated dataplane to whichever site BGP selects, capture at every
site, aggregate centrally, clean, and emit a measured catchment map.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional

from repro.anycast.catchment import CatchmentMap
from repro.anycast.service import AnycastService
from repro.bgp.policy import AnnouncementPolicy
from repro.bgp.propagation import RoutingOutcome, compute_routes
from repro.collector.aggregate import CentralCollector
from repro.collector.capture import (
    LanderCapture,
    PcapLikeCapture,
    SiteCapture,
    StreamingCapture,
)
from repro.collector.cleaning import CleaningConfig, clean_replies
from repro.collector.results import ScanResult, ScanStats
from repro.errors import ConfigurationError, MeasurementError
from repro.icmp.latency import LatencyModel
from repro.icmp.network import SimulatedDataplane
from repro.icmp.packets import build_probe
from repro.obs import NULL_OBSERVER, Observer
from repro.probing.hitlist import Hitlist, build_hitlist
from repro.probing.prober import Prober, ProberConfig
from repro.topology.internet import Internet

_WIRE_LEVEL_CUTOFF = 5_000

CAPTURE_STYLES = ("streaming", "lander", "pcap", "pcapbin")


class Verfploeter:
    """A Verfploeter deployment on one anycast service."""

    def __init__(
        self,
        internet: Internet,
        service: AnycastService,
        capture_style: str = "streaming",
        prober_config: Optional[ProberConfig] = None,
        hitlist: Optional[Hitlist] = None,
        cleaning: Optional[CleaningConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        if capture_style not in CAPTURE_STYLES:
            raise ConfigurationError(
                f"capture_style must be one of {CAPTURE_STYLES}, got {capture_style!r}"
            )
        self.internet = internet
        self.service = service
        self.capture_style = capture_style
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.cleaning = cleaning if cleaning is not None else CleaningConfig()
        if hitlist is not None:
            self.hitlist = hitlist
        else:
            with self.observer.tracer.span("hitlist.build") as span:
                self.hitlist = build_hitlist(internet)
                span.set(entries=len(self.hitlist))
        self.observer.metrics.gauge("hitlist.entries").set(len(self.hitlist))
        self.latency_model = (
            latency_model
            if latency_model is not None
            else LatencyModel(internet, service)
        )
        self.prober_config = prober_config or ProberConfig(
            source_address=service.measurement_address
        )
        if not service.prefix.contains_address(self.prober_config.source_address):
            raise ConfigurationError(
                "prober source address must be inside the service prefix "
                f"{service.prefix}"
            )
        self._prober = Prober(
            self.hitlist, self.prober_config, internet.seed,
            observer=self.observer,
        )

    @property
    def prober(self) -> Prober:
        """The deployment's prober (round schedules for external drivers).

        The always-on service's reply feed schedules rounds through
        this rather than re-deriving the prober's seeding.
        """
        return self._prober

    def _make_captures(self) -> List[SiteCapture]:
        captures: List[SiteCapture] = []
        for site in self.service.sites:
            if self.capture_style == "streaming":
                captures.append(StreamingCapture(site.code))
            elif self.capture_style == "lander":
                captures.append(LanderCapture(site.code))
            elif self.capture_style == "pcapbin":
                from repro.collector.pcap import PcapCapture

                captures.append(
                    PcapCapture(
                        site.code, io.BytesIO(), self.service.measurement_address
                    )
                )
            else:
                captures.append(PcapLikeCapture(site.code, io.StringIO()))
        return captures

    def routing_for(
        self, policy: Optional[AnnouncementPolicy] = None
    ) -> RoutingOutcome:
        """Compute routes for ``policy`` (default: all sites, no prepend)."""
        with self.observer.tracer.span("bgp.propagate.full") as span:
            outcome = compute_routes(
                self.internet, policy or self.service.default_policy()
            )
            span.set(sites=len(outcome.policy.site_codes))
        self.observer.metrics.counter("routing.full_computes").inc()
        return outcome

    def run_scan(
        self,
        routing: Optional[RoutingOutcome] = None,
        policy: Optional[AnnouncementPolicy] = None,
        round_id: int = 0,
        start_time: float = 0.0,
        dataset_id: Optional[str] = None,
        wire_level: Optional[bool] = None,
    ) -> ScanResult:
        """Run one measurement round and return the cleaned catchment.

        ``wire_level`` forces full packet encode/decode per probe; by
        default small hitlists go through the wire path and large ones
        use the semantically identical fast path.
        """
        if routing is not None and policy is not None:
            raise MeasurementError("pass either routing or policy, not both")
        if routing is None:
            routing = self.routing_for(policy)
        if wire_level is None:
            wire_level = len(self.hitlist) <= _WIRE_LEVEL_CUTOFF
        observer = self.observer
        with observer.tracer.span(
            "scan.round", round_id=round_id, wire_level=wire_level
        ) as scan_span:
            dataplane = SimulatedDataplane(routing, self.latency_model)
            collector = CentralCollector(
                self._make_captures(), observer=observer
            )
            schedule = self._prober.schedule_round(round_id, start_time)
            probed_addresses = set()
            send_times: Dict[int, float] = {}
            replies_received = 0
            source = self.prober_config.source_address
            payload = self.prober_config.payload
            with observer.tracer.span("scan.probe_replies"):
                for probe in schedule:
                    probed_addresses.add(probe.destination)
                    send_times[probe.destination] = probe.send_time
                    if wire_level:
                        packet = build_probe(
                            source, probe.destination, probe.identifier,
                            probe.sequence, payload
                        )
                        delivered = dataplane.send_probe_packet(
                            packet, probe.send_time, round_id
                        )
                    else:
                        delivered = dataplane.send_probe_fast(
                            probe.destination,
                            probe.identifier,
                            probe.sequence,
                            probe.send_time,
                            round_id,
                        )
                    for reply in delivered:
                        replies_received += 1
                        collector.ingest(reply)
            collected = collector.collect()
            cleaned = clean_replies(
                collected,
                probed_addresses,
                schedule.identifier,
                start_time,
                self.cleaning,
                observer=observer,
            )
            with observer.tracer.span("catchment.map") as map_span:
                mapping: Dict[int, str] = {
                    reply.source_block: reply.site_code for reply in cleaned.kept
                }
                rtts: Dict[int, float] = {
                    reply.source_block: (
                        reply.timestamp - send_times[reply.source_address]
                    ) * 1000.0
                    for reply in cleaned.kept
                }
                catchment = CatchmentMap(routing.policy.site_codes, mapping)
                map_span.set(mapped_blocks=len(mapping))
            observer.metrics.counter("probe.probes_sent").inc(len(schedule))
            observer.metrics.counter("collector.replies_received").inc(
                replies_received
            )
            scan_span.set(
                probes_sent=len(schedule),
                replies_received=replies_received,
                kept=len(cleaned.kept),
            )
            if observer.enabled:
                for code, fraction in sorted(catchment.fractions().items()):
                    observer.metrics.gauge(
                        "catchment.fraction", site=code
                    ).set(fraction)
            stats = ScanStats(
                probes_sent=len(schedule),
                replies_received=replies_received,
                wrong_round=cleaned.wrong_round,
                unsolicited=cleaned.unsolicited,
                late=cleaned.late,
                duplicates=cleaned.duplicates,
                kept=len(cleaned.kept),
            )
            return ScanResult(
                dataset_id=dataset_id or f"scan-r{round_id}",
                round_id=round_id,
                start_time=start_time,
                duration_seconds=schedule.duration_seconds,
                catchment=catchment,
                stats=stats,
                rtts=rtts,
            )

    def run_series(
        self,
        policy: Optional[AnnouncementPolicy] = None,
        rounds: int = 96,
        interval_seconds: float = 900.0,
        dataset_prefix: str = "series",
        routing: Optional[RoutingOutcome] = None,
    ) -> List[ScanResult]:
        """Run ``rounds`` scans spaced ``interval_seconds`` apart.

        Mirrors the paper's 24-hour Tangled study (96 rounds every
        15 minutes, dataset STV-3-23).  Routing is computed once (or
        passed in precomputed via ``routing``); the per-round variation
        comes from host churn and route flipping.
        """
        if rounds < 1:
            raise MeasurementError("rounds must be >= 1")
        if routing is not None and policy is not None:
            raise MeasurementError("pass either routing or policy, not both")
        if routing is None:
            routing = self.routing_for(policy)
        return [
            self.run_scan(
                routing=routing,
                round_id=round_id,
                start_time=round_id * interval_seconds,
                dataset_id=f"{dataset_prefix}-r{round_id:03d}",
                wire_level=False,
            )
            for round_id in range(rounds)
        ]

    def fast_engine(
        self,
        routing: Optional[RoutingOutcome] = None,
        columnar: bool = True,
    ) -> "FastScanEngine":
        """A vectorised engine bound to this deployment.

        ``columnar=True`` (the default) makes every round's results
        array-backed end-to-end; ``columnar=False`` selects the
        dict-backed reference materialisation.  Imported lazily because
        :mod:`repro.core.fastscan` imports this module.
        """
        from repro.core.fastscan import FastScanEngine

        return FastScanEngine(self, routing=routing, columnar=columnar)
