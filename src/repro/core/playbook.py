"""DDoS playbook planner: search routing configs under attack load.

"Anycast Agility: Network Playbooks to Fight DDoS" (PAPERS.md)
precomputes *playbooks*: ranked BGP configurations — AS-path prepends,
withdrawals, site shutdown — an operator flips to when one site is
overwhelmed.  This module is that search over our substrate:

1. :func:`enumerate_lattice` spans the deterministic config lattice
   around an attacked site (prepend it 1..N, withdraw it, and at depth
   2 pair each of those with a second site's prepend to steer where the
   displaced traffic lands);
2. :class:`PlaybookPlanner` evaluates every candidate through the
   fingerprint-keyed :class:`~repro.bgp.cache.RoutingCache` (delta
   propagation on first sight, dictionary hits after), a memoised
   vectorised catchment scan per distinct policy, and the columnar
   :func:`~repro.load.weighting.weight_catchment` join against the
   attack-day load — optionally fanned over threads or a
   :class:`~repro.core.pool.ShardPool`;
3. the result ranks configs by (capacity violations, worst peak
   utilisation, config id) — byte-identically across runs, serial or
   parallel — and renders to a canonical JSON artifact with per-config
   before/after load tables and an "absorber" recommendation.

Capacity semantics are the repo-wide pinned definition of
:func:`repro.load.weighting.capacity_violations`: peak hourly load,
strict ``>``, withdrawn sites never violate.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Lock
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.anycast.catchment import CatchmentMap
from repro.bgp.cache import (
    RoutingCache,
    default_routing_cache,
    policy_digest,
    policy_fingerprint,
)
from repro.bgp.policy import AnnouncementPolicy
from repro.collector.results import ScanResult
from repro.core.verfploeter import Verfploeter
from repro.errors import ConfigurationError
from repro.load.estimator import LoadEstimate
from repro.load.weighting import (
    UNKNOWN,
    SiteLoad,
    capacity_violations,
    weight_catchment,
)
from repro.traffic.attack import AttackProfile

_T = TypeVar("_T")


def _run_indexed(
    worker: Callable[[int], _T], count: int, parallel: int
) -> List[_T]:
    """Run ``worker(0..count-1)``, optionally on threads, in index order.

    Candidate evaluations are independent; the structures they share —
    the routing cache, the planner's catchment memo — take locks or
    perform idempotent writes of deterministic values, so fanning out
    changes wall-clock time only, never results (asserted byte-for-byte
    by ``tests/test_playbook.py``).
    """
    if parallel > 1 and count > 1:
        with ThreadPoolExecutor(max_workers=min(parallel, count)) as pool:
            return list(pool.map(worker, range(count)))
    return [worker(index) for index in range(count)]


@dataclass(frozen=True)
class PlaybookEntry:
    """One candidate mitigation config in the lattice.

    ``config_id`` is the :func:`~repro.bgp.cache.policy_digest` of the
    entry's policy — the stable key tying ranked artifact rows, dataset
    ids, and routing-cache identity together.
    """

    label: str
    config_id: str
    prepends: Tuple[Tuple[str, int], ...]
    withdrawn: Tuple[str, ...]

    def policy_for(self, service) -> AnnouncementPolicy:
        """This entry's announcement policy for ``service``."""
        return service.policy(
            prepends=dict(self.prepends), withdrawn=list(self.withdrawn)
        )


def _entry(service, prepends: Dict[str, int], withdrawn: Tuple[str, ...]) -> PlaybookEntry:
    """Build an entry, deriving label and digest from the policy itself."""
    parts = [f"{code}+{count}" for code, count in sorted(prepends.items())]
    parts += [f"-{code}" for code in withdrawn]
    label = ",".join(parts) if parts else "equal"
    policy = service.policy(prepends=prepends, withdrawn=list(withdrawn))
    return PlaybookEntry(
        label=label,
        config_id=policy_digest(policy),
        prepends=tuple(sorted(prepends.items())),
        withdrawn=withdrawn,
    )


def enumerate_lattice(
    service,
    attacked_site: str,
    max_prepend: int = 3,
    depth: int = 1,
) -> List[PlaybookEntry]:
    """The deterministic config lattice around one attacked site.

    Depth 1: do nothing ("equal"), prepend the attacked site 1..N, or
    withdraw it (shutdown).  Depth 2 additionally pairs every depth-1
    *action* with a second site's prepend 1..N — the Anycast-Agility
    move that protects a would-be-overloaded absorber by deflecting the
    displaced traffic past it.  Enumeration order (and therefore every
    downstream tie-break) is fixed: baseline, ascending attacked-site
    prepends, withdrawal, then depth-2 pairs sorted by (base action,
    second site, prepend count).
    """
    site_codes = list(service.site_codes)
    if attacked_site not in site_codes:
        raise ConfigurationError(
            f"attacked site {attacked_site!r} is not in the deployment"
        )
    if max_prepend < 1:
        raise ConfigurationError("max_prepend must be >= 1")
    if depth not in (1, 2):
        raise ConfigurationError("lattice depth must be 1 or 2")
    if len(site_codes) < 2:
        raise ConfigurationError("playbooks need at least two sites")

    entries = [_entry(service, {}, ())]
    actions: List[Tuple[Dict[str, int], Tuple[str, ...]]] = []
    for count in range(1, max_prepend + 1):
        actions.append(({attacked_site: count}, ()))
    actions.append(({}, (attacked_site,)))
    for prepends, withdrawn in actions:
        entries.append(_entry(service, dict(prepends), withdrawn))
    if depth == 2:
        others = [code for code in sorted(site_codes) if code != attacked_site]
        for prepends, withdrawn in actions:
            for other in others:
                for count in range(1, max_prepend + 1):
                    combined = dict(prepends)
                    combined[other] = count
                    entries.append(_entry(service, combined, withdrawn))
    return entries


def derive_capacities(
    baseline: SiteLoad,
    site_codes: Sequence[str],
    headroom: float = 3.0,
) -> Dict[str, float]:
    """Per-site capacity: ``headroom`` x the site's normal peak hour.

    Operators provision for the observed diurnal peak plus headroom
    (RSSAC-002 reports peak rates for exactly this purpose).  Sites
    whose normal peak falls below the fleet mean are floored at the
    mean: a site that happens to attract little baseline traffic is
    still built to fleet scale, and a near-zero capacity would brand
    any displaced byte a violation.
    """
    if headroom <= 0:
        raise ConfigurationError("capacity headroom must be positive")
    peaks = {code: baseline.peak_of(code) for code in site_codes}
    if not peaks:
        raise ConfigurationError("cannot derive capacities for zero sites")
    mean_peak = sum(peaks.values()) / len(peaks)
    return {
        code: headroom * max(peak, mean_peak) for code, peak in peaks.items()
    }


@dataclass(frozen=True)
class ConfigOutcome:
    """One evaluated config: loads under attack, checked against capacity."""

    entry: PlaybookEntry
    daily: Dict[str, float]
    peaks: Dict[str, float]
    utilization: Dict[str, float]
    violations: Tuple[str, ...]
    worst_utilization: float

    @property
    def violation_count(self) -> int:
        """Number of announcing sites pushed past capacity."""
        return len(self.violations)

    def sort_key(self) -> Tuple[int, float, str]:
        """Ranking key: fewest violations, lowest worst utilisation,
        then the config digest — a total, deterministic order even
        under tied scores."""
        return (self.violation_count, self.worst_utilization, self.entry.config_id)


@dataclass(frozen=True)
class Recommendation:
    """The playbook's headline: which config to flip to, and who absorbs."""

    config_id: str
    label: str
    absorber: Optional[str]
    clears_violations: bool


@dataclass(frozen=True)
class Playbook:
    """A ranked, deterministic mitigation plan for one attack."""

    attacked_site: str
    capacities: Dict[str, float]
    baseline: ConfigOutcome
    ranked: List[ConfigOutcome]
    recommendation: Recommendation
    attack: Optional[AttackProfile]
    attacker_count: int

    @property
    def top(self) -> ConfigOutcome:
        """The best-ranked config."""
        return self.ranked[0]

    def to_artifact(self, meta: Optional[dict] = None) -> dict:
        """The playbook as a plain deterministic dict (artifact schema).

        Stats that legitimately vary between equivalent runs — cache
        hit counts under thread races, wall-clock — are deliberately
        absent: two same-seed searches must render byte-identically,
        serial or parallel, cold caches or warm (they live in the
        metrics/trace sidecars instead).  Floats are rounded to 6
        decimals for a stable, readable rendering.
        """
        def table(outcome: ConfigOutcome) -> dict:
            return {
                "daily": {k: round(v, 6) for k, v in outcome.daily.items()},
                "peaks": {k: round(v, 6) for k, v in outcome.peaks.items()},
                "utilization": {
                    k: round(v, 6) for k, v in outcome.utilization.items()
                },
                "violations": list(outcome.violations),
                "worst_utilization": round(outcome.worst_utilization, 6),
            }

        ranked_rows = []
        for rank, outcome in enumerate(self.ranked, 1):
            row = table(outcome)
            row.update(
                rank=rank,
                config_id=outcome.entry.config_id,
                label=outcome.entry.label,
                prepends={code: n for code, n in outcome.entry.prepends},
                withdrawn=list(outcome.entry.withdrawn),
                delta_daily={
                    code: round(
                        outcome.daily.get(code, 0.0)
                        - self.baseline.daily.get(code, 0.0),
                        6,
                    )
                    for code in sorted(self.baseline.daily)
                },
            )
            ranked_rows.append(row)

        artifact = {
            "version": 1,
            "attacked_site": self.attacked_site,
            "attack": None
            if self.attack is None
            else {
                "name": self.attack.name,
                "target_site": self.attack.target_site,
                "intensity": self.attack.intensity,
                "hotspot_fraction": self.attack.hotspot_fraction,
                "start_hour": self.attack.start_hour,
                "duration_hours": self.attack.duration_hours,
                "attacker_blocks": self.attacker_count,
            },
            "capacities": {k: round(v, 6) for k, v in self.capacities.items()},
            "before": table(self.baseline),
            "ranked": ranked_rows,
            "recommendation": {
                "config_id": self.recommendation.config_id,
                "label": self.recommendation.label,
                "absorber": self.recommendation.absorber,
                "clears_violations": self.recommendation.clears_violations,
            },
            "configs_evaluated": len(self.ranked),
        }
        if meta is not None:
            artifact["meta"] = meta
        return artifact

    def to_json(self, meta: Optional[dict] = None) -> str:
        """Canonical JSON rendering (sorted keys, 2-space indent)."""
        return json.dumps(
            self.to_artifact(meta=meta), sort_keys=True, indent=2
        )


class PlaybookPlanner:
    """Searches the mitigation lattice for a deployment under attack.

    One planner amortises work across searches: routing states live in
    the shared :class:`~repro.bgp.cache.RoutingCache`, and measured
    catchments are memoised per policy fingerprint — a repeated search
    (the playbook-refresh loop an operator runs as attacks evolve)
    skips both propagation and scanning, which is what
    ``BENCH_playbook.json`` measures.  All evaluation paths are
    deterministic, so memo hits are indistinguishable from recomputes.
    """

    def __init__(
        self,
        verfploeter: Verfploeter,
        cache: Optional[RoutingCache] = None,
    ) -> None:
        self.verfploeter = verfploeter
        self.cache = cache if cache is not None else default_routing_cache()
        self.observer = verfploeter.observer
        self._catchments: Dict[tuple, CatchmentMap] = {}
        self._memo_lock = Lock()

    def catchment_for(self, policy: AnnouncementPolicy, pool=None) -> CatchmentMap:
        """The measured catchment of ``policy``, memoised per fingerprint.

        Misses resolve routing through the cache (delta against the
        baseline after the first config) and run one vectorised scan
        round — sharded over ``pool`` when given.  The memo write is
        idempotent (deterministic values), so concurrent misses for the
        same policy are safe.
        """
        key = policy_fingerprint(policy)
        metrics = self.observer.metrics
        with self._memo_lock:
            cached = self._catchments.get(key)
        if cached is not None:
            metrics.counter("playbook.catchment_memo.hits").inc()
            return cached
        metrics.counter("playbook.catchment_memo.misses").inc()
        routing = self.cache.get_or_compute(self.verfploeter.internet, policy)
        dataset_id = f"playbook-{policy_digest(policy)}"
        from repro.core.fastscan import FastScanEngine

        engine = FastScanEngine(self.verfploeter, routing)
        if pool is not None:
            import dataclasses

            from repro.core.sharding import run_sharded_series

            scan: ScanResult = run_sharded_series(
                engine, rounds=1, pool=pool, dataset_prefix=dataset_id
            )[0]
            scan = dataclasses.replace(scan, dataset_id=dataset_id)
        else:
            scan = engine.run_scan(round_id=0, dataset_id=dataset_id)
        with self._memo_lock:
            self._catchments.setdefault(key, scan.catchment)
            return self._catchments[key]

    def _outcome(
        self,
        entry: PlaybookEntry,
        load: SiteLoad,
        capacities: Dict[str, float],
    ) -> ConfigOutcome:
        """Check one config's loads against the pinned capacity semantics."""
        service = self.verfploeter.service
        daily = {
            code: load.daily_of(code)
            for code in (*service.site_codes, UNKNOWN)
        }
        peaks = {code: load.peak_of(code) for code in service.site_codes}
        announcing = [
            code
            for code in service.site_codes
            if code not in entry.withdrawn
        ]
        utilization = {}
        for code in announcing:
            capacity = capacities.get(code)
            if capacity is None:
                continue
            if capacity > 0:
                utilization[code] = peaks[code] / capacity
            else:
                utilization[code] = float("inf") if peaks[code] > 0 else 0.0
        violations = tuple(
            capacity_violations(peaks, capacities, exclude=entry.withdrawn)
        )
        worst = max(utilization.values(), default=0.0)
        return ConfigOutcome(
            entry=entry,
            daily=daily,
            peaks=peaks,
            utilization=utilization,
            violations=violations,
            worst_utilization=worst,
        )

    def _recommend(
        self, baseline: ConfigOutcome, ranked: List[ConfigOutcome],
        attacked_site: str,
    ) -> Recommendation:
        """The absorber call: who soaks up the displaced attack load.

        Under the top config, the absorber is the announcing site
        (other than the attacked one) gaining the most daily load over
        the do-nothing baseline; ties break toward the lower site code.
        If the top config *is* the do-nothing baseline, the attacked
        site itself absorbs the attack.
        """
        top = ranked[0]
        if top.entry.config_id == baseline.entry.config_id:
            absorber: Optional[str] = attacked_site
        else:
            candidates = [
                code
                for code in sorted(top.peaks)
                if code != attacked_site and code not in top.entry.withdrawn
            ]
            absorber = None
            best_gain = float("-inf")
            for code in candidates:
                gain = top.daily.get(code, 0.0) - baseline.daily.get(code, 0.0)
                if gain > best_gain:
                    best_gain = gain
                    absorber = code
        return Recommendation(
            config_id=top.entry.config_id,
            label=top.entry.label,
            absorber=absorber,
            clears_violations=top.violation_count == 0,
        )

    def plan(
        self,
        estimate: LoadEstimate,
        attacked_site: str,
        capacities: Dict[str, float],
        max_prepend: int = 3,
        depth: int = 1,
        parallel: int = 1,
        pool=None,
        attack: Optional[AttackProfile] = None,
        attacker_count: int = 0,
    ) -> Playbook:
        """Search the lattice and rank every config under ``estimate``.

        ``estimate`` is the *attack-day* load (compose one with
        :func:`repro.traffic.attack.compose_attack`); ``capacities``
        come from :func:`derive_capacities` over the normal day.
        ``parallel`` > 1 fans candidate evaluations over threads; an
        open :class:`~repro.core.pool.ShardPool` as ``pool`` instead
        shards each scan and load join over warm worker processes
        (``pool`` takes precedence — candidates then run in sequence so
        the pool is never contended).  Either way the ranked result is
        byte-identical to the serial search.
        """
        service = self.verfploeter.service
        internet = self.verfploeter.internet
        observer = self.observer
        entries = enumerate_lattice(
            service, attacked_site, max_prepend=max_prepend, depth=depth
        )
        with observer.tracer.span(
            "playbook.search",
            attacked_site=attacked_site,
            depth=depth,
            max_prepend=max_prepend,
        ) as span:
            # Seed the all-sites baseline first (mirroring prepend_sweep)
            # so every variant propagates as a delta, not from scratch.
            self.cache.get_or_compute(internet, service.default_policy())

            def evaluate(index: int) -> ConfigOutcome:
                entry = entries[index]
                with observer.tracer.span(
                    "playbook.candidate", label=entry.label
                ):
                    policy = entry.policy_for(service)
                    catchment = self.catchment_for(policy, pool=pool)
                    if pool is not None:
                        from repro.core.sharding import sharded_weight_catchment

                        load = sharded_weight_catchment(
                            catchment, estimate, pool=pool, observer=observer
                        )
                    else:
                        load = weight_catchment(
                            catchment, estimate, observer=observer
                        )
                observer.metrics.counter("playbook.configs_evaluated").inc()
                return self._outcome(entry, load, capacities)

            fanout = 1 if pool is not None else parallel
            outcomes = _run_indexed(evaluate, len(entries), fanout)
            baseline = outcomes[0]
            ranked = sorted(outcomes, key=ConfigOutcome.sort_key)
            span.set(configs=len(entries))
        observer.metrics.gauge("playbook.cache_hit_ratio").set(
            round(self.cache.stats.hit_ratio, 6)
        )
        return Playbook(
            attacked_site=attacked_site,
            capacities=dict(capacities),
            baseline=baseline,
            ranked=ranked,
            recommendation=self._recommend(baseline, ranked, attacked_site),
            attack=attack,
            attacker_count=attacker_count,
        )


def format_playbook_table(playbook: Playbook, top: int = 8) -> str:
    """Render the ranked playbook as the CLI/report table."""
    from repro.analysis.report import render_table

    rows = []
    for rank, outcome in enumerate(playbook.ranked[:top], 1):
        rows.append(
            (
                rank,
                outcome.entry.label,
                outcome.violation_count,
                f"{outcome.worst_utilization:.2f}",
                f"{outcome.peaks.get(playbook.attacked_site, 0.0):,.0f}",
            )
        )
    title = (
        f"playbook for attack on {playbook.attacked_site} "
        f"({len(playbook.ranked)} configs)"
    )
    return render_table(
        ["rank", "config", "violations", "worst util", "peak@attacked"],
        rows,
        title=title,
    )
