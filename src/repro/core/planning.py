"""Site-addition what-ifs: closing the expansion-planning loop.

Paper §3.1: to predict catchments of a *changed* deployment one
announces the changed configuration on a test prefix and measures it.
This module does exactly that for site additions: given a candidate
location (e.g. from :mod:`repro.analysis.placement`), it finds a
suitable upstream AS near the location, deploys a new site on a cloned
test-prefix service, re-measures with Verfploeter, and quantifies what
the new site would capture and how much latency it would save.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.anycast.service import AnycastService
from repro.anycast.site import AnycastSite
from repro.bgp.cache import RoutingCache, default_routing_cache
from repro.core.scenarios import Scenario
from repro.core.verfploeter import ScanResult, Verfploeter
from repro.errors import ConfigurationError, TopologyError
from repro.geo.distance import haversine_km
from repro.geo.regions import country_by_code
from repro.netaddr.prefix import Prefix
from repro.topology.asys import ASTier
from repro.topology.internet import Internet


@dataclass(frozen=True)
class SiteAdditionResult:
    """Effect of adding one candidate site, measured on a test prefix."""

    site: AnycastSite
    baseline_scan: ScanResult
    trial_scan: ScanResult
    captured_blocks: int
    median_rtt_of_new_site_ms: Optional[float]
    mean_rtt_before_ms: float
    mean_rtt_after_ms: float

    @property
    def capture_fraction(self) -> float:
        """Share of mapped blocks the new site would serve."""
        mapped = self.trial_scan.mapped_blocks
        return self.captured_blocks / mapped if mapped else 0.0

    @property
    def mean_rtt_saving_ms(self) -> float:
        """Mean RTT improvement across all mapped blocks."""
        return self.mean_rtt_before_ms - self.mean_rtt_after_ms


def find_upstream_near(
    internet: Internet,
    latitude: float,
    longitude: float,
    prefer_transit: bool = True,
) -> Tuple[int, str]:
    """The AS whose PoP is nearest to a coordinate: (asn, country).

    Transit ASes are preferred (a new anycast site needs an upstream
    that actually provides transit); stubs are a fallback.
    """
    best: Optional[Tuple[float, int, str]] = None
    for pop in internet.pops:
        asys = internet.ases[pop.asn]
        if prefer_transit and asys.tier == ASTier.STUB:
            continue
        distance = haversine_km(latitude, longitude, pop.latitude, pop.longitude)
        if best is None or distance < best[0]:
            best = (distance, pop.asn, pop.country_code)
    if best is None:
        raise TopologyError("topology has no eligible upstream PoPs")
    return best[1], best[2]


def _mean_rtt(scan: ScanResult) -> float:
    if not scan.rtts:
        return 0.0
    return sum(scan.rtts.values()) / len(scan.rtts)


def _pooled_scan(
    verfploeter: Verfploeter, routing, dataset_id: str, pool
) -> ScanResult:
    """One round-0 scan of a candidate configuration over ``pool``."""
    import dataclasses

    from repro.core.fastscan import FastScanEngine
    from repro.core.sharding import run_sharded_series

    engine = FastScanEngine(verfploeter, routing)
    scan = run_sharded_series(
        engine, rounds=1, pool=pool, dataset_prefix=dataset_id
    )[0]
    return dataclasses.replace(scan, dataset_id=dataset_id)


def evaluate_site_addition(
    scenario: Scenario,
    site_code: str,
    latitude: float,
    longitude: float,
    test_prefix: Optional[Prefix] = None,
    upstream_asn: Optional[int] = None,
    cache: Optional[RoutingCache] = None,
    pool=None,
) -> SiteAdditionResult:
    """Measure the effect of adding a site at (latitude, longitude).

    Announces the enlarged deployment on ``test_prefix`` (never touching
    the production service, per paper §3.1) and scans both the baseline
    and the trial configuration.  Both routing states resolve through
    ``cache``: the test-prefix clone announces exactly what production
    does, so its baseline is typically already cached, and the trial
    propagates as a site-addition delta against it.

    With an open :class:`repro.core.pool.ShardPool` as ``pool``, both
    scans run through the vectorised engine sharded over the pool's
    warm workers (round 0 per configuration) — the planner's lattice
    search evaluates many candidates against one pool, paying the
    universe externalisation once.
    """
    test_prefix = test_prefix if test_prefix is not None else Prefix("192.88.99.0/24")
    routing_cache = cache if cache is not None else default_routing_cache()
    service = scenario.service
    if site_code in service.site_codes:
        raise ConfigurationError(f"site code {site_code!r} already exists")
    if upstream_asn is None:
        upstream_asn, country = find_upstream_near(
            scenario.internet, latitude, longitude
        )
    else:
        if upstream_asn not in scenario.internet.ases:
            raise ConfigurationError(f"AS{upstream_asn} does not exist")
        country = scenario.internet.ases[upstream_asn].country_code
    country_by_code(country)  # validate the upstream's country exists

    new_site = AnycastSite(
        site_code, f"candidate ({country})", country, latitude, longitude,
        upstream_asn,
    )
    baseline_service = service.test_prefix_clone(test_prefix)
    trial_service = AnycastService(
        f"{service.name}-trial",
        test_prefix,
        [*service.sites, new_site],
    )

    baseline_vp = Verfploeter(scenario.internet, baseline_service)
    baseline_routing = routing_cache.get_or_compute(
        scenario.internet, baseline_service.default_policy()
    )
    trial_vp = Verfploeter(scenario.internet, trial_service)
    trial_routing = routing_cache.get_or_compute(
        scenario.internet, trial_service.default_policy()
    )
    if pool is not None:
        baseline = _pooled_scan(
            baseline_vp, baseline_routing, "addition-baseline", pool
        )
        trial = _pooled_scan(
            trial_vp, trial_routing, f"addition-{site_code}", pool
        )
    else:
        baseline = baseline_vp.run_scan(routing=baseline_routing,
                                        dataset_id="addition-baseline",
                                        wire_level=False)
        trial = trial_vp.run_scan(routing=trial_routing,
                                  dataset_id=f"addition-{site_code}",
                                  wire_level=False)

    captured = len(trial.catchment.blocks_of_site(site_code))
    return SiteAdditionResult(
        site=new_site,
        baseline_scan=baseline,
        trial_scan=trial,
        captured_blocks=captured,
        median_rtt_of_new_site_ms=trial.median_rtt_of_site(site_code),
        mean_rtt_before_ms=_mean_rtt(baseline),
        mean_rtt_after_ms=_mean_rtt(trial),
    )
