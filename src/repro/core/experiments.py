"""Experiment drivers: prepending sweeps and 24-hour stability series.

All drivers evaluate routing through a :class:`RoutingCache`: the first
configuration propagates in full, every later one is an incremental
delta against it, and repeated configurations are dictionary hits.
Results are bit-identical to scratch propagation either way.  Drivers
that sweep independent scenarios accept ``parallel=`` to fan the
scenarios out across a thread pool; results keep configuration order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TypeVar

from repro.atlas.platform import AtlasPlatform
from repro.bgp.cache import RoutingCache, default_routing_cache
from repro.bgp.policy import AnnouncementPolicy
from repro.bgp.propagation import RoutingConfig
from repro.analysis.results import (
    PrependMeasurement,
    StabilityRound,
    StabilitySeries,
    build_stability_series,
)
from repro.collector.results import ScanResult
from repro.core.verfploeter import Verfploeter
from repro.load.estimator import LoadEstimate
from repro.load.weighting import (
    UNKNOWN,
    SiteLoad,
    capacity_violations,
    weight_catchment,
)

_T = TypeVar("_T")


def _run_indexed(
    worker: Callable[[int], _T], count: int, parallel: int
) -> List[_T]:
    """Run ``worker(0..count-1)``, optionally on threads, in index order.

    Scenario workers are independent: they compute (or cache-fetch) a
    routing outcome and run scans against per-call state.  Shared
    structures they touch — the routing cache, an outcome's memoised
    PoP/catchment maps — take locks or perform idempotent writes of
    deterministic values, so the fan-out cannot change results, only
    wall-clock time.
    """
    if parallel > 1 and count > 1:
        with ThreadPoolExecutor(max_workers=min(parallel, count)) as pool:
            return list(pool.map(worker, range(count)))
    return [worker(index) for index in range(count)]

#: The paper's Figure 5/6 x-axis for B-Root.
BROOT_PREPEND_CONFIGS: Tuple[Tuple[str, Mapping[str, int]], ...] = (
    ("+1 LAX", {"LAX": 1}),
    ("equal", {}),
    ("+1 MIA", {"MIA": 1}),
    ("+2 MIA", {"MIA": 2}),
    ("+3 MIA", {"MIA": 3}),
)


def prepend_sweep(
    verfploeter: Verfploeter,
    atlas: AtlasPlatform,
    configs: Sequence[Tuple[str, Mapping[str, int]]] = BROOT_PREPEND_CONFIGS,
    cache: Optional[RoutingCache] = None,
    parallel: int = 1,
) -> List[PrependMeasurement]:
    """Measure each prepending configuration with Atlas and Verfploeter.

    The paper measures each configuration on a different day against a
    test prefix (§6.1); we measure each under its own routing state.
    Routing states come from ``cache``: the equal-announcement baseline
    is seeded first and each prepend variant propagates as a delta
    against it.
    """
    service = verfploeter.service
    internet = verfploeter.internet
    observer = verfploeter.observer
    routing_cache = cache if cache is not None else default_routing_cache()
    with observer.tracer.span(
        "experiment.prepend_sweep", configs=len(configs)
    ):
        # Seed the unprepended baseline before fanning out so every variant
        # finds a delta baseline instead of propagating from scratch.
        routing_cache.get_or_compute(internet, service.default_policy())

        def measure_config(index: int) -> PrependMeasurement:
            label, prepends = configs[index]
            with observer.tracer.span("prepend.config", label=label):
                policy = service.policy(prepends=prepends)
                routing = routing_cache.get_or_compute(internet, policy)
                scan = verfploeter.run_scan(
                    routing=routing,
                    round_id=index,
                    dataset_id=f"prepend-{label.replace(' ', '')}",
                    wire_level=False,
                )
                atlas_measurement = atlas.measure(
                    routing, service, measurement_id=index
                )
            return PrependMeasurement(
                label=label,
                policy=policy,
                atlas_fractions=atlas_measurement.fractions(),
                verfploeter_fractions=scan.catchment.fractions(),
                scan=scan,
            )

        return _run_indexed(measure_config, len(configs), parallel)


def run_stability_series(
    verfploeter: Verfploeter,
    policy: Optional[AnnouncementPolicy] = None,
    rounds: int = 96,
    interval_seconds: float = 900.0,
    fast: bool = False,
    cache: Optional[RoutingCache] = None,
    parallel: int = 1,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    pool=None,
) -> StabilitySeries:
    """Run the paper's 24-hour stability experiment (§6.3).

    96 rounds at 15-minute spacing by default; returns per-round
    stable/flipped/to-NR/from-NR counts and per-block flip totals.
    With ``fast=True`` the vectorised engine runs the rounds
    (bit-identical results, ~50x faster — required for paper-scale
    series) and ``parallel`` > 1 fans them out over threads; the scalar
    engine ignores ``parallel`` (its rounds share mutable dataplane
    state).  ``shards``/``workers`` instead fan the fast engine over
    the block universe in worker processes via
    :func:`repro.core.sharding.run_sharded_series` (bit-identical
    again; setting either implies ``fast``), and an open
    :class:`repro.core.pool.ShardPool` passed as ``pool`` lets several
    series in one invocation share warm worker processes.  The routing
    state is resolved through ``cache``, so a series over an
    already-studied policy skips propagation entirely.
    """
    observer = verfploeter.observer
    routing_cache = cache if cache is not None else default_routing_cache()
    sharded = shards is not None or workers is not None or pool is not None
    with observer.tracer.span(
        "experiment.stability_series", rounds=rounds, fast=fast or sharded
    ):
        routing = routing_cache.get_or_compute(
            verfploeter.internet, policy or verfploeter.service.default_policy()
        )
        if sharded:
            from repro.core.fastscan import FastScanEngine
            from repro.core.sharding import run_sharded_series

            engine = FastScanEngine(verfploeter, routing)
            scans = run_sharded_series(
                engine,
                rounds=rounds,
                shards=shards,
                workers=workers,
                interval_seconds=interval_seconds,
                dataset_prefix="stability",
                pool=pool,
            )
        elif fast:
            from repro.core.fastscan import FastScanEngine

            engine = FastScanEngine(verfploeter, routing)
            scans = engine.run_series(
                rounds=rounds,
                interval_seconds=interval_seconds,
                dataset_prefix="stability",
                parallel=parallel,
            )
        else:
            scans = verfploeter.run_series(
                routing=routing,
                rounds=rounds,
                interval_seconds=interval_seconds,
                dataset_prefix="stability",
            )
        return build_stability_series(scans)


@dataclass(frozen=True)
class SiteFailureResult:
    """Load redistribution when one site is withdrawn.

    This is the DDoS/maintenance planning question behind the paper's
    load-balancing motivation (§6.1): if a site stops announcing, where
    does its traffic land, and does any surviving site overload?
    """

    withdrawn_site: str
    baseline: Dict[str, float]
    after: Dict[str, float]
    scan: ScanResult
    peak_baseline: Dict[str, float] = field(default_factory=dict)
    peak_after: Dict[str, float] = field(default_factory=dict)

    def overloaded_sites(self, capacities: Mapping[str, float]) -> List[str]:
        """Survivors pushed past capacity by this withdrawal.

        Uses the repo's single pinned capacity definition
        (:func:`repro.load.weighting.capacity_violations`): **peak
        hourly** load compared strictly against capacity, with the
        withdrawn site excluded — identical semantics to the playbook
        planner (:mod:`repro.core.playbook`), so a withdrawal that this
        study calls safe is exactly one the planner would rank
        violation-free.
        """
        return capacity_violations(
            self.peak_after, dict(capacities), exclude=(self.withdrawn_site,)
        )

    def overload_factor(self, site_code: str) -> float:
        """Load multiple at ``site_code`` after the withdrawal.

        A **daily**-load ratio: useful for "how many times its normal
        traffic does the survivor now carry", not a capacity check —
        capacity questions go through :meth:`overloaded_sites`, which
        compares peak hourly loads.
        """
        before = self.baseline.get(site_code, 0.0)
        if before <= 0:
            return float("inf") if self.after.get(site_code, 0.0) > 0 else 1.0
        return self.after.get(site_code, 0.0) / before

    def worst_overload(self) -> Tuple[str, float]:
        """The surviving site with the highest load multiple.

        Sites that carried no load before the withdrawal are excluded
        when any loaded survivor exists — going from zero to a trickle
        is not an overload in the capacity-planning sense.
        """
        survivors = [
            code
            for code in self.baseline
            if code != self.withdrawn_site and code != UNKNOWN
        ]
        loaded = [code for code in survivors if self.baseline[code] > 0]
        candidates = loaded or survivors
        worst = max(candidates, key=self.overload_factor)
        return worst, self.overload_factor(worst)


def _pooled_failure_scan(
    verfploeter: Verfploeter, routing, dataset_id: str, pool
) -> ScanResult:
    """One round-0 scan of a routing state, sharded over ``pool``."""
    import dataclasses

    from repro.core.fastscan import FastScanEngine
    from repro.core.sharding import run_sharded_series

    engine = FastScanEngine(verfploeter, routing)
    scan = run_sharded_series(
        engine, rounds=1, pool=pool, dataset_prefix=dataset_id
    )[0]
    return dataclasses.replace(scan, dataset_id=dataset_id)


def site_failure_study(
    verfploeter: Verfploeter,
    estimate: LoadEstimate,
    sites: Optional[Sequence[str]] = None,
    cache: Optional[RoutingCache] = None,
    parallel: int = 1,
    pool=None,
) -> List[SiteFailureResult]:
    """Withdraw each site in turn and predict the load redistribution.

    For every site: announce the service without it, measure the new
    catchment with Verfploeter, weight by historical load, and compare
    per-site daily load against the all-sites baseline.  Each
    withdrawal's routing is a delta against the all-sites baseline.

    With an open :class:`repro.core.pool.ShardPool` as ``pool``, every
    withdrawal's scan and load join fan over the pool's warm workers
    (round 0 per routing state through the vectorised engine, so
    per-scan values match ``FastScanEngine.run_scan(0)`` rather than
    the scalar path's per-withdrawal round ids).
    """
    service = verfploeter.service
    internet = verfploeter.internet
    observer = verfploeter.observer
    routing_cache = cache if cache is not None else default_routing_cache()
    with observer.tracer.span("experiment.site_failure"):
        baseline_routing = routing_cache.get_or_compute(
            internet, service.default_policy()
        )
        if pool is not None:
            from repro.core.sharding import sharded_weight_catchment

            baseline_scan = _pooled_failure_scan(
                verfploeter, baseline_routing, "failure-baseline", pool
            )
            baseline_load = sharded_weight_catchment(
                baseline_scan.catchment, estimate, pool=pool, observer=observer
            )
        else:
            baseline_scan = verfploeter.run_scan(
                routing=baseline_routing, dataset_id="failure-baseline",
                wire_level=False,
            )
            baseline_load = weight_catchment(
                baseline_scan.catchment, estimate, observer=observer
            )
        baseline = {
            code: baseline_load.daily_of(code)
            for code in (*service.site_codes, UNKNOWN)
        }
        peak_baseline = {
            code: baseline_load.peak_of(code) for code in service.site_codes
        }
        study_sites = list(sites or service.site_codes)

        def withdraw_site(index: int) -> SiteFailureResult:
            site_code = study_sites[index]
            with observer.tracer.span("failure.withdrawal", site=site_code):
                policy = service.policy(withdrawn=[site_code])
                routing = routing_cache.get_or_compute(internet, policy)
                if pool is not None:
                    from repro.core.sharding import sharded_weight_catchment

                    scan = _pooled_failure_scan(
                        verfploeter, routing, f"failure-{site_code}", pool
                    )
                    after_load = sharded_weight_catchment(
                        scan.catchment, estimate, pool=pool, observer=observer
                    )
                else:
                    scan = verfploeter.run_scan(
                        routing=routing,
                        round_id=100 + index,
                        dataset_id=f"failure-{site_code}",
                        wire_level=False,
                    )
                    after_load = weight_catchment(
                        scan.catchment, estimate, observer=observer
                    )
            after = {
                code: after_load.daily_of(code)
                for code in (*service.site_codes, UNKNOWN)
            }
            peak_after = {
                code: after_load.peak_of(code)
                for code in service.site_codes
            }
            return SiteFailureResult(
                withdrawn_site=site_code,
                baseline=baseline,
                after=after,
                scan=scan,
                peak_baseline=peak_baseline,
                peak_after=peak_after,
            )

        return _run_indexed(withdraw_site, len(study_sites), parallel)


@dataclass(frozen=True)
class DecayPoint:
    """Prediction error after ``era`` units of routing/load drift."""

    era: int
    predicted: Dict[str, float]
    actual: Dict[str, float]

    def max_error(self) -> float:
        """Worst per-site absolute error at this age."""
        return max(
            abs(self.predicted.get(code, 0.0) - self.actual.get(code, 0.0))
            for code in self.predicted
        )


def prediction_decay_study(
    verfploeter: Verfploeter,
    day_load_builder,
    eras: Sequence[int] = (0, 1, 2, 3),
    cache: Optional[RoutingCache] = None,
) -> List[DecayPoint]:
    """How fast do Verfploeter load predictions go stale (paper §5.5)?

    A single prediction is made from era-0 data (catchment scan plus
    historical load); each later era re-rolls a fraction of routing
    adjacencies and drifts the workload, and the prediction is compared
    against that era's actual per-site load.  The paper observes the
    April prediction (76.2%) was notably worse than the same-day one
    (81.6% vs 81.4% measured); this study generalises that to a curve.

    ``day_load_builder(era)`` must return the era's
    :class:`~repro.traffic.logs.DayLoad`.
    """
    from repro.load.prediction import measured_site_load

    service = verfploeter.service
    observer = verfploeter.observer
    routing_cache = cache if cache is not None else default_routing_cache()
    with observer.tracer.span(
        "experiment.prediction_decay", eras=len(eras)
    ):
        base_policy = service.default_policy()
        base_routing = routing_cache.get_or_compute(
            verfploeter.internet, base_policy, config=RoutingConfig(era=eras[0])
        )
        base_scan = verfploeter.run_scan(
            routing=base_routing, dataset_id="decay-base", wire_level=False
        )
        base_estimate = LoadEstimate(day_load_builder(eras[0]))
        prediction = weight_catchment(
            base_scan.catchment, base_estimate, observer=observer
        )
        predicted = prediction.fractions()

        points: List[DecayPoint] = []
        for era in eras:
            # Per-era RoutingConfig keys differ, so eras never delta into
            # each other — but the first era is a cache hit (it is the
            # prediction baseline computed above).
            era_routing = routing_cache.get_or_compute(
                verfploeter.internet, base_policy, config=RoutingConfig(era=era)
            )
            era_estimate = LoadEstimate(day_load_builder(era))
            actual = measured_site_load(era_routing, era_estimate).fractions()
            points.append(
                DecayPoint(era=era, predicted=predicted, actual=actual)
            )
        return points


@dataclass(frozen=True)
class AttackAbsorption:
    """How a DDoS from a given attacker population lands on the sites.

    The paper's DDoS motivation (§1, §6.1 and the Nov-2015 root event
    study [33]): anycast "absorbs" attacks by splitting them across
    catchments, so matching attack share to per-site capacity is the
    defensive question.  ``share`` is each site's fraction of attacker
    blocks; ``unmapped`` attackers are outside all catchments.
    """

    share: Dict[str, float]
    attacker_blocks: int
    unmapped: int

    def hottest_site(self) -> Tuple[str, float]:
        """The site absorbing the largest attack share."""
        site = max(self.share, key=self.share.get)
        return site, self.share[site]


def attack_absorption(
    routing: "RoutingOutcome",
    attacker_blocks: Sequence[int],
    round_id: Optional[int] = None,
) -> AttackAbsorption:
    """Split an attacker population over the current catchments.

    ``attacker_blocks`` is the set of /24s sourcing attack traffic
    (e.g. a botnet sample or one country's blocks); per-block volume is
    treated as uniform, matching how operators reason about spoofless
    volumetric attacks at block granularity.
    """
    counts: Dict[str, int] = {code: 0 for code in routing.policy.site_codes}
    unmapped = 0
    for block in attacker_blocks:
        site = routing.site_of_block(block, round_id)
        if site is None:
            unmapped += 1
        else:
            counts[site] += 1
    mapped = sum(counts.values())
    share = {
        code: (count / mapped if mapped else 0.0)
        for code, count in counts.items()
    }
    return AttackAbsorption(
        share=share,
        attacker_blocks=len(attacker_blocks),
        unmapped=unmapped,
    )
