"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or prefix was malformed or out of range."""


class PrefixLookupError(ReproError, KeyError):
    """A prefix/address lookup found no covering entry.

    Subclasses :class:`KeyError` so callers treating prefix sets as
    mappings keep working.
    """


class BlockLookupError(ReproError, KeyError):
    """A block key was absent from a columnar block mapping.

    Subclasses :class:`KeyError` so callers using the ``Mapping``
    protocol (``.get``, ``[]`` with ``try``/``except KeyError``) keep
    dict semantics.
    """


class TopologyError(ReproError):
    """The synthetic topology is inconsistent or a lookup failed."""


class RoutingError(ReproError):
    """BGP propagation failed or produced an inconsistent RIB."""


class MeasurementError(ReproError):
    """A probing run or collection step was misconfigured."""


class PacketError(ReproError, ValueError):
    """A packet could not be encoded or decoded."""


class DNSError(ReproError, ValueError):
    """A DNS message could not be encoded or decoded."""


class DatasetError(ReproError):
    """A dataset (scan or load trace) is missing, empty, or inconsistent."""


class ConfigurationError(ReproError, ValueError):
    """A scenario or component was configured with invalid parameters."""


class ServiceError(ReproError):
    """The always-on mapping service was misused or is in a bad state."""


class HttpError(ServiceError):
    """A request the JSON API must answer with a structured error body.

    Handlers raise this to short-circuit into a 4xx/5xx JSON response;
    the WSGI layer renders ``{"error": {"status", "code", "message"}}``.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.message = message


class PoolError(ReproError):
    """A shard pool was used after shutdown or its workers died.

    Raised instead of the executor's own ``RuntimeError``/
    ``BrokenProcessPool`` so callers fanning work over a
    :class:`repro.core.pool.ShardPool` get a clean library error (never
    a hang) when the pool is shut down mid-use.
    """


class EquivalenceError(ReproError, AssertionError):
    """Two results that must match bit for bit do not.

    Raised by the sharding equivalence helpers; subclasses
    ``AssertionError`` so test harnesses report it as a failed
    assertion rather than an error.
    """
