"""Counters, gauges, and histograms for the scan pipeline.

A :class:`MetricsRegistry` is a flat, thread-safe namespace of metrics
keyed by name plus optional labels (``counter("cleaning.dropped",
rule="late")``).  Instrumented code asks the registry for a metric on
every use — creation is idempotent — so call sites stay one line.

Everything renders deterministically: ``to_dict``/``to_json`` sort by
full metric name, and label sets are canonicalised by key, so two
same-seed runs emit byte-identical documents.  The no-op
:class:`NullMetrics` twin keeps disabled instrumentation at the cost of
a single method call.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-ish scale; callers
#: measuring counts pass their own).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def _full_name(name: str, labels: Dict[str, object]) -> str:
    """Canonical registry key: ``name{k=v,...}`` with sorted label keys."""
    if not labels:
        return name
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{rendered}}}"


class Counter:
    """Monotonically increasing count.

    ``inc`` is locked: the always-on service updates counters from the
    ingest thread and request-handler threads concurrently, and a bare
    float ``+=`` is a read-modify-write race under free threading.
    """

    __slots__ = ("name", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self.value += amount

    def snapshot(self) -> object:
        """JSON-ready value (int when whole, float otherwise)."""
        whole = int(self.value)
        return whole if whole == self.value else self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def snapshot(self) -> object:
        """JSON-ready value."""
        return self.value


class Histogram:
    """Cumulative-bucket histogram with a running sum and count."""

    __slots__ = ("name", "buckets", "counts", "total", "count", "_lock")

    kind = "histogram"

    def __init__(self, name: str, buckets: Optional[Tuple[float, ...]] = None) -> None:
        resolved = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not resolved or list(resolved) != sorted(resolved):
            raise ConfigurationError(
                "histogram buckets must be a non-empty ascending sequence"
            )
        self.name = name
        self.buckets = resolved
        self.counts = [0] * (len(resolved) + 1)  # trailing +inf bucket
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (locked: sum/count/bucket move together)."""
        with self._lock:
            self.total += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary: count, sum, and per-bucket tallies."""
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {
                **{str(bound): self.counts[i] for i, bound in enumerate(self.buckets)},
                "+inf": self.counts[-1],
            },
        }


class MetricsRegistry:
    """Thread-safe, deterministic namespace of counters/gauges/histograms."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(self, factory, name: str, labels: Dict[str, object]):
        key = _full_name(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(key)
                self._metrics[key] = metric
            elif not isinstance(metric, factory):
                raise ConfigurationError(
                    f"metric {key!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``name`` + ``labels`` (created on first use)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``name`` + ``labels`` (created on first use)."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> Histogram:
        """The histogram for ``name`` + ``labels`` (created on first use)."""
        key = _full_name(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Histogram(key, buckets)
                self._metrics[key] = metric
            elif not isinstance(metric, Histogram):
                raise ConfigurationError(
                    f"metric {key!r} already registered as {metric.kind}"
                )
            return metric

    def value_of(self, name: str, **labels: object) -> object:
        """Snapshot of one metric's value (0 for a never-touched name)."""
        metric = self._metrics.get(_full_name(name, labels))
        if metric is None:
            return 0
        return metric.snapshot()

    def to_dict(self, meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """JSON-ready document grouped by metric kind, sorted by name."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        with self._lock:
            for key in sorted(self._metrics):
                metric = self._metrics[key]
                bucket = {
                    "counter": counters,
                    "gauge": gauges,
                    "histogram": histograms,
                }[metric.kind]
                bucket[key] = metric.snapshot()
        document: Dict[str, object] = {"version": 1}
        if meta is not None:
            document["meta"] = meta
        document["counters"] = counters
        document["gauges"] = gauges
        document["histograms"] = histograms
        return document

    def to_json(self, meta: Optional[Dict[str, object]] = None) -> str:
        """Stable JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(meta=meta), indent=2)

    def render_text(self, title: str = "metrics") -> str:
        """Aligned two-column table of every metric, sorted by name."""
        document = self.to_dict()
        rows: List[Tuple[str, str]] = []
        for kind in ("counters", "gauges", "histograms"):
            for key, value in document[kind].items():  # already sorted
                if kind == "histograms":
                    rendered = (
                        f"count={value['count']} sum={value['sum']:.4g}"
                    )
                elif isinstance(value, float):
                    rendered = f"{value:.4f}".rstrip("0").rstrip(".")
                else:
                    rendered = str(value)
                rows.append((key, rendered))
        if not rows:
            return f"{title}: (empty)"
        name_width = max(len(name) for name, _ in rows)
        lines = [f"{title}:"]
        lines.extend(
            f"  {name.ljust(name_width)}  {rendered}" for name, rendered in rows
        )
        return "\n".join(lines)


class _NullMetric:
    """Shared no-op metric accepting every update method."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        """Discard the increment."""

    def set(self, value: float) -> None:
        """Discard the value."""

    def observe(self, value: float) -> None:
        """Discard the observation."""


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """Registry twin that records nothing (one method call per use)."""

    __slots__ = ()

    def __len__(self) -> int:
        return 0

    def counter(self, name: str, **labels: object) -> _NullMetric:
        """The shared no-op metric."""
        return _NULL_METRIC

    def gauge(self, name: str, **labels: object) -> _NullMetric:
        """The shared no-op metric."""
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> _NullMetric:
        """The shared no-op metric."""
        return _NULL_METRIC

    def value_of(self, name: str, **labels: object) -> object:
        """Always 0."""
        return 0

    def to_dict(self, meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """An empty metrics document."""
        document: Dict[str, object] = {"version": 1}
        if meta is not None:
            document["meta"] = meta
        document["counters"] = {}
        document["gauges"] = {}
        document["histograms"] = {}
        return document

    def to_json(self, meta: Optional[Dict[str, object]] = None) -> str:
        """Stable JSON rendering of the empty document."""
        return json.dumps(self.to_dict(meta=meta), indent=2)

    def render_text(self, title: str = "metrics") -> str:
        """Always the empty-table rendering."""
        return f"{title}: (empty)"
