"""Opt-in profiling hooks for the pipeline's hot paths.

Two complementary modes, both off unless an operator asks:

* **Section timing** — every instrumented hot path (the vectorised
  round evaluation, load weighting, BGP propagation) is wrapped in
  ``observer.profile("name")``; with a :class:`Profiler` attached the
  wrapper accumulates ``time.perf_counter`` elapsed per section, which
  is cheap enough to leave on for whole runs.
* **cProfile sampling** — ``Profiler(cprofile=True)`` additionally
  enables the deterministic function profiler inside each section, so
  ``report()`` shows *which functions* dominate a hot section.

Profiling output is wall-clock by construction and therefore never part
of the deterministic artifacts; it goes to the operator's terminal (the
CLI ``--profile`` flag), not into the trace/metrics JSON.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["SectionTiming", "Profiler"]


@dataclass
class SectionTiming:
    """Accumulated wall-clock time of one instrumented section."""

    calls: int = 0
    seconds: float = 0.0


class _SectionContext:
    """Context manager timing one entry of one section."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_SectionContext":
        if self._profiler._cprofile is not None:
            self._profiler._cprofile.enable()
        self._start = self._profiler._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = self._profiler._clock() - self._start
        if self._profiler._cprofile is not None:
            self._profiler._cprofile.disable()
        timing = self._profiler._timings.setdefault(self._name, SectionTiming())
        timing.calls += 1
        timing.seconds += elapsed
        return False


class Profiler:
    """Accumulates per-section wall time, optionally under cProfile.

    ``clock`` is injectable for tests (defaults to
    ``time.perf_counter``, which reprolint permits: it measures
    *elapsed* time and never enters deterministic artifacts).
    """

    def __init__(
        self,
        cprofile: bool = False,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self._timings: Dict[str, SectionTiming] = {}
        self._cprofile = cProfile.Profile() if cprofile else None

    def section(self, name: str) -> _SectionContext:
        """Context manager accumulating elapsed time under ``name``."""
        return _SectionContext(self, name)

    def timings(self) -> Dict[str, SectionTiming]:
        """Per-section accumulated timings (live view, do not mutate)."""
        return self._timings

    def report(self, limit: int = 15) -> str:
        """Human-readable summary: section table plus cProfile top-N."""
        lines: List[str] = ["profile (wall clock, opt-in):"]
        if not self._timings:
            lines.append("  (no instrumented sections ran)")
        else:
            width = max(len(name) for name in self._timings)
            for name in sorted(
                self._timings,
                key=lambda key: -self._timings[key].seconds,
            ):
                timing = self._timings[name]
                lines.append(
                    f"  {name.ljust(width)}  {timing.seconds:10.4f} s"
                    f"  ({timing.calls} calls)"
                )
        if self._cprofile is not None:
            buffer = io.StringIO()
            stats = pstats.Stats(self._cprofile, stream=buffer)
            stats.sort_stats("cumulative").print_stats(limit)
            lines.append(buffer.getvalue().rstrip())
        return "\n".join(lines)
