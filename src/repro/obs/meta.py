"""The shared run-metadata block and its fingerprint.

Every observability artifact (metrics JSON, trace JSON, the report
generator's sidecar files) and every ``BENCH_*.json`` perf baseline
embeds the same ``meta`` block — scenario, scale, seed, and a stable
fingerprint hashed from those identity fields — so traces, metrics,
and benchmark timings taken from the same seeded run are joinable
offline by fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

__all__ = ["run_metadata", "metadata_fingerprint"]


def metadata_fingerprint(identity: Dict[str, object]) -> str:
    """Stable 16-hex-digit digest of a metadata identity mapping.

    Canonicalises with sorted keys before hashing, so two blocks built
    from the same fields in different orders share a fingerprint.
    """
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


def run_metadata(
    scenario: Optional[str] = None,
    scale: Optional[str] = None,
    seed: Optional[int] = None,
    **extra: object,
) -> Dict[str, object]:
    """The metadata block identifying one seeded run.

    ``extra`` fields (``blocks``, ``rounds``, ...) describe the run and
    are embedded but excluded from the fingerprint: the fingerprint
    keys on run *identity* (scenario, scale, seed), which is what two
    artifacts of the same run agree on regardless of which phases each
    one recorded.
    """
    identity: Dict[str, object] = {
        "scenario": scenario,
        "scale": scale,
        "seed": seed,
    }
    block: Dict[str, object] = dict(identity)
    for key in sorted(extra):
        block[key] = extra[key]
    block["fingerprint"] = metadata_fingerprint(identity)
    return block
