"""Observability for the scan pipeline: tracing, metrics, profiling.

The pipeline (hitlist build, probe scheduling, per-round scans, BGP
propagation and cache resolution, reply cleaning, catchment mapping,
load weighting) is instrumented through an :class:`Observer` — a bundle
of a :class:`~repro.obs.trace.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry`, and an optional
:class:`~repro.obs.profile.Profiler`.  Every instrumented constructor
takes ``observer=None`` and defaults to the shared no-op
:data:`NULL_OBSERVER`, whose per-call cost is a single method call
(benchmarked in ``benchmarks/bench_extension_observability.py``).

Enable collection with::

    from repro.obs import Observer

    obs = Observer.collecting()
    vp = Verfploeter(scenario.internet, scenario.service, observer=obs)
    vp.run_scan()
    print(obs.metrics.render_text())
    print(obs.tracer.to_json())

Artifacts are deterministic given a seed: span timestamps come from the
tracer's injected monotonic clock (a :class:`~repro.obs.trace.TickClock`
by default), never from the wall clock, so two same-seed runs emit
byte-identical trace and metrics JSON.  See ``docs/observability.md``
for the span/metric reference and what a healthy run looks like.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.meta import metadata_fingerprint, run_metadata
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.profile import Profiler, SectionTiming
from repro.obs.trace import NULL_SPAN, NullTracer, Span, TickClock, Tracer

__all__ = [
    "Observer",
    "NULL_OBSERVER",
    "Tracer",
    "NullTracer",
    "Span",
    "TickClock",
    "NULL_SPAN",
    "MetricsRegistry",
    "NullMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "Profiler",
    "SectionTiming",
    "run_metadata",
    "metadata_fingerprint",
]


class Observer:
    """Tracer + metrics + optional profiler, threaded through the pipeline.

    ``enabled`` lets instrumentation sites skip *computing* expensive
    attributes (e.g. per-site catchment fractions) when nothing
    listens; the tracer/metrics objects themselves are already no-ops
    in that case.
    """

    __slots__ = ("tracer", "metrics", "profiler", "enabled")

    def __init__(
        self,
        tracer=None,
        metrics=None,
        profiler: Optional[Profiler] = None,
        enabled: bool = True,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler
        self.enabled = enabled

    @classmethod
    def collecting(
        cls,
        clock: Optional[Callable[[], float]] = None,
        profile: bool = False,
        cprofile: bool = False,
    ) -> "Observer":
        """A live observer: fresh tracer + registry, profiler on request.

        ``clock`` overrides the tracer's deterministic tick clock (pass
        ``time.perf_counter`` for wall-clock span durations, at the
        cost of run-to-run artifact identity).
        """
        profiler = (
            Profiler(cprofile=cprofile) if (profile or cprofile) else None
        )
        return cls(tracer=Tracer(clock=clock), metrics=MetricsRegistry(),
                   profiler=profiler)

    @classmethod
    def null(cls) -> "Observer":
        """The shared no-op observer (the default everywhere)."""
        return NULL_OBSERVER

    def profile(self, name: str):
        """Profiling context for a hot section (no-op without a profiler)."""
        if self.profiler is None:
            return NULL_SPAN
        return self.profiler.section(name)


#: Shared disabled observer: null tracer, null metrics, no profiler.
NULL_OBSERVER = Observer(
    tracer=NullTracer(), metrics=NullMetrics(), profiler=None, enabled=False
)
