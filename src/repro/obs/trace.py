"""Nested, deterministic tracing spans for the scan pipeline.

A :class:`Tracer` records a tree of named :class:`Span` objects around
the pipeline phases (hitlist build, probe scheduling, per-round scans,
BGP propagation, cleaning, load weighting).  Timestamps come from an
injected monotonic clock; the default :class:`TickClock` advances one
tick per reading, so the emitted trace of a seeded run is bit-identical
across reruns — tests pin trace *shape* without depending on wall
time.  Operators who want wall-clock durations inject
``time.perf_counter`` instead.

The tracer keeps one span stack per thread: spans opened on a worker
thread (the experiment drivers' opt-in ``parallel=`` fan-out) become
additional roots in completion order.  Deterministic artifacts
therefore come from sequential runs, which is what the CLI and the
report generator do.
"""

from __future__ import annotations

import json
import threading
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["TickClock", "Span", "Tracer", "NullTracer", "NULL_SPAN"]


class TickClock:
    """Deterministic monotonic clock: every reading advances one step.

    Spans timed with a ``TickClock`` measure *events*, not seconds: a
    span's duration is the number of clock readings taken while it was
    open.  That is exactly what makes seeded traces reproducible.
    """

    __slots__ = ("_now", "_step")

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self._now = start
        self._step = step

    def __call__(self) -> float:
        """Read the clock (and advance it by one step)."""
        value = self._now
        self._now += self._step
        return value


class Span:
    """One traced operation: name, start/end ticks, attributes, children."""

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(self, name: str, **attributes: object) -> None:
        self.name = name
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = dict(attributes)
        self.children: List["Span"] = []

    def set(self, **attributes: object) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> float:
        """Clock units between start and end (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first in record order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable key order, nested children)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": {
                key: self.attributes[key] for key in sorted(self.attributes)
            },
            "children": [child.to_dict() for child in self.children],
        }


class _ActiveSpan:
    """Context manager that opens/closes one span on its tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._open(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Records a deterministic tree of spans around pipeline phases.

    ``clock`` is any zero-argument callable returning a float; it is
    read once when a span opens and once when it closes.  The default
    is a fresh :class:`TickClock`.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else TickClock()
        self.roots: List[Span] = []
        self._local = threading.local()
        self._roots_lock = threading.Lock()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attributes: object) -> _ActiveSpan:
        """A context manager recording one span named ``name``.

        Entering yields the :class:`Span` so callers can ``.set()``
        result attributes before it closes.
        """
        return _ActiveSpan(self, Span(name, **attributes))

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.start = self._clock()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._roots_lock:
                self.roots.append(span)
        stack.append(span)

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def find(self, name: str) -> Optional[Span]:
        """First recorded span named ``name`` (depth-first), or None."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def span_names(self) -> List[str]:
        """Every recorded span name, depth-first in record order."""
        return [span.name for root in self.roots for span in root.walk()]

    def to_dict(self, meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """JSON-ready trace document, optionally embedding a metadata block."""
        document: Dict[str, object] = {"version": 1}
        if meta is not None:
            document["meta"] = meta
        document["spans"] = [root.to_dict() for root in self.roots]
        return document

    def to_json(self, meta: Optional[Dict[str, object]] = None) -> str:
        """Stable JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(meta=meta), indent=2)


class _NullSpan:
    """Shared no-op stand-in for a span; also its own context manager."""

    __slots__ = ()

    name = ""
    attributes: Dict[str, object] = {}
    children: tuple = ()
    start = None
    end = None
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: object) -> "_NullSpan":
        """Discard attributes."""
        return self


#: Singleton no-op span, reused by every disabled tracing site.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing; ``span()`` costs one method call."""

    __slots__ = ()

    roots: tuple = ()

    def span(self, name: str, **attributes: object) -> _NullSpan:
        """The shared no-op span."""
        return NULL_SPAN

    def current(self) -> None:
        """Always None (nothing is ever open)."""
        return None

    def find(self, name: str) -> None:
        """Always None (nothing is ever recorded)."""
        return None

    def span_names(self) -> List[str]:
        """Always empty."""
        return []

    def to_dict(self, meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """An empty trace document."""
        document: Dict[str, object] = {"version": 1}
        if meta is not None:
            document["meta"] = meta
        document["spans"] = []
        return document

    def to_json(self, meta: Optional[Dict[str, object]] = None) -> str:
        """Stable JSON rendering of the empty document."""
        return json.dumps(self.to_dict(meta=meta), indent=2)
