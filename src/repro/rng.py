"""Deterministic randomness utilities.

All stochastic behaviour in the library flows from explicit integer seeds
so every experiment is reproducible bit-for-bit.  Components never share a
``random.Random`` instance; instead each derives an independent stream
from a parent seed and a string label, so adding a new consumer never
perturbs existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

_MASK64 = (1 << 64) - 1


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a stable 64-bit child seed from ``parent_seed`` and ``label``.

    Uses BLAKE2b so the mapping is stable across Python versions and
    platforms (unlike ``hash()``).
    """
    digest = hashlib.blake2b(
        label.encode("utf-8"),
        digest_size=8,
        key=parent_seed.to_bytes(8, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little")


def derive_rng(parent_seed: int, label: str) -> random.Random:
    """Return a fresh ``random.Random`` seeded from ``(parent_seed, label)``."""
    return random.Random(derive_seed(parent_seed, label))


def splitmix64(state: int) -> Iterator[int]:
    """Yield an endless stream of 64-bit values from the splitmix64 PRNG.

    Used where we need a tiny, allocation-free generator inside hot loops
    (e.g. per-block responsiveness draws) without the overhead of
    ``random.Random``.
    """
    state &= _MASK64
    while True:
        state = (state + 0x9E3779B97F4A7C15) & _MASK64
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        yield z ^ (z >> 31)


def mix64(value: int) -> int:
    """Stateless 64-bit mixing function (one splitmix64 round).

    Maps any integer to a well-distributed 64-bit value; used for hashing
    (seed, block) pairs into uniform draws without materialising streams.
    """
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def mix64_np(values):
    """Vectorised :func:`mix64` over a numpy uint64 array.

    Bit-for-bit identical to the scalar version (uint64 arithmetic
    wraps exactly like the masked Python ints), so vectorised engines
    reproduce scalar draws exactly.
    """
    import numpy as np

    z = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z += np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _absorb_np(h, components):
    """Fold ``components`` into hash state ``h`` (uniform_unit's chain)."""
    import numpy as np

    for component in components:
        if isinstance(component, int):
            mixed = np.uint64(mix64(component))
        else:
            mixed = mix64_np(np.asarray(component, dtype=np.uint64))
        h = mix64_np(h ^ mixed)
    return h


def hash_prefix_np(seed: int, *components):
    """Hash state of :func:`uniform_unit_np` after absorbing ``components``.

    Lets hot loops precompute the round-invariant part of a draw (seed,
    salt, block array) once and finish each round with
    :func:`uniform_from_prefix_np` — one array pass instead of three.
    """
    import numpy as np

    return _absorb_np(
        mix64_np(np.array(seed & _MASK64, dtype=np.uint64)), components
    )


def uniform_from_prefix_np(prefix, *components):
    """Finish a draw started by :func:`hash_prefix_np`.

    ``uniform_from_prefix_np(hash_prefix_np(seed, a, b), c)`` is
    bit-identical to ``uniform_unit_np(seed, a, b, c)``.
    """
    import numpy as np

    h = _absorb_np(prefix, components)
    return (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def uniform_unit_np(seed: int, *components):
    """Vectorised :func:`uniform_unit`.

    ``components`` are ints or equal-length integer arrays; scalars are
    broadcast.  Returns a float64 array in [0, 1) whose entries equal
    the scalar ``uniform_unit`` for the same component tuples.
    """
    return uniform_from_prefix_np(hash_prefix_np(seed), *components)


def uniform_unit(seed: int, *components: int) -> float:
    """Return a deterministic float in [0, 1) from a seed and components.

    The same inputs always produce the same value, which lets per-block
    behaviour (responsiveness, duplicate probability, churn) be computed
    on demand rather than stored.
    """
    h = mix64(seed)
    for component in components:
        h = mix64(h ^ mix64(component))
    return (h >> 11) / float(1 << 53)
