"""Command-line interface: ``python -m repro <command>``.

Drives the library the way an operator would drive the original
Verfploeter tooling: run a scan, sweep prepending configurations, study
stability, compare coverage against Atlas, plan for site failures, and
suggest new site locations from measured RTTs.  Every command is
deterministic in ``--seed``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.coverage import format_coverage_table
from repro.analysis.flips import flip_table, format_flip_table, format_stability_table
from repro.analysis.maps import catchment_grid, load_grid, render_ascii_map
from repro.analysis.placement import rtt_summary_by_site, suggest_sites
from repro.analysis.prepend import format_prepend_table
from repro.analysis.report import render_table
from repro.bgp.cache import RoutingCache
from repro.core.comparison import compare_coverage
from repro.core.experiments import (
    prepend_sweep,
    run_stability_series,
    site_failure_study,
)
from repro.core.playbook import (
    PlaybookPlanner,
    derive_capacities,
    format_playbook_table,
)
from repro.core.scenarios import SCALES, Scenario, broot_like, cdn_like, nl_like, tangled_like
from repro.core.verfploeter import Verfploeter
from repro.datasets import write_scan
from repro.load.estimator import LoadEstimate
from repro.load.rssac import build_rssac_report
from repro.obs import NULL_OBSERVER, Observer, run_metadata

_SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "broot": broot_like,
    "tangled": tangled_like,
    "nl": nl_like,
    "cdn": cdn_like,
}


def _build_scenario(args: argparse.Namespace) -> Scenario:
    builder = _SCENARIOS[args.scenario]
    kwargs = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return builder(**kwargs)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", choices=sorted(_SCENARIOS), default="broot",
        help="which canonical deployment to build (default: broot)",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="topology size (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's default seed",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write pipeline metrics as JSON to FILE",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the pipeline trace as JSON to FILE",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="time the instrumented hot paths and print a profile",
    )


def _add_sharding(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the block universe into N contiguous shards "
             "(bit-identical to the unsharded run)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="evaluate shards across N worker processes "
             "(0 runs the shards inline in this process)",
    )


def _observer_for(args: argparse.Namespace) -> Observer:
    """The observer this invocation runs under.

    Tests inject one via ``main(argv, observer=...)``; otherwise any of
    the ``--metrics-out``/``--trace-out``/``--profile`` flags switches
    on a collecting observer, and the default stays the shared no-op.
    """
    injected = getattr(args, "observer", None)
    if injected is not None:
        return injected
    if args.metrics_out or args.trace_out or args.profile:
        return Observer.collecting(profile=args.profile)
    return NULL_OBSERVER


def _emit_observability(
    args: argparse.Namespace, observer: Observer, scenario: Scenario
) -> None:
    """Write the requested metrics/trace artifacts and print the profile.

    Both artifacts embed the shared run-metadata block (scenario, scale,
    seed, fingerprint) so they are joinable with each other and with the
    ``BENCH_*.json`` baselines offline.
    """
    if observer is NULL_OBSERVER or not observer.enabled:
        return
    meta = run_metadata(
        scenario=args.scenario,
        scale=args.scale,
        seed=scenario.internet.seed,
    )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as stream:
            stream.write(observer.metrics.to_json(meta=meta) + "\n")
        print(f"wrote metrics to {args.metrics_out}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as stream:
            stream.write(observer.tracer.to_json(meta=meta) + "\n")
        print(f"wrote trace to {args.trace_out}")
    if observer.profiler is not None:
        print(observer.profiler.report())


def _cmd_scan(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    observer = _observer_for(args)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    if args.shards is not None or args.workers is not None:
        # Sharded path: the vectorised engine fanned over the block
        # universe — bit-identical catchments/RTTs/stats to the scalar
        # run below, just evaluated shard by shard (optionally across
        # worker processes).  One ShardPool spans the whole invocation,
        # so its workers attach the memmapped universe once.
        from repro.core.fastscan import FastScanEngine
        from repro.core.pool import ShardPool
        from repro.core.sharding import resolve_fanout, run_sharded_series

        engine = FastScanEngine(verfploeter)
        shards, workers = resolve_fanout(args.shards, args.workers)
        with ShardPool(workers=workers, observer=observer) as pool:
            scan = run_sharded_series(
                engine,
                rounds=1,
                shards=shards,
                dataset_prefix="cli-scan",
                pool=pool,
            )[0]
        # The series namer appends "-r000"; a single CLI round keeps the
        # plain scan's dataset id so the artifacts diff byte-identical.
        scan = dataclasses.replace(scan, dataset_id="cli-scan")
    else:
        scan = verfploeter.run_scan(dataset_id="cli-scan", wire_level=False)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            write_scan(scan, stream)
        print(f"wrote dataset to {args.output}")
    stats = scan.stats
    print(f"scenario {scenario.name} ({scenario.scale}): "
          f"{scenario.internet.summary()}")
    print(f"probed {stats.probes_sent} /24s; kept {stats.kept} replies "
          f"(removed {stats.duplicates} dup / {stats.unsolicited} unsolicited "
          f"/ {stats.late} late)")
    rows = [
        (site, count, f"{fraction:.1%}")
        for (site, count), fraction in zip(
            sorted(scan.catchment.counts().items()),
            (scan.catchment.fractions()[site]
             for site in sorted(scan.catchment.counts())),
        )
    ]
    print(render_table(["site", "/24s", "share"], rows, title="catchment"))
    if args.map:
        grid = catchment_grid(scan.catchment, scenario.internet.geodb, 4.0)
        print(render_ascii_map(grid))
    if args.rtt:
        summary = rtt_summary_by_site(scan)
        print(render_table(
            ["site", "blocks", "median RTT (ms)"],
            [(site, blocks, f"{median:.0f}")
             for site, (blocks, median) in sorted(summary.items())],
            title="latency",
        ))
    if observer.enabled:
        print(observer.metrics.render_text(title="pipeline metrics"))
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    observer = _observer_for(args)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    # A fresh per-invocation cache keeps repeated same-seed invocations
    # byte-identical in their hit/miss counters (the process-wide
    # default cache would serve the second invocation from memory).
    cache = RoutingCache(observer=observer)
    site = args.site or scenario.service.site_codes[0]
    if args.scenario != "broot":
        configs = [("equal", {})] + [
            (f"+{n} {site}", {site: n}) for n in range(1, 4)
        ]
        sweep = prepend_sweep(
            verfploeter, scenario.atlas, configs=configs, cache=cache
        )
    else:
        sweep = prepend_sweep(verfploeter, scenario.atlas, cache=cache)
        site = "LAX"
    print(format_prepend_table(sweep, site))
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_stability(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    observer = _observer_for(args)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    if args.shards is not None or args.workers is not None:
        from repro.core.pool import ShardPool
        from repro.core.sharding import resolve_fanout

        shards, workers = resolve_fanout(args.shards, args.workers)
        with ShardPool(workers=workers, observer=observer) as pool:
            series = run_stability_series(
                verfploeter, rounds=args.rounds, interval_seconds=900.0,
                cache=RoutingCache(observer=observer),
                shards=shards, pool=pool,
            )
    else:
        series = run_stability_series(
            verfploeter, rounds=args.rounds, interval_seconds=900.0,
            cache=RoutingCache(observer=observer),
        )
    print(format_stability_table(series, every=max(1, args.rounds // 8)))
    print()
    print(format_flip_table(flip_table(series, scenario.internet)))
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    observer = _observer_for(args)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    routing = verfploeter.routing_for()
    scan = verfploeter.run_scan(routing=routing, wire_level=False)
    measurement = scenario.atlas.measure(routing, scenario.service)
    print(format_coverage_table(
        compare_coverage(measurement, scan, scenario.internet)
    ))
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_loadmap(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    observer = _observer_for(args)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    scan = verfploeter.run_scan(dataset_id="cli-loadmap", wire_level=False)
    estimate = LoadEstimate(scenario.day_load("cli-day"))
    grid = load_grid(scan.catchment, estimate, scenario.internet.geodb, 4.0)
    print(render_ascii_map(grid))
    totals = grid.site_totals()
    print(render_table(
        ["site", "load share"],
        [(site, f"{value / sum(totals.values()):.1%}")
         for site, value in sorted(totals.items())],
    ))
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_failure(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    observer = _observer_for(args)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    estimate = LoadEstimate(scenario.day_load("cli-day"))
    sites = [args.site] if args.site else None
    results = site_failure_study(
        verfploeter, estimate, sites=sites,
        cache=RoutingCache(observer=observer),
    )
    rows = []
    for result in results:
        worst_site, factor = result.worst_overload()
        rows.append(
            (result.withdrawn_site, worst_site,
             f"{factor:.2f}x" if factor != float("inf") else "new")
        )
    print(render_table(
        ["withdrawn site", "worst-hit survivor", "load multiple"],
        rows,
        title="site-failure what-if (load-weighted)",
    ))
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_playbook(args: argparse.Namespace) -> int:
    from repro.traffic.attack import AttackProfile, compose_attack
    from repro.load.weighting import weight_catchment

    scenario = _build_scenario(args)
    observer = _observer_for(args)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    # Fresh per-invocation cache (same reasoning as the sweep): two
    # same-seed invocations emit byte-identical artifacts AND metrics.
    planner = PlaybookPlanner(
        verfploeter, cache=RoutingCache(maxsize=256, observer=observer)
    )
    pool = None
    try:
        if args.workers is not None:
            from repro.core.pool import ShardPool

            pool = ShardPool(workers=args.workers, observer=observer)
        baseline_policy = scenario.service.default_policy()
        baseline_catchment = planner.catchment_for(baseline_policy, pool=pool)
        day = scenario.day_load("playbook-day")
        baseline_estimate = LoadEstimate(day)
        if pool is not None:
            from repro.core.sharding import sharded_weight_catchment

            baseline_load = sharded_weight_catchment(
                baseline_catchment, baseline_estimate, pool=pool,
                observer=observer,
            )
        else:
            baseline_load = weight_catchment(
                baseline_catchment, baseline_estimate, observer=observer
            )
        site_codes = scenario.service.site_codes
        attacked = args.attack_site or max(
            sorted(site_codes), key=baseline_load.daily_of
        )
        profile = AttackProfile(
            target_site=attacked,
            intensity=args.intensity,
            hotspot_fraction=args.hotspot_fraction,
            start_hour=args.start_hour,
            duration_hours=args.duration_hours,
        )
        attack_day, attackers = compose_attack(
            day, baseline_catchment, profile, scenario.internet.seed
        )
        capacities = derive_capacities(
            baseline_load, site_codes, headroom=args.headroom
        )
        playbook = planner.plan(
            LoadEstimate(attack_day),
            attacked,
            capacities,
            max_prepend=args.max_prepend,
            depth=args.depth,
            parallel=args.parallel,
            pool=pool,
            attack=profile,
            attacker_count=len(attackers),
        )
    finally:
        if pool is not None:
            pool.shutdown()
    attack_estimate = LoadEstimate(attack_day)
    print(
        f"attack on {attacked}: {len(attackers)} attacker /24s, "
        f"{profile.intensity:g}x peak-hour rate for "
        f"{profile.duration_hours}h from {profile.start_hour:02d}:00 UTC "
        f"(day peaks at {attack_estimate.peak_qph() / baseline_estimate.peak_qph():.1f}x normal)"
    )
    print(format_playbook_table(playbook, top=args.top))
    rec = playbook.recommendation
    verdict = (
        "keeps every announcing site under capacity"
        if rec.clears_violations
        else "best effort - violations remain"
    )
    print(
        f"recommended config: {rec.label} ({rec.config_id}); "
        f"absorber {rec.absorber}; {verdict}"
    )
    if args.out:
        meta = run_metadata(
            scenario=args.scenario,
            scale=args.scale,
            seed=scenario.internet.seed,
        )
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(playbook.to_json(meta=meta) + "\n")
        print(f"wrote playbook artifact to {args.out}")
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    observer = _observer_for(args)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    scan = verfploeter.run_scan(dataset_id="cli-suggest", wire_level=False)
    estimate = LoadEstimate(scenario.day_load("cli-day"))
    suggestions = suggest_sites(
        scan, scenario.internet.geodb, count=args.count,
        rtt_threshold_ms=args.threshold, estimate=estimate,
    )
    if not suggestions:
        print("no underserved regions above the RTT threshold")
        return 0
    print(render_table(
        ["lat", "lon", "blocks", "median RTT (ms)"],
        [(f"{s.latitude:+.0f}", f"{s.longitude:+.0f}",
          s.affected_blocks, f"{s.median_rtt_ms:.0f}")
         for s in suggestions],
        title="suggested new site locations (from Verfploeter RTTs)",
    ))
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.service import MappingService, MeasurementState, replay_feed

    scenario = _build_scenario(args)
    observer = _observer_for(args)
    if observer is NULL_OBSERVER:
        # The daemon's /v1/metrics endpoint is part of the API surface;
        # serve it populated even when no artifact flags were passed.
        observer = Observer.collecting()
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    routing = verfploeter.routing_for()
    estimate = LoadEstimate(scenario.day_load("serve-day"))
    universe = np.array(verfploeter.hitlist.blocks, dtype=np.uint64)
    pool = None
    weighter = None
    if args.workers is not None:
        # Daemon-lifetime pool: every round-end load join fans over the
        # same warm workers (bit-identical to the in-process join).
        from repro.core.pool import ShardPool
        from repro.core.sharding import sharded_weight_catchment

        pool = ShardPool(workers=args.workers, observer=observer)

        def weighter(catchment, estimate, hourly=True, observer=None):
            return sharded_weight_catchment(
                catchment, estimate, hourly=hourly, observer=observer,
                pool=pool,
            )

    state = MeasurementState(
        routing.policy.site_codes,
        universe,
        estimate,
        window_rounds=args.window,
        ring_size=args.ring,
        cleaning=verfploeter.cleaning,
        observer=observer,
        weighter=weighter,
    )
    feed = replay_feed(
        verfploeter,
        routing=routing,
        rounds=args.rounds,
        interval_seconds=args.interval,
        batch_size=args.batch_size,
        start_round=args.start_round,
    )
    service = MappingService(state, feed, observer=observer)
    host, port = service.serve_http(host=args.host, port=args.port)
    print(f"serving on http://{host}:{port}")
    print("endpoints: /v1/health /v1/catchment/<block> /v1/load "
          "/v1/diff?rounds=N /v1/metrics")
    completed = service.ingest()
    view = state.view
    print(f"ingested {completed} round(s); "
          f"{len(view.catchment) if view.catchment is not None else 0} "
          f"blocks mapped; {view.quarantined_batches} batch(es) quarantined")
    if args.linger_seconds > 0:
        time.sleep(args.linger_seconds)
    service.shutdown()
    if pool is not None:
        pool.shutdown()
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    observer = _observer_for(args)
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    routing = verfploeter.routing_for()
    load = scenario.day_load("cli-report-day")
    report = build_rssac_report(scenario.service.name, load, routing)
    report.write(sys.stdout)
    _emit_observability(args, observer, scenario)
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.reporting import generate_full_report

    scenario = _build_scenario(args)
    observer = _observer_for(args)
    report_path = generate_full_report(
        scenario, Path(args.outdir), stability_rounds=args.rounds,
        observer=observer,
    )
    print(f"wrote {report_path}")
    _emit_observability(args, observer, scenario)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verfploeter reproduction: anycast catchment mapping "
                    "on a synthetic Internet",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    scan = commands.add_parser("scan", help="run one Verfploeter round")
    _add_common(scan)
    _add_sharding(scan)
    scan.add_argument("--map", action="store_true", help="print ASCII map")
    scan.add_argument("--rtt", action="store_true", help="print RTT summary")
    scan.add_argument("--output", default=None,
                      help="also write the scan dataset to this file")
    scan.set_defaults(handler=_cmd_scan)

    sweep = commands.add_parser("sweep", help="AS-path prepending sweep")
    _add_common(sweep)
    sweep.add_argument("--site", default=None, help="site to prepend/track")
    sweep.set_defaults(handler=_cmd_sweep)

    stability = commands.add_parser("stability", help="repeated-round stability study")
    _add_common(stability)
    _add_sharding(stability)
    stability.add_argument("--rounds", type=int, default=16)
    stability.set_defaults(handler=_cmd_stability)

    coverage = commands.add_parser("coverage", help="Atlas vs Verfploeter coverage")
    _add_common(coverage)
    coverage.set_defaults(handler=_cmd_coverage)

    loadmap = commands.add_parser("loadmap", help="load-weighted catchment map")
    _add_common(loadmap)
    loadmap.set_defaults(handler=_cmd_loadmap)

    failure = commands.add_parser("failure", help="site-withdrawal what-ifs")
    _add_common(failure)
    failure.add_argument("--site", default=None, help="only withdraw this site")
    failure.set_defaults(handler=_cmd_failure)

    playbook = commands.add_parser(
        "playbook",
        help="DDoS playbook: ranked mitigation configs for an attacked site",
    )
    _add_common(playbook)
    playbook.add_argument(
        "--attack-site", default=None, metavar="SITE",
        help="the site the attack hotspot targets "
             "(default: the heaviest-loaded site)",
    )
    playbook.add_argument(
        "--intensity", type=float, default=1.0,
        help="attack rate as a multiple of the day's peak-hour rate",
    )
    playbook.add_argument(
        "--hotspot-fraction", type=float, default=0.5,
        help="share of the target catchment's blocks sourcing attack traffic",
    )
    playbook.add_argument(
        "--start-hour", type=int, default=12,
        help="UTC hour the attack window opens",
    )
    playbook.add_argument(
        "--duration-hours", type=int, default=4,
        help="attack window length in hours",
    )
    playbook.add_argument(
        "--max-prepend", type=int, default=3,
        help="deepest AS-path prepend in the config lattice",
    )
    playbook.add_argument(
        "--depth", type=int, choices=(1, 2), default=2,
        help="lattice depth: 1 = attacked-site actions only, "
             "2 = pair each with a second site's prepend",
    )
    playbook.add_argument(
        "--headroom", type=float, default=3.0,
        help="per-site capacity as a multiple of its normal peak hour",
    )
    playbook.add_argument(
        "--top", type=int, default=8,
        help="ranked configs to print (the artifact always has all)",
    )
    playbook.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="evaluate candidates on N threads (byte-identical to serial)",
    )
    playbook.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard scans and load joins over N worker processes "
             "(0 runs the sharded path inline; byte-identical again)",
    )
    playbook.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the ranked playbook artifact as canonical JSON",
    )
    playbook.set_defaults(handler=_cmd_playbook)

    suggest = commands.add_parser("suggest", help="suggest new sites from RTTs")
    _add_common(suggest)
    suggest.add_argument("--count", type=int, default=3)
    suggest.add_argument("--threshold", type=float, default=120.0,
                         help="RTT (ms) above which a block is underserved")
    suggest.set_defaults(handler=_cmd_suggest)

    serve = commands.add_parser(
        "serve", help="always-on mapping service with a JSON query API"
    )
    _add_common(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: loopback)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 binds an ephemeral port, printed)")
    serve.add_argument("--rounds", type=int, default=4,
                       help="measurement rounds to ingest before exiting")
    serve.add_argument("--interval", type=float, default=900.0,
                       help="simulated seconds between rounds")
    serve.add_argument("--batch-size", type=int, default=512,
                       help="replies per streamed batch")
    serve.add_argument("--window", type=int, default=4,
                       help="rounds in the sliding load window")
    serve.add_argument("--ring", type=int, default=8,
                       help="round snapshots kept for /v1/diff")
    serve.add_argument("--start-round", type=int, default=0,
                       help="first measurement id (65535 exercises rollover)")
    serve.add_argument("--linger-seconds", type=float, default=0.0,
                       help="keep serving this long after ingest finishes")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="fan round-end load joins over N worker "
                            "processes held for the daemon's lifetime "
                            "(0 runs the sharded join inline)")
    serve.set_defaults(handler=_cmd_serve)

    report = commands.add_parser(
        "report", help="RSSAC-002-style daily traffic report"
    )
    _add_common(report)
    report.set_defaults(handler=_cmd_report)

    paper = commands.add_parser(
        "paper", help="regenerate the full evaluation into a markdown report"
    )
    _add_common(paper)
    paper.add_argument("--outdir", default="repro-report",
                       help="directory for REPORT.md and datasets")
    paper.add_argument("--rounds", type=int, default=24,
                       help="stability rounds (paper: 96)")
    paper.set_defaults(handler=_cmd_paper)

    return parser


def main(
    argv: Optional[List[str]] = None,
    observer: Optional[Observer] = None,
) -> int:
    """CLI entry point; returns the process exit code.

    ``observer`` lets callers (tests, embedding scripts) supply a
    pre-built :class:`~repro.obs.Observer` and inspect its tracer and
    metrics after the command returns, instead of round-tripping
    through ``--metrics-out``/``--trace-out`` files.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if observer is not None:
        args.observer = observer
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
