"""Windowed incremental load aggregation for the always-on service.

The expensive step of load prediction is the catchment×load join
(:func:`~repro.load.weighting.weight_catchment`); it runs **once per
round** on the columnar path.  A :class:`LoadWindow` then maintains the
"hourly load over the last W rounds" view the service exposes without
ever re-running a join: it keeps the last W per-round
:class:`~repro.load.weighting.SiteLoad` results and sums them oldest to
newest.

Determinism contract: :meth:`LoadWindow.aggregate` is bit-identical to
summing the same W rounds' loads from scratch in round order — float64
addition in a fixed order, never a running total corrected by
subtraction (subtracting the expired round would drift from the batch
recompute).  ``tests/test_service.py`` pins this against a full batch
replay.

(Not marked as a hot path: the re-sum touches W × sites × 24 floats,
bounded by the window configuration, not by the block universe.)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.load.weighting import UNKNOWN, SiteLoad
from repro.traffic.logs import HOURS


class LoadWindow:
    """Sliding window of per-round site loads with a cached aggregate."""

    def __init__(self, site_codes: List[str], window_rounds: int) -> None:
        if window_rounds < 1:
            raise ConfigurationError("window_rounds must be >= 1")
        self._site_codes = list(site_codes)
        self._window_rounds = window_rounds
        self._rounds: Deque[SiteLoad] = deque(maxlen=window_rounds)
        self._aggregate: Optional[SiteLoad] = None

    @property
    def window_rounds(self) -> int:
        """Maximum rounds the window covers."""
        return self._window_rounds

    def __len__(self) -> int:
        return len(self._rounds)

    def push(self, load: SiteLoad) -> None:
        """Add the newest round's load (the oldest falls out when full)."""
        if load.site_codes != self._site_codes:
            raise ConfigurationError(
                "pushed load's site codes differ from the window's"
            )
        self._rounds.append(load)
        self._aggregate = None

    def aggregate(self) -> SiteLoad:
        """Summed load over the window, oldest round first.

        Recomputed lazily after a push by re-summing the (small) cached
        per-round results — the per-round joins themselves are never
        redone.  Fixed summation order keeps the result bit-identical
        to a batch recompute over the same rounds.
        """
        if self._aggregate is None:
            if not self._rounds:
                raise ConfigurationError("load window is empty")
            codes = [*self._site_codes, UNKNOWN]
            daily: Dict[str, float] = {code: 0.0 for code in codes}
            hourly: Dict[str, np.ndarray] = {
                code: np.zeros(HOURS) for code in codes
            }
            for load in self._rounds:  # deque iterates oldest -> newest
                for code in codes:
                    daily[code] += load.daily_of(code)
                    hourly[code] += load.hourly_of(code)
            self._aggregate = SiteLoad(list(self._site_codes), daily, hourly)
        return self._aggregate
