"""Per-block load estimates derived from historical logs."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.traffic.logs import DayLoad, LoadKind


class LoadEstimate:
    """Per-/24 daily load of one kind, derived from a :class:`DayLoad`.

    This is the calibration weight Verfploeter attaches to each block:
    whatever the catchment says about *where* a block goes, the estimate
    says *how much* traffic goes with it.
    """

    def __init__(self, load: DayLoad, kind: str = LoadKind.QUERIES) -> None:
        if kind not in LoadKind.ALL:
            raise DatasetError(f"unknown load kind {kind!r}")
        self.kind = kind
        self.source = load
        self._daily = load.daily_of_kind(kind)
        self._row_of = load.row_of
        self._hourly_matrix: "np.ndarray | None" = None

    def __len__(self) -> int:
        return len(self.source)

    @property
    def blocks(self) -> np.ndarray:
        """Blocks with recorded traffic."""
        return self.source.blocks

    def of_block(self, block: int) -> float:
        """Daily load of ``block`` (0.0 when it sent nothing)."""
        row = self._row_of(block)
        return float(self._daily[row]) if row is not None else 0.0

    def total(self) -> float:
        """Total daily load across all blocks."""
        return float(self._daily.sum())

    def hourly_of_block(self, block: int) -> np.ndarray:
        """Hourly load vector of ``block`` (zeros when absent)."""
        row = self._row_of(block)
        if row is None:
            return np.zeros(self.source.queries.shape[1])
        scale = 1.0
        if self.kind == LoadKind.GOOD_REPLIES:
            scale = float(self.source.good_fraction[row])
        elif self.kind == LoadKind.ALL_REPLIES:
            scale = float(self.source.reply_fraction[row])
        return self.source.queries[row] * scale

    def hourly_matrix(self) -> np.ndarray:
        """Hourly load of every block at once, rows aligned with :attr:`blocks`.

        Row ``r`` equals ``hourly_of_block(blocks[r])`` bit-for-bit: the
        per-kind scale is applied as the same elementwise float64
        multiply the scalar path performs.  The matrix is computed once
        and cached — one estimate typically weights many scan rounds.
        """
        if self._hourly_matrix is None:
            queries = self.source.queries
            if self.kind == LoadKind.GOOD_REPLIES:
                self._hourly_matrix = queries * self.source.good_fraction[:, None]
            elif self.kind == LoadKind.ALL_REPLIES:
                self._hourly_matrix = queries * self.source.reply_fraction[:, None]
            else:
                self._hourly_matrix = queries
        return self._hourly_matrix

    def hourly_totals(self) -> np.ndarray:
        """Total load per UTC hour across all blocks (length-24 vector)."""
        return self.hourly_matrix().sum(axis=0)

    def peak_qph(self) -> float:
        """Peak queries/hour over the day (max of :meth:`hourly_totals`).

        Peak vs mean matters: capacity planning throughout the repo
        compares **peaks** against provisioned capacity
        (:func:`repro.load.weighting.capacity_violations`), because
        diurnal days and volumetric attacks concentrate load into a few
        bins.  :meth:`mean_qph` exists for reporting ratios only — it
        must never be the quantity compared against a capacity.
        """
        return float(self.hourly_totals().max())

    def mean_qph(self) -> float:
        """Mean queries/hour over the day (total / 24).

        Reporting-only companion to :meth:`peak_qph` — see the
        peak-vs-mean note there.
        """
        return self.total() / 24.0

    def heaviest(self, count: int) -> List[Tuple[int, float]]:
        """Heaviest ``count`` blocks as ``(block, daily load)``.

        Ties break toward the lower block id.  ``lexsort`` is a stable
        sort with an explicit secondary key; a plain ``argsort`` on the
        float loads would order tied blocks by numpy's unstable
        quicksort partitioning — a platform-dependent result.
        """
        order = np.lexsort((self.blocks, -self._daily))[:count]
        return [(int(self.blocks[i]), float(self._daily[i])) for i in order]

    def as_dict(self) -> Dict[int, float]:
        """Snapshot mapping block -> daily load."""
        return {
            int(block): float(value)
            for block, value in zip(self.blocks, self._daily)
        }
