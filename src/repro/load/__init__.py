"""Load estimation and calibrated catchment predictions (paper §3.2, §5.4-5.5)."""

from repro.load.estimator import LoadEstimate
from repro.load.prediction import PredictionComparison, compare_prediction
from repro.load.weighting import (
    UNKNOWN,
    SiteLoad,
    capacity_violations,
    weight_catchment,
)
from repro.load.windowed import LoadWindow

__all__ = [
    "LoadWindow",
    "LoadEstimate",
    "SiteLoad",
    "UNKNOWN",
    "weight_catchment",
    "capacity_violations",
    "PredictionComparison",
    "compare_prediction",
]
