"""Building RSSAC-002-style reports from logs and routing.

The report value types (:class:`~repro.traffic.rssac.Rssac002Report`,
:class:`~repro.traffic.rssac.SiteTrafficReport`) live in
:mod:`repro.traffic.rssac`; this module owns the aggregation, which
needs the load estimator and therefore sits in the ``load`` layer.
"""

from __future__ import annotations

from typing import Dict

from repro.bgp.propagation import RoutingOutcome
from repro.load.estimator import LoadEstimate
from repro.load.prediction import measured_site_load
from repro.traffic.logs import DayLoad, LoadKind
from repro.traffic.rssac import Rssac002Report, SiteTrafficReport


def build_rssac_report(
    service_name: str,
    load: DayLoad,
    routing: RoutingOutcome,
) -> Rssac002Report:
    """Aggregate one day of logs into the per-site report.

    Queries and responses are split by the ground-truth catchment of
    each source block (the operator's own logs know where every query
    landed); ``unique_sources`` counts /24 blocks, the aggregation
    level of this whole reproduction.
    """
    queries = LoadEstimate(load, LoadKind.QUERIES)
    responses = LoadEstimate(load, LoadKind.ALL_REPLIES)
    per_site_queries = measured_site_load(routing, queries)
    per_site_responses = measured_site_load(routing, responses)
    site_codes = routing.policy.site_codes

    sources_by_site: Dict[str, int] = {code: 0 for code in site_codes}
    for block in load.blocks:
        site = routing.site_of_block(int(block))
        if site is not None:
            sources_by_site[site] += 1

    sites = [
        SiteTrafficReport(
            site_code=code,
            queries=per_site_queries.daily_of(code),
            responses=per_site_responses.daily_of(code),
            unique_sources=sources_by_site[code],
        )
        for code in site_codes
    ]
    return Rssac002Report(
        service_name=service_name,
        date_label=load.date_label,
        total_queries=queries.total(),
        total_responses=responses.total(),
        unique_sources=len(load),
        sites=sites,
    )
