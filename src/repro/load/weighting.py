"""Combining catchment maps with load estimates (paper §5.4).

Raw block counts over-weight quiet networks and under-weight resolver
farms; weighting each mapped block by its historical load turns a
catchment map into a calibrated per-site load prediction.  Blocks that
send traffic but were not mapped (no ping reply) go to the ``UNK``
bucket — the paper shows their traffic splits like the mapped blocks'
(§5.5), so predictions normalise over known sites.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.anycast.catchment import CatchmentMap
from repro.errors import DatasetError
from repro.load.estimator import LoadEstimate
from repro.traffic.logs import HOURS

UNKNOWN = "UNK"


class SiteLoad:
    """Predicted load per site, daily and hourly, including ``UNK``."""

    def __init__(
        self,
        site_codes: List[str],
        daily: Dict[str, float],
        hourly: Dict[str, np.ndarray],
    ) -> None:
        self.site_codes = site_codes
        self._daily = daily
        self._hourly = hourly

    def daily_of(self, site_code: str) -> float:
        """Daily load attributed to ``site_code`` (or ``UNKNOWN``)."""
        return self._daily.get(site_code, 0.0)

    def hourly_of(self, site_code: str) -> np.ndarray:
        """Hourly load vector of ``site_code``."""
        return self._hourly.get(site_code, np.zeros(HOURS))

    def total(self, include_unknown: bool = True) -> float:
        """Total daily load."""
        total = sum(self._daily.get(code, 0.0) for code in self.site_codes)
        if include_unknown:
            total += self._daily.get(UNKNOWN, 0.0)
        return total

    def unknown_fraction(self) -> float:
        """Share of load from unmappable blocks (paper Table 5: 17.6%)."""
        total = self.total(include_unknown=True)
        return self._daily.get(UNKNOWN, 0.0) / total if total else 0.0

    def fraction_of(self, site_code: str, include_unknown: bool = False) -> float:
        """Share of load at ``site_code``.

        By default normalises over *known* sites only — the paper's
        prediction assumes unmappable traffic splits proportionally.
        """
        total = self.total(include_unknown=include_unknown)
        return self._daily.get(site_code, 0.0) / total if total else 0.0

    def fractions(self, include_unknown: bool = False) -> Dict[str, float]:
        """Per-site load shares."""
        return {
            code: self.fraction_of(code, include_unknown)
            for code in self.site_codes
        }


def weight_catchment(
    catchment: CatchmentMap,
    estimate: LoadEstimate,
    hourly: bool = True,
) -> SiteLoad:
    """Attribute every traffic-sending block's load to its mapped site.

    Blocks absent from the catchment map land in ``UNK``.
    """
    if len(estimate) == 0:
        raise DatasetError("load estimate is empty")
    site_codes = catchment.site_codes
    daily: Dict[str, float] = {code: 0.0 for code in site_codes}
    daily[UNKNOWN] = 0.0
    hourly_acc: Dict[str, np.ndarray] = {
        code: np.zeros(HOURS) for code in (*site_codes, UNKNOWN)
    }
    blocks = estimate.blocks
    daily_values = estimate.source.daily_of_kind(estimate.kind)
    for row, block in enumerate(blocks):
        site: Optional[str] = catchment.site_of(int(block))
        bucket = site if site is not None else UNKNOWN
        daily[bucket] = daily.get(bucket, 0.0) + float(daily_values[row])
        if hourly:
            hourly_acc.setdefault(bucket, np.zeros(HOURS))
            hourly_acc[bucket] += estimate.hourly_of_block(int(block))
    return SiteLoad(site_codes, daily, hourly_acc)
