"""Combining catchment maps with load estimates (paper §5.4).

Raw block counts over-weight quiet networks and under-weight resolver
farms; weighting each mapped block by its historical load turns a
catchment map into a calibrated per-site load prediction.  Blocks that
send traffic but were not mapped (no ping reply) go to the ``UNK``
bucket — the paper shows their traffic splits like the mapped blocks'
(§5.5), so predictions normalise over known sites.

Array-backed catchments take a columnar path: one ``searchsorted`` join
(inside :meth:`ArrayCatchmentMap.site_indices_of`) resolves every
traffic block's site at once, then ``bincount`` passes (one daily, one
per hour) accumulate the loads.  ``bincount`` adds rows in input
order, so the float64 sums are bit-identical to the dict-backed
reference loop.
"""
# reprolint: hot-path

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.anycast.catchment import ArrayCatchmentMap, CatchmentMap
from repro.errors import DatasetError
from repro.load.estimator import LoadEstimate
from repro.obs import NULL_OBSERVER, Observer
from repro.traffic.logs import HOURS

UNKNOWN = "UNK"

#: Shared read-only zero vector returned for sites with no hourly state.
_ZERO_HOURS = np.zeros(HOURS)
_ZERO_HOURS.flags.writeable = False


class SiteLoad:
    """Predicted load per site, daily and hourly, including ``UNK``."""

    def __init__(
        self,
        site_codes: List[str],
        daily: Dict[str, float],
        hourly: Dict[str, np.ndarray],
    ) -> None:
        self.site_codes = site_codes
        self._daily = daily
        self._hourly = hourly

    def daily_of(self, site_code: str) -> float:
        """Daily load attributed to ``site_code`` (or ``UNKNOWN``)."""
        return self._daily.get(site_code, 0.0)

    def hourly_of(self, site_code: str) -> np.ndarray:
        """Hourly load vector of ``site_code`` (a read-only view).

        Present and absent sites alike return a non-writeable array:
        callers may not mutate the load's internal state through the
        returned vector, and writes to the absent-site zeros (which
        would otherwise be silently lost) fail loudly instead.
        """
        vector = self._hourly.get(site_code)
        if vector is None:
            return _ZERO_HOURS
        view = vector.view()
        view.flags.writeable = False
        return view

    def peak_of(self, site_code: str) -> float:
        """Peak hourly load at ``site_code`` (max over the 24 bins).

        This — not the daily mean — is the repo's capacity-comparison
        quantity: a site overloads in its busiest hour, and volumetric
        attacks (:mod:`repro.traffic.attack`) concentrate whole daily
        volumes into a few bins, which a mean would dilute ~6x.  See
        :func:`capacity_violations` for the pinned semantics.
        """
        vector = self._hourly.get(site_code)
        if vector is None or vector.size == 0:
            return 0.0
        return float(vector.max())

    def peaks(self) -> Dict[str, float]:
        """Peak hourly load per site (``UNK`` excluded)."""
        return {code: self.peak_of(code) for code in self.site_codes}

    def total(self, include_unknown: bool = True) -> float:
        """Total daily load."""
        total = sum(self._daily.get(code, 0.0) for code in self.site_codes)
        if include_unknown:
            total += self._daily.get(UNKNOWN, 0.0)
        return total

    def unknown_fraction(self) -> float:
        """Share of load from unmappable blocks (paper Table 5: 17.6%)."""
        total = self.total(include_unknown=True)
        return self._daily.get(UNKNOWN, 0.0) / total if total else 0.0

    def fraction_of(self, site_code: str, include_unknown: bool = False) -> float:
        """Share of load at ``site_code``.

        By default normalises over *known* sites only — the paper's
        prediction assumes unmappable traffic splits proportionally.
        """
        total = self.total(include_unknown=include_unknown)
        return self._daily.get(site_code, 0.0) / total if total else 0.0

    def fractions(self, include_unknown: bool = False) -> Dict[str, float]:
        """Per-site load shares.

        The normalising total is summed once, not per site — the
        divisions themselves are unchanged, so each share equals the
        matching :meth:`fraction_of` exactly.  With
        ``include_unknown=True`` the ``UNK`` bucket appears as its own
        entry (equal to :meth:`unknown_fraction`), so the returned
        shares always sum to 1.0 over a non-empty load.
        """
        total = self.total(include_unknown=include_unknown)
        codes = (
            [*self.site_codes, UNKNOWN] if include_unknown else self.site_codes
        )
        if not total:
            return {code: 0.0 for code in codes}
        return {code: self._daily.get(code, 0.0) / total for code in codes}


def capacity_violations(
    peaks: Dict[str, float],
    capacities: Dict[str, float],
    exclude: Sequence[str] = (),
) -> List[str]:
    """Sites whose peak hourly load **strictly exceeds** their capacity.

    This is the single capacity definition shared by
    :func:`repro.core.experiments.site_failure_study` and the playbook
    planner (:mod:`repro.core.playbook`), pinned by boundary tests:

    * the compared quantity is the **peak hourly** load
      (:meth:`SiteLoad.peak_of`), never the daily total or its mean —
      a site that survives on average but melts at 14:00 UTC is down;
    * a site **exactly at** capacity is *not* in violation (strict
      ``>``): capacity is the highest sustainable rate, not the first
      failing one;
    * sites without a declared capacity are unconstrained, and
      ``exclude`` (withdrawn sites, the ``UNK`` bucket) never violate —
      a site that is not announcing serves nothing.

    Returns the violating site codes sorted lexicographically.
    """
    excluded = set(exclude) | {UNKNOWN}
    return [
        code
        for code in sorted(capacities)
        if code not in excluded and peaks.get(code, 0.0) > capacities[code]
    ]


def _weight_reference(
    catchment: CatchmentMap,
    estimate: LoadEstimate,
    hourly: bool,
) -> SiteLoad:
    """Dict-backed per-block accumulation (small-scale reference path)."""
    site_codes = catchment.site_codes
    daily: Dict[str, float] = {code: 0.0 for code in site_codes}
    daily[UNKNOWN] = 0.0
    hourly_acc: Dict[str, np.ndarray] = {
        code: np.zeros(HOURS) for code in (*site_codes, UNKNOWN)
    }
    blocks = estimate.blocks
    daily_values = estimate.source.daily_of_kind(estimate.kind)
    for row, block in enumerate(blocks):
        site: Optional[str] = catchment.site_of(int(block))
        bucket = site if site is not None else UNKNOWN
        daily[bucket] = daily.get(bucket, 0.0) + float(daily_values[row])  # reprolint: disable=D110,W503 — per-call local accumulator, fixed row order
        if hourly:
            hourly_acc.setdefault(bucket, np.zeros(HOURS))  # reprolint: disable=D110 — reference path
            hourly_acc[bucket] += estimate.hourly_of_block(int(block))  # reprolint: disable=D110 — reference path
    return SiteLoad(site_codes, daily, hourly_acc)


def _weight_columnar(
    catchment: ArrayCatchmentMap,
    estimate: LoadEstimate,
    hourly: bool,
) -> SiteLoad:
    """One-pass array join and accumulation.

    ``bincount`` processes input rows in order, so each per-bucket
    (and, hourly, per-hour) accumulator sees the identical sequence of
    float64 additions as the reference loop — the results are
    bit-equal, not just close.
    """
    site_codes = catchment.site_codes
    unknown_bucket = len(site_codes)
    indices = catchment.site_indices_of(estimate.blocks).astype(np.int64)
    buckets = np.where(indices >= 0, indices, unknown_bucket)
    daily_values = estimate.source.daily_of_kind(estimate.kind)
    daily_sums = np.bincount(
        buckets, weights=daily_values, minlength=unknown_bucket + 1
    )
    daily = {code: float(daily_sums[i]) for i, code in enumerate(site_codes)}
    daily[UNKNOWN] = float(daily_sums[unknown_bucket])
    hourly_sums = np.zeros((unknown_bucket + 1, HOURS))
    if hourly:
        matrix = estimate.hourly_matrix()
        for hour in range(HOURS):
            hourly_sums[:, hour] = np.bincount(
                buckets, weights=matrix[:, hour], minlength=unknown_bucket + 1
            )
    hourly_acc = {code: hourly_sums[i] for i, code in enumerate(site_codes)}
    hourly_acc[UNKNOWN] = hourly_sums[unknown_bucket]
    return SiteLoad(site_codes, daily, hourly_acc)


def weight_catchment(
    catchment: CatchmentMap,
    estimate: LoadEstimate,
    hourly: bool = True,
    observer: Optional[Observer] = None,
) -> SiteLoad:
    """Attribute every traffic-sending block's load to its mapped site.

    Blocks absent from the catchment map land in ``UNK``.  Array-backed
    catchments dispatch to the columnar fast path, which produces
    bit-identical loads.
    """
    if observer is None:
        observer = NULL_OBSERVER
    if len(estimate) == 0:
        raise DatasetError("load estimate is empty")
    columnar = isinstance(catchment, ArrayCatchmentMap)
    with observer.tracer.span("load.weight", columnar=columnar) as span:
        with observer.profile("load.weight"):
            if columnar:
                load = _weight_columnar(catchment, estimate, hourly)
            else:
                load = _weight_reference(catchment, estimate, hourly)
        span.set(join_rows=len(estimate))
    observer.metrics.gauge("load.join_rows").set(len(estimate))
    return load
