"""Predicted vs measured site load (paper §5.5, Table 6).

The *prediction* weights a (possibly test-prefix or older) catchment
map by historical load.  The *measured* load routes every
traffic-sending block — including ping-dark ones — by the ground-truth
catchment on the measurement day.  Comparing the two quantifies both
the unmappable-blocks effect and routing drift over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.bgp.propagation import RoutingOutcome
from repro.load.estimator import LoadEstimate
from repro.load.weighting import SiteLoad, UNKNOWN, weight_catchment
from repro.traffic.logs import HOURS


@dataclass
class PredictionComparison:
    """Per-site predicted and measured load fractions."""

    site_codes: List[str]
    predicted: Dict[str, float]
    measured: Dict[str, float]

    def error_of(self, site_code: str) -> float:
        """Absolute error (fraction points) at ``site_code``."""
        return abs(self.predicted.get(site_code, 0.0) - self.measured.get(site_code, 0.0))

    def max_error(self) -> float:
        """Worst per-site absolute error."""
        return max((self.error_of(code) for code in self.site_codes), default=0.0)


def measured_site_load(routing: RoutingOutcome, estimate: LoadEstimate) -> SiteLoad:
    """Ground-truth per-site load: every block routed by actual catchment.

    This is what the service's own logs would report — no block is
    "unmappable" because the server sees traffic regardless of whether
    the block answers pings.
    """
    site_codes = routing.policy.site_codes
    daily: Dict[str, float] = {code: 0.0 for code in site_codes}
    daily[UNKNOWN] = 0.0
    blocks = estimate.blocks
    daily_values = estimate.source.daily_of_kind(estimate.kind)
    for row, block in enumerate(blocks):
        site = routing.site_of_block(int(block))
        bucket = site if site is not None else UNKNOWN
        daily[bucket] = daily.get(bucket, 0.0) + float(daily_values[row])
    hourly = {code: np.zeros(HOURS) for code in (*site_codes, UNKNOWN)}
    return SiteLoad(site_codes, daily, hourly)


def compare_prediction(
    predicted: SiteLoad, measured: SiteLoad
) -> PredictionComparison:
    """Compare two site-load distributions as known-site fractions."""
    site_codes = predicted.site_codes
    return PredictionComparison(
        site_codes=site_codes,
        predicted=predicted.fractions(),
        measured=measured.fractions(),
    )


def predict_from_catchment(
    catchment, estimate: LoadEstimate
) -> SiteLoad:
    """Convenience alias of :func:`~repro.load.weighting.weight_catchment`."""
    return weight_catchment(catchment, estimate)
