"""ICMP layer: wire format, host responder behaviour, simulated dataplane.

Verfploeter's probes are ICMP Echo Requests sent from the anycast
measurement address; replies return to whichever anycast site BGP
selects for the replying network.  This package implements the packet
encoding (checksums and all), the behaviour of probed hosts (duplicates,
off-address replies, latency), and the dataplane that delivers replies
to the catchment site.
"""

from repro.icmp.network import DeliveredReply, SimulatedDataplane
from repro.icmp.packets import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    EchoMessage,
    IPv4Header,
    build_probe,
    build_reply,
    internet_checksum,
    parse_packet,
)
from repro.icmp.responder import HostResponder, ReplyEvent

__all__ = [
    "ICMP_ECHO_REQUEST",
    "ICMP_ECHO_REPLY",
    "EchoMessage",
    "IPv4Header",
    "internet_checksum",
    "build_probe",
    "build_reply",
    "parse_packet",
    "HostResponder",
    "ReplyEvent",
    "SimulatedDataplane",
    "DeliveredReply",
]
