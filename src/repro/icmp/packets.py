"""IPv4 + ICMP echo wire format.

Real, RFC-791/792-conformant encoding: 20-byte IPv4 header (no options)
followed by an ICMP echo message, both with correct Internet checksums.
The Verfploeter prober stamps the measurement *round* into the ICMP
identifier field and the probe *sequence* into the sequence field, which
is exactly how rounds are separated in the paper (§4.2: "A unique
identifier in the ICMP header was used in every measurement round").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.errors import PacketError

ICMP_ECHO_REPLY = 0
ICMP_ECHO_REQUEST = 8
_IP_VERSION_IHL = (4 << 4) | 5  # IPv4, 5-word header
_DEFAULT_TTL = 64
_PROTO_ICMP = 1
_HEADER_LEN = 20


def internet_checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum (one's-complement sum of 16-bit words)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class IPv4Header:
    """A minimal (option-less) IPv4 header."""

    source: int
    destination: int
    total_length: int
    ttl: int = _DEFAULT_TTL
    identification: int = 0
    protocol: int = _PROTO_ICMP

    def encode(self) -> bytes:
        """Serialise with a correct header checksum."""
        without_checksum = struct.pack(
            "!BBHHHBBH4s4s",
            _IP_VERSION_IHL,
            0,
            self.total_length,
            self.identification,
            0,  # flags / fragment offset
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.source.to_bytes(4, "big"),
            self.destination.to_bytes(4, "big"),
        )
        checksum = internet_checksum(without_checksum)
        return without_checksum[:10] + struct.pack("!H", checksum) + without_checksum[12:]

    @classmethod
    def decode(cls, data: bytes) -> "IPv4Header":
        """Parse and checksum-verify a 20-byte IPv4 header."""
        if len(data) < _HEADER_LEN:
            raise PacketError(f"IPv4 header truncated: {len(data)} bytes")
        version_ihl = data[0]
        if version_ihl != _IP_VERSION_IHL:
            raise PacketError(f"unsupported IPv4 version/IHL {version_ihl:#x}")
        if internet_checksum(data[:_HEADER_LEN]) != 0:
            raise PacketError("IPv4 header checksum mismatch")
        (
            _,
            _,
            total_length,
            identification,
            _,
            ttl,
            protocol,
            _,
            source,
            destination,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:_HEADER_LEN])
        return cls(
            source=int.from_bytes(source, "big"),
            destination=int.from_bytes(destination, "big"),
            total_length=total_length,
            ttl=ttl,
            identification=identification,
            protocol=protocol,
        )


@dataclass(frozen=True)
class EchoMessage:
    """An ICMP echo request or reply."""

    icmp_type: int
    identifier: int
    sequence: int
    payload: bytes = b""

    @property
    def is_request(self) -> bool:
        """True for an Echo Request."""
        return self.icmp_type == ICMP_ECHO_REQUEST

    @property
    def is_reply(self) -> bool:
        """True for an Echo Reply."""
        return self.icmp_type == ICMP_ECHO_REPLY

    def encode(self) -> bytes:
        """Serialise with a correct ICMP checksum."""
        if not 0 <= self.identifier <= 0xFFFF:
            raise PacketError(f"identifier {self.identifier} out of 16-bit range")
        if not 0 <= self.sequence <= 0xFFFF:
            raise PacketError(f"sequence {self.sequence} out of 16-bit range")
        header = struct.pack(
            "!BBHHH", self.icmp_type, 0, 0, self.identifier, self.sequence
        )
        checksum = internet_checksum(header + self.payload)
        header = struct.pack(
            "!BBHHH", self.icmp_type, 0, checksum, self.identifier, self.sequence
        )
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "EchoMessage":
        """Parse and checksum-verify an ICMP echo message."""
        if len(data) < 8:
            raise PacketError(f"ICMP message truncated: {len(data)} bytes")
        if internet_checksum(data) != 0:
            raise PacketError("ICMP checksum mismatch")
        icmp_type, code, _, identifier, sequence = struct.unpack("!BBHHH", data[:8])
        if icmp_type not in (ICMP_ECHO_REQUEST, ICMP_ECHO_REPLY):
            raise PacketError(f"not an echo message (type {icmp_type})")
        if code != 0:
            raise PacketError(f"nonzero echo code {code}")
        return cls(icmp_type, identifier, sequence, bytes(data[8:]))

    def reply(self) -> "EchoMessage":
        """The Echo Reply answering this request (payload echoed back)."""
        if not self.is_request:
            raise PacketError("can only reply to an echo request")
        return EchoMessage(ICMP_ECHO_REPLY, self.identifier, self.sequence, self.payload)


def build_probe(
    source: int,
    destination: int,
    identifier: int,
    sequence: int,
    payload: bytes = b"",
) -> bytes:
    """Build a complete on-the-wire Echo Request packet (IPv4 + ICMP)."""
    message = EchoMessage(ICMP_ECHO_REQUEST, identifier, sequence, payload)
    icmp = message.encode()
    header = IPv4Header(source, destination, _HEADER_LEN + len(icmp))
    return header.encode() + icmp


def build_reply(
    source: int,
    destination: int,
    identifier: int,
    sequence: int,
    payload: bytes = b"",
) -> bytes:
    """Build a complete on-the-wire Echo Reply packet (IPv4 + ICMP)."""
    message = EchoMessage(ICMP_ECHO_REPLY, identifier, sequence, payload)
    icmp = message.encode()
    header = IPv4Header(source, destination, _HEADER_LEN + len(icmp))
    return header.encode() + icmp


def parse_packet(data: bytes) -> Tuple[IPv4Header, EchoMessage]:
    """Parse a complete packet into its IPv4 header and echo message."""
    header = IPv4Header.decode(data)
    if header.protocol != _PROTO_ICMP:
        raise PacketError(f"not ICMP (protocol {header.protocol})")
    if header.total_length != len(data):
        raise PacketError(
            f"length mismatch: header says {header.total_length}, got {len(data)}"
        )
    message = EchoMessage.decode(data[_HEADER_LEN:])
    return header, message
