"""Behaviour of probed hosts.

Wraps the topology's :class:`~repro.topology.hosts.HostModel` into the
packet world: given an Echo Request to an address, produce the Echo
Reply events (possibly none, several duplicates, or replies from a
different source address) with their latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.icmp.packets import EchoMessage
from repro.topology.internet import Internet


@dataclass(frozen=True)
class ReplyEvent:
    """One reply emitted by a probed host."""

    source_address: int
    delay_ms: float
    message: EchoMessage

    @property
    def source_block(self) -> int:
        """/24 block the reply comes from."""
        return self.source_address >> 8


class HostResponder:
    """Simulates all probed hosts of the Internet."""

    def __init__(self, internet: Internet) -> None:
        self._internet = internet
        self._hosts = internet.host_model

    def respond(
        self, destination: int, message: EchoMessage, round_id: int
    ) -> List[ReplyEvent]:
        """Replies triggered by ``message`` sent to ``destination``.

        Empty when the target block is unpopulated or silent this round.
        Some hosts reply from a *different* address in their block
        (multi-homed boxes, NAT middleboxes); the paper's cleaning stage
        drops those replies because the source was never probed.
        """
        if not message.is_request:
            return []
        block = destination >> 8
        if not self._internet.has_block(block):
            return []
        country = self._internet.country_of_block(block)
        if not self._hosts.responds_in_round(block, round_id, country):
            return []
        source = destination
        if self._hosts.replies_from_other_address(block):
            # Reply from the neighbouring host address in the same /24,
            # never equal to the probed address.
            source = (block << 8) | (((destination & 0xFF) + 1) % 256)
        count = self._hosts.reply_count(block, round_id)
        base_delay = self._hosts.reply_latency_ms(block, round_id)
        reply = message.reply()
        return [
            ReplyEvent(source, base_delay + 0.1 * extra, reply)
            for extra in range(count)
        ]
