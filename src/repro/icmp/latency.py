"""Path latency model.

The paper's future work (§7) suggests Verfploeter RTTs could drive
anycast site placement.  This model gives each (block, site) pair a
round-trip time with the structure real measurements have:

* geographic propagation — great-circle distance at ~2/3 c in fibre
  (~100 km per millisecond one-way), doubled for the round trip and
  inflated by a path-stretch factor (routes are not geodesics);
* a per-block access delay (last-mile technology, deterministic);
* per-(block, round) queueing jitter.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.anycast.service import AnycastService
from repro.errors import ConfigurationError
from repro.geo.distance import haversine_km
from repro.rng import uniform_unit
from repro.topology.internet import Internet

_ACCESS_SALT = 0x41434353
_JITTER_SALT = 0x4A495454

#: One-way kilometres covered per millisecond at ~2/3 the speed of light.
KM_PER_MS = 100.0


class LatencyModel:
    """Deterministic RTTs between /24 blocks and anycast sites."""

    def __init__(
        self,
        internet: Internet,
        service: AnycastService,
        path_stretch: float = 1.4,
        access_delay_range_ms: Tuple[float, float] = (2.0, 25.0),
        jitter_ms: float = 4.0,
    ) -> None:
        if path_stretch < 1.0:
            raise ConfigurationError("path_stretch must be >= 1")
        if access_delay_range_ms[0] > access_delay_range_ms[1]:
            raise ConfigurationError("access delay range inverted")
        if jitter_ms < 0:
            raise ConfigurationError("jitter_ms must be >= 0")
        self._internet = internet
        self._seed = internet.seed
        self._stretch = path_stretch
        self._access_range = access_delay_range_ms
        self._jitter = jitter_ms
        self._site_locations: Dict[str, Tuple[float, float]] = {
            site.code: site.location for site in service.sites
        }

    def access_delay_ms(self, block: int) -> float:
        """Last-mile delay of ``block`` (stable over time)."""
        low, high = self._access_range
        draw = uniform_unit(self._seed, _ACCESS_SALT, block)
        return low + (high - low) * draw * draw  # skewed toward fast access

    def propagation_rtt_ms(self, block: int, site_code: str) -> Optional[float]:
        """Round-trip propagation between ``block`` and ``site_code``.

        None when the block has no geolocation (its distance is unknown)
        or the site is not part of the service.
        """
        location = self._site_locations.get(site_code)
        record = self._internet.geodb.locate(block)
        if location is None or record is None:
            return None
        distance = haversine_km(
            record.latitude, record.longitude, location[0], location[1]
        )
        return 2.0 * self._stretch * distance / KM_PER_MS

    def rtt_ms(self, block: int, site_code: str, round_id: int = 0) -> Optional[float]:
        """Full RTT: propagation + access + per-round jitter."""
        propagation = self.propagation_rtt_ms(block, site_code)
        if propagation is None:
            return None
        jitter = self._jitter * uniform_unit(
            self._seed, _JITTER_SALT, block, round_id
        )
        return propagation + self.access_delay_ms(block) + jitter

    def best_site_for(self, block: int, round_id: int = 0) -> Optional[str]:
        """The latency-optimal site for ``block`` (not where BGP sends it).

        The gap between this and the BGP catchment is the latency
        inflation anycast operators hunt for.
        """
        best: Optional[Tuple[float, str]] = None
        for site_code in self._site_locations:
            rtt = self.rtt_ms(block, site_code, round_id)
            if rtt is not None and (best is None or rtt < best[0]):
                best = (rtt, site_code)
        return best[1] if best is not None else None
