"""Simulated dataplane: probes out, replies back to the catchment site.

This is the crux of Verfploeter (paper Figure 1, right half): the
request is sent *from* the anycast measurement address, so the reply is
addressed to the anycast prefix and lands at whichever site BGP selects
for the *replying* network — identifying its catchment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bgp.propagation import RoutingOutcome
from repro.errors import MeasurementError
from repro.icmp.latency import LatencyModel
from repro.icmp.packets import build_reply, parse_packet
from repro.icmp.responder import HostResponder, ReplyEvent


@dataclass(frozen=True)
class DeliveredReply:
    """A reply as it arrives at an anycast site."""

    site_code: str
    source_address: int
    identifier: int
    sequence: int
    timestamp: float

    @property
    def source_block(self) -> int:
        """/24 block the reply came from."""
        return self.source_address >> 8


class SimulatedDataplane:
    """Routes probes to hosts and replies to their catchment sites.

    With a :class:`~repro.icmp.latency.LatencyModel` attached, reply
    timings reflect geography (propagation to the catchment site plus
    access delay) instead of the host model's generic delays — this is
    what gives Verfploeter scans meaningful RTTs (paper §7).
    """

    def __init__(
        self,
        routing: RoutingOutcome,
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        self.routing = routing
        self.latency = latency_model
        self._responder = HostResponder(routing.internet)
        self._late_threshold_ms = (
            routing.internet.host_model.config.late_threshold_ms
        )

    def _deliver(
        self,
        events: List[ReplyEvent],
        identifier: int,
        sequence: int,
        timestamp: float,
        round_id: int,
    ) -> List[DeliveredReply]:
        delivered: List[DeliveredReply] = []
        for index, event in enumerate(events):
            site = self.routing.site_of_block(event.source_block, round_id)
            if site is None:
                continue  # network unreachable from the anycast prefix
            delay_ms = event.delay_ms
            if self.latency is not None and delay_ms < self._late_threshold_ms:
                path_rtt = self.latency.rtt_ms(event.source_block, site, round_id)
                if path_rtt is not None:
                    # Geographic RTT; duplicates trail by a small gap.
                    delay_ms = path_rtt + 0.1 * index
            delivered.append(
                DeliveredReply(
                    site_code=site,
                    source_address=event.source_address,
                    identifier=identifier,
                    sequence=sequence,
                    timestamp=timestamp + delay_ms / 1000.0,
                )
            )
        return delivered

    def send_probe_packet(
        self, packet: bytes, timestamp: float, round_id: int
    ) -> List[DeliveredReply]:
        """Wire-level path: parse the probe, simulate host, deliver replies.

        Used at small scale and in tests; byte-for-byte exercises the
        packet encode/decode path.
        """
        header, message = parse_packet(packet)
        if not message.is_request:
            raise MeasurementError("send_probe_packet expects an echo request")
        events = self._responder.respond(header.destination, message, round_id)
        for event in events:
            # Round-trip each reply through the wire format so malformed
            # encodes would surface immediately.
            wire = build_reply(
                event.source_address,
                header.source,
                event.message.identifier,
                event.message.sequence,
                event.message.payload,
            )
            parse_packet(wire)
        return self._deliver(
            events, message.identifier, message.sequence, timestamp, round_id
        )

    def send_probe_fast(
        self,
        destination: int,
        identifier: int,
        sequence: int,
        timestamp: float,
        round_id: int,
    ) -> List[DeliveredReply]:
        """Fast path: identical semantics without wire encode/decode.

        Equivalence with :meth:`send_probe_packet` is asserted by tests;
        large scans use this path (millions of packet round-trips in
        pure Python would dominate runtime without changing results).
        """
        from repro.icmp.packets import EchoMessage, ICMP_ECHO_REQUEST

        message = EchoMessage(ICMP_ECHO_REQUEST, identifier, sequence)
        events = self._responder.respond(destination, message, round_id)
        return self._deliver(events, identifier, sequence, timestamp, round_id)

    def site_of_block(self, block: int, round_id: Optional[int] = None) -> Optional[str]:
        """Ground-truth catchment of ``block`` (for validation)."""
        return self.routing.site_of_block(block, round_id)
