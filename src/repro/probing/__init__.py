"""The Verfploeter prober: hitlists, probe ordering, and scheduling."""

from repro.probing.hitlist import Hitlist, HitlistEntry, build_hitlist
from repro.probing.order import PseudorandomOrder
from repro.probing.prober import ProbeSchedule, Prober, ProberConfig

__all__ = [
    "Hitlist",
    "HitlistEntry",
    "build_hitlist",
    "PseudorandomOrder",
    "Prober",
    "ProberConfig",
    "ProbeSchedule",
]
