"""Pseudorandom probe ordering.

The paper sends probes "in a pseudorandom order (following [25])" so
that consecutive probes never hammer one network.  We implement a
format-preserving permutation of ``[0, n)``: a four-round Feistel
network over the smallest even-bit-width domain covering ``n``, with
cycle-walking to stay inside the range.  The permutation is a bijection
(property-tested), so every index is probed exactly once.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigurationError
from repro.rng import derive_seed, mix64

_ROUNDS = 4


def round_order_seed(parent_seed: int, round_id: int) -> int:
    """Seed of the probe-order permutation for one scan round.

    This is the *only* place the probe-order label is derived.  The
    label is namespaced under ``probing.order/`` so no other subsystem
    formatting its own ``{round_id}`` label can collide with it, and
    both the scalar prober and the vectorized engine call this helper
    so their permutations are bit-identical by construction.
    """
    return derive_seed(parent_seed, f"probing.order/round/{round_id}")


class PseudorandomOrder:
    """A seeded permutation of ``range(n)``."""

    def __init__(self, n: int, seed: int) -> None:
        if n <= 0:
            raise ConfigurationError("permutation domain must be non-empty")
        self._n = n
        self._seed = seed
        bits = max(2, (n - 1).bit_length())
        if bits % 2:
            bits += 1
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1
        self._domain = 1 << bits

    def __len__(self) -> int:
        return self._n

    def _round_function(self, value: int, round_index: int) -> int:
        return mix64(self._seed ^ (value * 0x9E3779B1) ^ (round_index << 48)) & self._half_mask

    def _feistel(self, value: int) -> int:
        left = value >> self._half_bits
        right = value & self._half_mask
        for round_index in range(_ROUNDS):
            left, right = right, left ^ self._round_function(right, round_index)
        return (left << self._half_bits) | right

    def index(self, i: int) -> int:
        """The ``i``-th probe target index (cycle-walking Feistel)."""
        if not 0 <= i < self._n:
            raise ConfigurationError(f"index {i} outside permutation domain")
        value = self._feistel(i)
        while value >= self._n:
            value = self._feistel(value)
        return value

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n):
            yield self.index(i)
