"""IPv4 hitlists: one representative address per /24 block.

Stands in for the ISI IPv4 hitlist the paper uses [17]: for every /24
block, the address historically most likely to respond to pings, with a
score.  Probing one address per block reduces traffic to 0.4% of a full
scan (paper §3.1) at the cost of missing blocks whose representative
happens to be down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import DatasetError
from repro.netaddr.blocks import format_block
from repro.rng import mix64, uniform_unit
from repro.topology.internet import Internet

_SCORE_SALT = 0x53434F52
_HOST_SALT = 0x484F5354


@dataclass(frozen=True)
class HitlistEntry:
    """One hitlist row: the representative address of a /24 block."""

    block: int
    address: int
    score: float

    def __str__(self) -> str:
        return f"{format_block(self.block)} -> {self.address:#010x} ({self.score:.2f})"


class Hitlist:
    """An ordered collection of hitlist entries (block order)."""

    def __init__(self, entries: Iterable[HitlistEntry]) -> None:
        self._entries: List[HitlistEntry] = sorted(entries, key=lambda e: e.block)
        blocks = [entry.block for entry in self._entries]
        if len(set(blocks)) != len(blocks):
            raise DatasetError("hitlist has duplicate blocks")

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HitlistEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> HitlistEntry:
        return self._entries[index]

    @property
    def blocks(self) -> List[int]:
        """Covered block ids, ascending."""
        return [entry.block for entry in self._entries]

    def entry_for(self, block: int) -> Optional[HitlistEntry]:
        """Entry for ``block`` via binary search, or None."""
        low, high = 0, len(self._entries)
        while low < high:
            mid = (low + high) // 2
            if self._entries[mid].block < block:
                low = mid + 1
            else:
                high = mid
        if low < len(self._entries) and self._entries[low].block == block:
            return self._entries[low]
        return None

    def top_scoring(self, count: int) -> List[HitlistEntry]:
        """The ``count`` entries with the highest scores."""
        return sorted(self._entries, key=lambda e: -e.score)[:count]


def build_hitlist(
    internet: Internet, blocks: Optional[Sequence[int]] = None
) -> Hitlist:
    """Build the hitlist for ``internet``.

    Covers every populated block (or the given subset).  The chosen host
    octet and the score are deterministic per block, mimicking how the
    ISI hitlist picks the historically most responsive address; the
    score loosely tracks the block's actual responsiveness so that
    score-ordered subsets behave like the real hitlist's.
    """
    chosen = internet.blocks if blocks is None else blocks
    entries = []
    model = internet.host_model
    for block in chosen:
        if not internet.has_block(block):
            raise DatasetError(f"block {block} not in topology")
        # Representative host octet in [1, 254]: never .0 or .255.
        octet = 1 + mix64(block ^ _HOST_SALT) % 254
        country = internet.country_of_block(block)
        responsive = model.is_stable_responder(block, country)
        noise = uniform_unit(internet.seed, _SCORE_SALT, block)
        score = (0.55 + 0.45 * noise) if responsive else 0.45 * noise
        entries.append(HitlistEntry(block, (block << 8) | octet, score))
    return Hitlist(entries)
