"""The Verfploeter prober: rate-limited, round-stamped probe schedules.

One measurement round sends a single Echo Request to every hitlist
entry, in pseudorandom order, at a configured rate (the paper uses
6-10k packets/s so a 6.4M-target round takes 10-20 minutes), with the
round's unique identifier in the ICMP header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigurationError, MeasurementError
from repro.obs import NULL_OBSERVER, Observer
from repro.probing.hitlist import Hitlist
from repro.probing.order import PseudorandomOrder, round_order_seed


@dataclass(frozen=True)
class ProberConfig:
    """Prober parameters.

    ``rate_pps`` caps probe transmission (paper: ~6-10k/s to avoid rate
    limits and abuse complaints); ``source_address`` must be the
    anycast measurement address.
    """

    source_address: int
    rate_pps: float = 10_000.0
    payload: bytes = b"verfploeter"

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ConfigurationError("rate_pps must be positive")
        if not 0 <= self.source_address <= 0xFFFFFFFF:
            raise ConfigurationError("source_address out of 32-bit range")


@dataclass(frozen=True)
class ScheduledProbe:
    """One probe in a round's schedule."""

    send_time: float
    destination: int
    identifier: int
    sequence: int

    @property
    def destination_block(self) -> int:
        """/24 block being probed."""
        return self.destination >> 8


class ProbeSchedule:
    """The complete, ordered probe schedule of one measurement round."""

    def __init__(
        self,
        hitlist: Hitlist,
        config: ProberConfig,
        round_id: int,
        start_time: float,
        order_seed: int,
    ) -> None:
        if len(hitlist) == 0:
            raise MeasurementError("cannot schedule an empty hitlist")
        self._hitlist = hitlist
        self._config = config
        self.round_id = round_id
        self.start_time = start_time
        self.identifier = round_id & 0xFFFF
        self._order = PseudorandomOrder(len(hitlist), order_seed)

    def __len__(self) -> int:
        return len(self._hitlist)

    @property
    def duration_seconds(self) -> float:
        """Wall-clock length of the round at the configured rate."""
        return len(self._hitlist) / self._config.rate_pps

    def __iter__(self) -> Iterator[ScheduledProbe]:
        interval = 1.0 / self._config.rate_pps
        for position, target_index in enumerate(self._order):
            entry = self._hitlist[target_index]
            yield ScheduledProbe(
                send_time=self.start_time + position * interval,
                destination=entry.address,
                identifier=self.identifier,
                sequence=target_index & 0xFFFF,
            )

    def max_burst_per_prefix(self, prefix_bits: int = 16) -> Tuple[int, int]:
        """Worst-case probes landing in one /``prefix_bits`` within a second.

        Diagnostic for the pseudorandom ordering: sequential ordering
        concentrates each second's probes in one prefix; the Feistel
        order spreads them (exercised by the ablation benchmark).
        """
        interval = 1.0 / self._config.rate_pps
        shift = 32 - prefix_bits
        per_second_prefix: dict = {}
        worst = (0, 0)
        # Walk the permutation directly — same positions, same arithmetic —
        # without materialising a ScheduledProbe per target.
        for position, target_index in enumerate(self._order):
            second = int(self.start_time + position * interval)
            prefix = self._hitlist[target_index].address >> shift
            key = (second, prefix)
            tally = per_second_prefix.get(key, 0) + 1
            per_second_prefix[key] = tally
            if tally > worst[1]:
                worst = (prefix, tally)
        return worst


class Prober:
    """Builds probe schedules for successive measurement rounds."""

    def __init__(
        self,
        hitlist: Hitlist,
        config: ProberConfig,
        seed: int,
        observer: Optional[Observer] = None,
    ) -> None:
        self.hitlist = hitlist
        self.config = config
        self._seed = seed
        self._observer = observer if observer is not None else NULL_OBSERVER

    def schedule_round(self, round_id: int, start_time: float = 0.0) -> ProbeSchedule:
        """Schedule one measurement round.

        Each round gets its own ICMP identifier (dataset separation) and
        its own probe order (derived from the prober seed and round id).
        """
        with self._observer.tracer.span(
            "probe.schedule", round_id=round_id
        ) as span:
            schedule = ProbeSchedule(
                self.hitlist, self.config, round_id, start_time,
                self.order_seed(round_id),
            )
            span.set(probes=len(schedule))
        self._observer.metrics.counter("probe.rounds_scheduled").inc()
        return schedule

    def order_seed(self, round_id: int) -> int:
        """Probe-order permutation seed for ``round_id``.

        Exposed so alternative engines (the vectorized fast path) can
        reproduce this prober's ordering bit-for-bit instead of
        re-deriving a stream of their own.
        """
        return round_order_seed(self._seed, round_id)
