"""Zero-dependency JSON-over-WSGI plumbing for the mapping service.

No framework: a :class:`JsonApp` is a list of routes — HTTP method plus
a path template like ``/v1/catchment/<block>`` — each mapped to a
handler taking a :class:`Request` and returning a JSON-serialisable
object (or a ``(status, object)`` pair).  Everything the app emits is
JSON with sorted keys, *including* errors: handlers raise
:class:`~repro.errors.HttpError` for structured 4xx responses, unknown
paths get a 404 document, wrong methods a 405, and an unexpected
handler exception is caught, counted, and rendered as an opaque 500 —
a bad request must never take the daemon down.

Determinism: responses are pure functions of service state and the
request — ``json.dumps(..., sort_keys=True)`` with fixed separators,
no timestamps, no object ids — so two same-seed daemons fed the same
stream answer every endpoint byte-identically.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import HttpError
from repro.obs import NULL_OBSERVER, Observer

_STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

#: ``<name>`` placeholders in route templates become path captures.
_PLACEHOLDER = re.compile(r"<([a-z_]+)>")


def _status_line(status: int) -> str:
    """``"404 Not Found"``-style status line for the WSGI start_response."""
    return f"{status} {_STATUS_REASONS.get(status, 'Unknown')}"


def render_json(payload: object) -> bytes:
    """Canonical JSON encoding: sorted keys, fixed separators, newline."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def error_body(status: int, code: str, message: str) -> Dict[str, object]:
    """The structured error document every non-2xx response carries."""
    return {"error": {"status": status, "code": code, "message": message}}


class Request:
    """One parsed request: path captures and query parameters."""

    def __init__(
        self,
        path: str,
        params: Dict[str, str],
        query: Dict[str, str],
    ) -> None:
        self.path = path
        self.params = params
        self.query = query

    def query_int(
        self,
        name: str,
        default: Optional[int] = None,
        minimum: Optional[int] = None,
    ) -> Optional[int]:
        """Integer query parameter, or ``default`` when absent.

        Malformed or out-of-range values raise a 400
        :class:`~repro.errors.HttpError` naming the parameter.
        """
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise HttpError(
                400, "bad-parameter", f"query parameter {name!r} must be an integer"
            ) from None
        if minimum is not None and value < minimum:
            raise HttpError(
                400, "bad-parameter",
                f"query parameter {name!r} must be >= {minimum}",
            )
        return value


def _parse_query(raw: str) -> Dict[str, str]:
    """Minimal query-string parsing (no repeats, no encoding surprises)."""
    query: Dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        query[key] = value
    return query


def _compile_template(template: str) -> "re.Pattern":
    """Compile ``/v1/catchment/<block>`` into an anchored path regex.

    ``re.split`` on the placeholder pattern (which has one capture
    group) alternates literal text and placeholder names; literals are
    escaped, placeholders become named ``[^/]+`` captures.
    """
    parts = _PLACEHOLDER.split(template)
    compiled = [
        f"(?P<{part}>[^/]+)" if index % 2 else re.escape(part)
        for index, part in enumerate(parts)
    ]
    return re.compile("^" + "".join(compiled) + "$")


class _Route:
    """One compiled route: method, path regex, handler."""

    def __init__(self, method: str, template: str, handler: Callable) -> None:
        self.method = method
        self.template = template
        self.regex = _compile_template(template)
        self.handler = handler


class JsonApp:
    """A WSGI application mapping routes to JSON handlers."""

    def __init__(self, observer: Optional[Observer] = None) -> None:
        self._routes: List[_Route] = []
        self._observer = observer if observer is not None else NULL_OBSERVER

    def route(self, method: str, template: str, handler: Callable) -> None:
        """Register ``handler`` for ``method`` requests matching ``template``."""
        self._routes.append(_Route(method.upper(), template, handler))

    def get(self, template: str, handler: Callable) -> None:
        """Register a GET route."""
        self.route("GET", template, handler)

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, method: str, path: str, query: Dict[str, str]):
        """Resolve and run the handler; returns ``(status, payload)``."""
        path_matched = False
        for route in self._routes:
            match = route.regex.match(path)
            if match is None:
                continue
            path_matched = True
            if route.method != method:
                continue
            request = Request(path, match.groupdict(), query)
            result = route.handler(request)
            if isinstance(result, tuple):
                return result
            return 200, result
        if path_matched:
            raise HttpError(
                405, "method-not-allowed", f"{method} is not supported here"
            )
        raise HttpError(404, "not-found", f"no such endpoint: {path}")

    def respond(
        self, method: str, path: str, query_string: str = ""
    ) -> Tuple[int, bytes]:
        """In-process request: returns ``(status, body bytes)``.

        Tests and the smoke tool call this directly; the WSGI entry
        point below wraps it for real HTTP servers.
        """
        metrics = self._observer.metrics
        try:
            status, payload = self._dispatch(
                method, path, _parse_query(query_string)
            )
        except HttpError as err:
            status, payload = err.status, error_body(
                err.status, err.code, err.message
            )
        except Exception:  # reprolint: disable=E302 — service boundary: a crashing handler must become a 500, not kill the daemon
            metrics.counter("service.errors", kind="handler").inc()
            status, payload = 500, error_body(
                500, "internal-error", "unexpected error handling the request"
            )
        metrics.counter("service.requests", status=status).inc()
        return status, render_json(payload)

    # -- WSGI --------------------------------------------------------------

    def __call__(self, environ, start_response) -> Iterable[bytes]:
        """The WSGI callable."""
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        query_string = environ.get("QUERY_STRING", "")
        with self._observer.tracer.span("service.request"):
            status, body = self.respond(method, path, query_string)
        start_response(
            _status_line(status),
            [
                ("Content-Type", "application/json; charset=utf-8"),
                ("Content-Length", str(len(body))),
            ],
        )
        return [body]
