"""The always-on mapping daemon: ingest loop plus HTTP front-end.

A :class:`MappingService` couples a feed (any iterator of
:mod:`repro.service.feed` events) to a
:class:`~repro.service.state.MeasurementState` and serves the JSON API
over a threaded ``wsgiref`` server — the standard library is the whole
HTTP stack, no framework, no new dependency.

Threads: one ingest thread drains the feed; the WSGI server spawns one
short-lived thread per request.  They share nothing mutable — requests
read the state's atomically published view — so there is no lock
between ingest and queries.  Shutdown drains cleanly: the ingest loop
checks the stop flag only at round boundaries, so a round that has
started always ends (and publishes) before the thread exits, and the
HTTP server is shut down after ingest has settled.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Tuple
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from socketserver import ThreadingMixIn

from repro.errors import ServiceError
from repro.obs import Observer
from repro.service.feed import FeedEvent, ReplyBatch, RoundEnd, RoundStart
from repro.service.routes import build_app
from repro.service.state import MeasurementState
from repro.service.wsgi import JsonApp


class _QuietHandler(WSGIRequestHandler):
    """Request handler that never writes access logs to stderr."""

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request logging (the observer carries metrics)."""


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per request; daemon threads so shutdown never hangs."""

    daemon_threads = True


class MappingService:
    """Long-running service: feed in, JSON API out."""

    def __init__(
        self,
        state: MeasurementState,
        feed: Iterable[FeedEvent],
        observer: Optional[Observer] = None,
    ) -> None:
        self._state = state
        self._feed = iter(feed)
        self._observer = observer if observer is not None else state.observer
        self._app = build_app(state, observer=self._observer)
        self._stop = threading.Event()
        self._ingest_thread: Optional[threading.Thread] = None
        self._server: Optional[_ThreadingWSGIServer] = None
        self._server_thread: Optional[threading.Thread] = None

    @property
    def state(self) -> MeasurementState:
        """The measurement state this daemon maintains."""
        return self._state

    @property
    def app(self) -> JsonApp:
        """The WSGI app (callable directly, no socket needed, in tests)."""
        return self._app

    # -- ingest ------------------------------------------------------------

    def ingest(self, max_rounds: Optional[int] = None) -> int:
        """Drain the feed synchronously; returns rounds completed.

        Stops after ``max_rounds`` round ends (or feed exhaustion), and
        honours :meth:`shutdown`'s stop flag **only at round
        boundaries** — an open round is always finished and published,
        never abandoned half-ingested.
        """
        completed = 0
        state = self._state
        for event in self._feed:
            if isinstance(event, RoundStart):
                if self._stop.is_set():
                    break
                state.begin_round(
                    event.round_id,
                    event.start_time,
                    set(event.probed_addresses),
                )
            elif isinstance(event, ReplyBatch):
                state.ingest_batch(event.replies)
            elif isinstance(event, RoundEnd):
                state.end_round()
                completed += 1
                if self._stop.is_set():
                    break
                if max_rounds is not None and completed >= max_rounds:
                    break
            else:
                raise ServiceError(
                    f"unknown feed event type {type(event).__name__}"
                )
        return completed

    def start_ingest(self, max_rounds: Optional[int] = None) -> None:
        """Run :meth:`ingest` on a background thread."""
        if self._ingest_thread is not None:
            raise ServiceError("ingest is already running")
        self._ingest_thread = threading.Thread(
            target=self.ingest,
            kwargs={"max_rounds": max_rounds},
            name="repro-serve-ingest",
            daemon=True,
        )
        self._ingest_thread.start()

    # -- HTTP --------------------------------------------------------------

    def serve_http(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Start the HTTP front-end; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port (the default, so smoke runs
        and parallel test workers never collide).
        """
        if self._server is not None:
            raise ServiceError("the HTTP server is already running")
        self._server = make_server(
            host,
            port,
            self._app,
            server_class=_ThreadingWSGIServer,
            handler_class=_QuietHandler,
        )
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._server_thread.start()
        bound_host, bound_port = self._server.server_address[:2]
        return str(bound_host), int(bound_port)

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain and stop: finish the open round, then close the server."""
        self._stop.set()
        if self._ingest_thread is not None:
            self._ingest_thread.join(timeout=timeout)
            self._ingest_thread = None
        if self._server is not None:
            self._server.shutdown()
            if self._server_thread is not None:
                self._server_thread.join(timeout=timeout)
                self._server_thread = None
            self._server.server_close()
            self._server = None
