"""Endpoint handlers of the mapping service's JSON API.

Five read-only endpoints over a :class:`~repro.service.state.StateView`:

- ``GET /v1/health`` — liveness plus ingest progress counters.
- ``GET /v1/catchment/<block>`` — current site of one /24 block.
- ``GET /v1/load`` — windowed per-site load (daily, hourly, fractions).
- ``GET /v1/diff?rounds=N`` — catchment churn over the last N rounds.
- ``GET /v1/metrics`` — the observer's metrics document.

Every handler reads ``state.view`` exactly once, so a response is a
pure function of one published view: concurrent ingest can swap views
between requests but never mid-request, and the data endpoints answer
byte-identically to a quiesced daemon at the same round.  Endpoints
that need data before the first round completes answer a structured
409 rather than guessing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import HttpError
from repro.obs import Observer
from repro.service.state import MeasurementState, StateView
from repro.service.wsgi import JsonApp, Request

_MAX_BLOCK = 0xFFFFFFFFFFFFFFFF


def _require_rounds(view: StateView) -> StateView:
    """The view, or a 409 when no round has completed yet."""
    if view.rounds_completed == 0:
        raise HttpError(
            409, "no-rounds", "no measurement round has completed yet"
        )
    return view


def _parse_block(raw: str) -> int:
    """Decimal block key from the path, 400 on anything else."""
    try:
        block = int(raw)
    except ValueError:
        raise HttpError(
            400, "bad-block", f"block must be a decimal integer, got {raw!r}"
        ) from None
    if not 0 <= block <= _MAX_BLOCK:
        raise HttpError(400, "bad-block", "block outside the uint64 range")
    return block


def _site_load_document(load, site_codes) -> Dict[str, object]:
    """JSON-ready rendering of one ``SiteLoad`` (plain Python floats)."""
    fractions = load.fractions(include_unknown=True)
    return {
        "daily": {
            code: float(load.daily_of(code))
            for code in [*site_codes, "UNK"]
        },
        "hourly": {
            code: [float(value) for value in load.hourly_of(code)]
            for code in [*site_codes, "UNK"]
        },
        "fractions": {code: float(share) for code, share in fractions.items()},
        "total": float(load.total(include_unknown=True)),
        "unknown_fraction": float(load.unknown_fraction()),
    }


def build_app(
    state: MeasurementState, observer: Optional[Observer] = None
) -> JsonApp:
    """The service's WSGI app, with every route bound to ``state``."""
    resolved = observer if observer is not None else state.observer
    app = JsonApp(observer=resolved)

    def health(request: Request) -> Dict[str, object]:
        """Liveness: always 200, with ingest progress counters."""
        view = state.view
        return {
            "status": "ok",
            "rounds_completed": view.rounds_completed,
            "round_open": state.round_open,
            "quarantined_batches": view.quarantined_batches,
            "generation": view.generation,
        }

    def catchment(request: Request) -> Dict[str, object]:
        """Current site of one block (null when unmapped)."""
        view = _require_rounds(state.view)
        block = _parse_block(request.params["block"])
        return {
            "block": block,
            "site": view.catchment.site_of(block),
            "round_id": view.rounds[-1].round_id,
            "generation": view.generation,
        }

    def load(request: Request) -> Dict[str, object]:
        """Windowed load aggregate plus the latest round's own load."""
        view = _require_rounds(state.view)
        latest = view.rounds[-1]
        return {
            "round_id": latest.round_id,
            "window_size": view.window_size,
            "window": _site_load_document(view.window_load, view.site_codes),
            "latest_round": _site_load_document(latest.load, view.site_codes),
        }

    def diff(request: Request) -> Dict[str, object]:
        """Catchment churn between the round N back and the latest."""
        view = _require_rounds(state.view)
        span = request.query_int("rounds", default=1, minimum=1)
        available = len(view.rounds)
        if span + 1 > available:
            raise HttpError(
                400,
                "empty-window",
                f"diff over {span} round(s) needs {span + 1} rounds in the "
                f"ring; only {available} available",
            )
        earlier = view.rounds[-1 - span]
        latest = view.rounds[-1]
        delta = earlier.catchment.diff(latest.catchment)
        flipped: List[int] = [int(block) for block in delta.flipped_blocks]
        return {
            "from_round": earlier.round_id,
            "to_round": latest.round_id,
            "stable": delta.stable,
            "flipped": delta.flipped,
            "appeared": delta.appeared,
            "disappeared": delta.disappeared,
            "flipped_blocks": flipped,
        }

    def metrics(request: Request) -> Dict[str, object]:
        """The observer's full metrics document."""
        return resolved.metrics.to_dict()

    app.get("/v1/health", health)
    app.get("/v1/catchment/<block>", catchment)
    app.get("/v1/load", load)
    app.get("/v1/diff", diff)
    app.get("/v1/metrics", metrics)
    return app
