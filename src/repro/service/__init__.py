"""Always-on mapping service: streaming ingest, live state, JSON API.

The batch pipeline measures a catchment once; this package keeps one
*alive*.  A feed of measurement rounds (:mod:`repro.service.feed`)
streams through incremental cleaning and catchment/load state
(:mod:`repro.service.state`) and is queryable over a zero-dependency
JSON-over-WSGI API (:mod:`repro.service.wsgi`,
:mod:`repro.service.routes`) run by the daemon
(:mod:`repro.service.daemon`), also reachable as ``repro serve``.
"""

from repro.service.daemon import MappingService
from repro.service.feed import (
    FeedEvent,
    ReplyBatch,
    RoundEnd,
    RoundStart,
    replay_feed,
)
from repro.service.routes import build_app
from repro.service.state import (
    MeasurementState,
    RoundRecord,
    StateView,
    batch_replay,
)
from repro.service.wsgi import JsonApp, Request

__all__ = [
    "MappingService",
    "MeasurementState",
    "StateView",
    "RoundRecord",
    "batch_replay",
    "build_app",
    "JsonApp",
    "Request",
    "FeedEvent",
    "RoundStart",
    "ReplyBatch",
    "RoundEnd",
    "replay_feed",
]
