"""Incremental per-measurement state for the always-on mapping service.

A :class:`MeasurementState` folds an unbounded stream of measurement
rounds into three pieces of live state, none of which is ever rebuilt
from scratch:

- the **current catchment** — a
  :class:`~repro.anycast.catchment.CatchmentAccumulator` updated block
  by block as cleaned reply batches arrive;
- the **windowed load** — per-round
  :class:`~repro.load.weighting.SiteLoad` joins pushed through a
  :class:`~repro.load.windowed.LoadWindow` (the expensive
  catchment×load join runs once per round, never per query);
- a **ring of round snapshots** — the last N rounds'
  :class:`~repro.anycast.catchment.ArrayCatchmentMap` copies, for the
  diff endpoint.

Concurrency contract: the ingest thread mutates state freely *between*
:meth:`MeasurementState.begin_round` and
:meth:`MeasurementState.end_round`; queries never see any of it.  Only
``end_round`` publishes — it assembles an immutable :class:`StateView`
(snapshot catchment copy, finished loads, frozen round ring) and swaps
it in with one attribute assignment, which is atomic in CPython.  A
request served concurrently with ingest therefore returns bytes
identical to one served after the stream quiesces at the same round.

Robustness contract: a poisoned reply batch (anything that raises while
cleaning or applying it) is quarantined — counted, skipped, and the
round continues.  The underlying
:class:`~repro.collector.stream.StreamingCleaner` commits per batch
atomically, so a quarantined batch leaves no partial counts behind.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.anycast.catchment import ArrayCatchmentMap, CatchmentAccumulator
from repro.collector.cleaning import CleaningConfig, CleaningResult
from repro.collector.stream import StreamingCleaner
from repro.errors import ServiceError
from repro.icmp.network import DeliveredReply
from repro.load.estimator import LoadEstimate
from repro.load.weighting import SiteLoad, weight_catchment
from repro.load.windowed import LoadWindow
from repro.obs import NULL_OBSERVER, Observer


@dataclass(frozen=True)
class RoundRecord:
    """One completed round: its snapshot, load, and cleaning counts."""

    round_id: int
    start_time: float
    catchment: ArrayCatchmentMap
    load: SiteLoad
    kept: int
    wrong_round: int
    unsolicited: int
    late: int
    duplicates: int
    quarantined_batches: int
    changed_blocks: int


@dataclass(frozen=True)
class StateView:
    """Immutable published view the query side reads.

    Swapped in atomically at every round end; everything reachable
    from a view is frozen (snapshot copies, finished ``SiteLoad``
    results, a tuple ring), so readers need no locks.
    """

    site_codes: Tuple[str, ...]
    rounds: Tuple[RoundRecord, ...]
    catchment: Optional[ArrayCatchmentMap]
    window_load: Optional[SiteLoad]
    window_size: int
    rounds_completed: int
    quarantined_batches: int
    generation: int


_EMPTY_VIEW_SITES: Tuple[str, ...] = ()


class MeasurementState:
    """Live state of one measurement series, updated round by round."""

    def __init__(
        self,
        site_codes: Sequence[str],
        universe: np.ndarray,
        estimate: LoadEstimate,
        window_rounds: int = 4,
        ring_size: int = 8,
        cleaning: Optional[CleaningConfig] = None,
        observer: Optional[Observer] = None,
        weighter=None,
    ) -> None:
        if ring_size < 1:
            raise ServiceError("ring_size must be >= 1")
        self._site_codes = list(site_codes)
        self._site_index = {code: i for i, code in enumerate(self._site_codes)}
        self._estimate = estimate
        # The round-end load join, replaceable so a daemon can route it
        # through a ShardPool (same signature and bit-identical output
        # as weight_catchment when the pool-backed join is used).
        self._weighter = weighter if weighter is not None else weight_catchment
        self._cleaning = cleaning if cleaning is not None else CleaningConfig()
        self._observer = observer if observer is not None else NULL_OBSERVER
        self._accumulator = CatchmentAccumulator(self._site_codes, universe)
        self._window = LoadWindow(self._site_codes, window_rounds)
        self._ring: Deque[RoundRecord] = deque(maxlen=ring_size)
        self._rounds_completed = 0
        self._quarantined = 0
        self._cleaner: Optional[StreamingCleaner] = None
        self._round_id = 0
        self._round_start = 0.0
        self._round_quarantined = 0
        self._round_changed = 0
        self._view = StateView(
            site_codes=tuple(self._site_codes),
            rounds=(),
            catchment=None,
            window_load=None,
            window_size=0,
            rounds_completed=0,
            quarantined_batches=0,
            generation=0,
        )

    @property
    def observer(self) -> Observer:
        """The observer the service's spans and metrics flow through."""
        return self._observer

    @property
    def view(self) -> StateView:
        """The currently published (quiesced) view — safe from any thread."""
        return self._view

    @property
    def round_open(self) -> bool:
        """True between :meth:`begin_round` and :meth:`end_round`."""
        return self._cleaner is not None

    def begin_round(
        self,
        round_id: int,
        round_start: float,
        probed_addresses: Set[int],
    ) -> None:
        """Open a measurement round: arm a fresh streaming cleaner.

        ``round_id`` is the full measurement id; the cleaner masks it to
        the 16-bit ICMP identifier internally, so id rollover past
        65535 mid-stream just works — state stays keyed by the full id.
        """
        if self._cleaner is not None:
            raise ServiceError(
                f"round {self._round_id} is still open; end it first"
            )
        self._cleaner = StreamingCleaner(
            probed_addresses,
            round_id,
            round_start,
            config=self._cleaning,
            observer=self._observer,
        )
        self._round_id = round_id
        self._round_start = round_start
        self._round_quarantined = 0
        self._round_changed = 0

    def ingest_batch(
        self, replies: Sequence[DeliveredReply]
    ) -> Optional[CleaningResult]:
        """Clean one reply batch and fold its kept replies in, in place.

        Returns the batch's own cleaning result, or ``None`` when the
        batch was quarantined.  Kept replies update the catchment
        accumulator immediately (last write wins within the batch, same
        as a dict merge in stream order), so round-end needs no replay.
        """
        if self._cleaner is None:
            raise ServiceError("no round is open; call begin_round first")
        try:
            batch = self._cleaner.feed(replies)
            if batch.kept:
                blocks = np.array(
                    [reply.source_block for reply in batch.kept],
                    dtype=np.uint64,
                )
                indices = np.array(
                    [self._site_index[reply.site_code] for reply in batch.kept],
                    dtype=np.int16,
                )
                self._round_changed += self._accumulator.apply_blocks(
                    blocks, indices
                )
        except Exception:  # reprolint: disable=E302 — quarantine boundary: one poisoned batch must not kill the ingest loop; it is counted and skipped
            self._round_quarantined += 1
            self._quarantined += 1
            self._observer.metrics.counter("service.quarantined_batches").inc()
            return None
        return batch

    def end_round(self) -> RoundRecord:
        """Close the round, join load once, and publish the new view.

        Everything a query can reach is assembled *before* the single
        ``self._view`` swap: the accumulator snapshot (a copy — later
        rounds cannot mutate it), the per-round load join, the window
        aggregate, and the frozen ring tuple.
        """
        cleaner = self._cleaner
        if cleaner is None:
            raise ServiceError("no round is open; call begin_round first")
        totals = cleaner.totals
        with self._observer.tracer.span(
            "service.round_end", round_id=self._round_id
        ) as span:
            snapshot = self._accumulator.snapshot()
            load = self._weighter(
                snapshot, self._estimate, hourly=True, observer=self._observer
            )
            self._window.push(load)
            aggregate = self._window.aggregate()
            record = RoundRecord(
                round_id=self._round_id,
                start_time=self._round_start,
                catchment=snapshot,
                load=load,
                kept=len(totals.kept),
                wrong_round=totals.wrong_round,
                unsolicited=totals.unsolicited,
                late=totals.late,
                duplicates=totals.duplicates,
                quarantined_batches=self._round_quarantined,
                changed_blocks=self._round_changed,
            )
            self._ring.append(record)
            self._rounds_completed += 1
            span.set(kept=record.kept, changed=record.changed_blocks)
        metrics = self._observer.metrics
        metrics.gauge("service.rounds_completed").set(self._rounds_completed)
        metrics.gauge("service.mapped_blocks").set(len(self._accumulator))
        metrics.counter("service.changed_blocks").inc(self._round_changed)
        self._cleaner = None
        # Publish: one atomic swap; readers see old or new, never partial.
        self._view = StateView(
            site_codes=tuple(self._site_codes),
            rounds=tuple(self._ring),
            catchment=snapshot,
            window_load=aggregate,
            window_size=len(self._window),
            rounds_completed=self._rounds_completed,
            quarantined_batches=self._quarantined,
            generation=self._accumulator.generation,
        )
        return record


def batch_replay(
    state_site_codes: Sequence[str],
    universe: np.ndarray,
    rounds: Sequence[ArrayCatchmentMap],
) -> ArrayCatchmentMap:
    """Batch reference for the accumulator: merge whole rounds in order.

    Rebuilds the "current catchment" the slow, obviously-correct way —
    fold each round's mapped blocks over the previous state — for the
    equivalence tests that pin the incremental path against it.
    """
    accumulator = CatchmentAccumulator(state_site_codes, universe)
    for round_map in rounds:
        accumulator.apply_catchment(round_map)
    return accumulator.snapshot()
