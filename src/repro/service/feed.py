"""Reply-stream feeds that drive the always-on mapping service.

The daemon consumes a flat event stream — :class:`RoundStart`, then any
number of :class:`ReplyBatch` events, then :class:`RoundEnd`, repeated
per round.  :func:`replay_feed` produces that stream from a
:class:`~repro.core.verfploeter.Verfploeter` deployment by running the
same fast-path round the batch scanner runs (schedule → simulated
dataplane → per-site captures → central sorted merge) and then slicing
the merged, globally sorted replies into batches.

Because each round's concatenated batches are exactly the central
collector's sorted drain, the streaming cleaner's equivalence contract
holds (see :mod:`repro.collector.stream`): the service's incremental
state is bit-identical to a batch ``run_scan`` over the same rounds.
The generator is lazy — one round's replies are materialised at a
time, so an arbitrarily long series streams in bounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Optional, Tuple, Union

from repro.bgp.propagation import RoutingOutcome
from repro.collector.aggregate import CentralCollector
from repro.collector.capture import StreamingCapture
from repro.core.verfploeter import Verfploeter
from repro.errors import ServiceError
from repro.icmp.network import DeliveredReply, SimulatedDataplane


@dataclass(frozen=True)
class RoundStart:
    """A measurement round opened: the probes are on the wire."""

    round_id: int
    start_time: float
    probed_addresses: FrozenSet[int]
    probes_sent: int


@dataclass(frozen=True)
class ReplyBatch:
    """One batch of delivered replies, in global collector sort order."""

    round_id: int
    replies: Tuple[DeliveredReply, ...]


@dataclass(frozen=True)
class RoundEnd:
    """The round's reply stream is exhausted."""

    round_id: int


FeedEvent = Union[RoundStart, ReplyBatch, RoundEnd]


def replay_feed(
    verfploeter: Verfploeter,
    routing: Optional[RoutingOutcome] = None,
    rounds: int = 1,
    interval_seconds: float = 900.0,
    batch_size: int = 512,
    start_round: int = 0,
) -> Iterator[FeedEvent]:
    """Generate the event stream of ``rounds`` measurement rounds.

    ``start_round`` offsets the measurement ids (``start_round=65535``
    exercises the 16-bit ICMP identifier rollover mid-stream).  Round
    ``r`` starts at ``(r - start_round) * interval_seconds``, matching
    a series begun when the daemon came up.
    """
    if rounds < 1:
        raise ServiceError("rounds must be >= 1")
    if batch_size < 1:
        raise ServiceError("batch_size must be >= 1")
    if routing is None:
        routing = verfploeter.routing_for()
    observer = verfploeter.observer
    for index in range(rounds):
        round_id = start_round + index
        start_time = index * interval_seconds
        with observer.tracer.span("service.feed.round", round_id=round_id):
            dataplane = SimulatedDataplane(routing, verfploeter.latency_model)
            collector = CentralCollector(
                [
                    StreamingCapture(site.code)
                    for site in verfploeter.service.sites
                ],
                observer=observer,
            )
            schedule = verfploeter.prober.schedule_round(round_id, start_time)
            probed = set()
            for probe in schedule:
                probed.add(probe.destination)
                for reply in dataplane.send_probe_fast(
                    probe.destination,
                    probe.identifier,
                    probe.sequence,
                    probe.send_time,
                    round_id,
                ):
                    collector.ingest(reply)
            replies = collector.collect()
        yield RoundStart(
            round_id=round_id,
            start_time=start_time,
            probed_addresses=frozenset(probed),
            probes_sent=len(schedule),
        )
        for offset in range(0, len(replies), batch_size):
            yield ReplyBatch(
                round_id=round_id,
                replies=tuple(replies[offset : offset + batch_size]),
            )
        yield RoundEnd(round_id=round_id)
