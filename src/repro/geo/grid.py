"""Two-degree geographic grid.

The paper's coverage maps (Figures 2-4) aggregate VPs/blocks/load into
two-degree geographic bins, each rendered as a pie chart of anycast
sites.  :class:`GeoGrid` produces exactly that aggregation: per-cell
totals keyed by site label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import ConfigurationError


@dataclass
class GridCell:
    """One grid cell: site label -> accumulated weight."""

    lat_index: int
    lon_index: int
    weights: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum of weights across all sites in this cell."""
        return sum(self.weights.values())

    def dominant_site(self) -> str:
        """Site with the largest weight (ties broken alphabetically)."""
        return min(self.weights, key=lambda site: (-self.weights[site], site))


class GeoGrid:
    """Aggregates weighted observations into fixed-degree geographic bins."""

    def __init__(self, cell_degrees: float = 2.0) -> None:
        if cell_degrees <= 0:
            raise ConfigurationError("cell_degrees must be positive")
        self._degrees = cell_degrees
        self._cells: Dict[Tuple[int, int], GridCell] = {}

    @property
    def cell_degrees(self) -> float:
        """Edge length of each cell in degrees."""
        return self._degrees

    def _indices(self, latitude: float, longitude: float) -> Tuple[int, int]:
        if not -90.0 <= latitude <= 90.0:
            raise ConfigurationError(f"latitude {latitude} out of range")
        if not -180.0 <= longitude <= 180.0:
            raise ConfigurationError(f"longitude {longitude} out of range")
        lat_index = int((latitude + 90.0) // self._degrees)
        lon_index = int((longitude + 180.0) // self._degrees)
        return lat_index, lon_index

    def add(self, latitude: float, longitude: float, site: str, weight: float = 1.0) -> None:
        """Accumulate ``weight`` for ``site`` in the cell containing the point."""
        key = self._indices(latitude, longitude)
        cell = self._cells.get(key)
        if cell is None:
            cell = GridCell(key[0], key[1])
            self._cells[key] = cell
        cell.weights[site] = cell.weights.get(site, 0.0) + weight

    def cells(self) -> Iterator[GridCell]:
        """Yield populated cells in (lat, lon) index order."""
        for key in sorted(self._cells):
            yield self._cells[key]

    def __len__(self) -> int:
        return len(self._cells)

    def site_totals(self) -> Dict[str, float]:
        """Total weight per site across the whole grid."""
        totals: Dict[str, float] = {}
        for cell in self._cells.values():
            for site, weight in cell.weights.items():
                totals[site] = totals.get(site, 0.0) + weight
        return totals

    def top_cells(self, count: int) -> List[GridCell]:
        """The ``count`` heaviest cells, largest first."""
        return sorted(self._cells.values(), key=lambda cell: -cell.total)[:count]
