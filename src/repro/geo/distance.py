"""Great-circle distance."""

from __future__ import annotations

import math

EARTH_RADIUS_KM = 6371.0


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two (lat, lon) points."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))
