"""World model: regions and countries.

Countries carry three things the simulation needs:

* an approximate bounding box, so blocks can be scattered at plausible
  coordinates for the 2-degree map figures;
* an Internet-user weight, so the synthetic topology puts networks where
  users are (the paper stresses that RIPE Atlas does *not* follow this
  distribution while Verfploeter's passive VPs do);
* an Atlas deployment weight, modelling RIPE Atlas's well-documented
  Europe skew (paper §5.4 and [8]).

Figures are coarse by design — the reproduction needs relative shape,
not census precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError


class Region:
    """Continental region labels."""

    NORTH_AMERICA = "NA"
    SOUTH_AMERICA = "SA"
    EUROPE = "EU"
    AFRICA = "AF"
    ASIA = "AS"
    OCEANIA = "OC"

    ALL = (NORTH_AMERICA, SOUTH_AMERICA, EUROPE, AFRICA, ASIA, OCEANIA)


@dataclass(frozen=True)
class Country:
    """A country with placement box and sampling weights.

    ``internet_weight`` is proportional to Internet-user population;
    ``atlas_weight`` is proportional to RIPE Atlas probe density, which
    is deliberately skewed toward Europe.
    """

    code: str
    name: str
    region: str
    lat_range: Tuple[float, float]
    lon_range: Tuple[float, float]
    internet_weight: float
    atlas_weight: float

    @property
    def centroid(self) -> Tuple[float, float]:
        """Approximate (lat, lon) centre of the bounding box."""
        return (
            (self.lat_range[0] + self.lat_range[1]) / 2.0,
            (self.lon_range[0] + self.lon_range[1]) / 2.0,
        )


def _country(
    code: str,
    name: str,
    region: str,
    lat: Tuple[float, float],
    lon: Tuple[float, float],
    internet: float,
    atlas: float,
) -> Country:
    return Country(code, name, region, lat, lon, internet, atlas)


# Internet weights roughly track 2017 Internet-user counts (millions);
# Atlas weights roughly track RIPE Atlas probe counts per country.
COUNTRIES: List[Country] = [
    # North America
    _country("US", "United States", Region.NORTH_AMERICA, (25, 48), (-124, -68), 290, 900),
    _country("CA", "Canada", Region.NORTH_AMERICA, (43, 57), (-128, -55), 33, 160),
    _country("MX", "Mexico", Region.NORTH_AMERICA, (15, 31), (-115, -88), 76, 25),
    # South America
    _country("BR", "Brazil", Region.SOUTH_AMERICA, (-32, 0), (-70, -36), 140, 60),
    _country("AR", "Argentina", Region.SOUTH_AMERICA, (-52, -23), (-71, -55), 34, 18),
    _country("CL", "Chile", Region.SOUTH_AMERICA, (-52, -19), (-74, -68), 14, 10),
    _country("PE", "Peru", Region.SOUTH_AMERICA, (-17, -1), (-80, -69), 14, 5),
    _country("CO", "Colombia", Region.SOUTH_AMERICA, (-3, 11), (-78, -68), 28, 8),
    # Europe — heavy Atlas weights on purpose
    _country("DE", "Germany", Region.EUROPE, (47, 55), (6, 14), 72, 1300),
    _country("FR", "France", Region.EUROPE, (43, 50), (-4, 7), 56, 800),
    _country("GB", "United Kingdom", Region.EUROPE, (50, 58), (-7, 1), 62, 700),
    _country("NL", "Netherlands", Region.EUROPE, (51, 53), (4, 7), 16, 600),
    _country("ES", "Spain", Region.EUROPE, (36, 43), (-9, 3), 39, 200),
    _country("IT", "Italy", Region.EUROPE, (37, 46), (7, 18), 39, 250),
    _country("PL", "Poland", Region.EUROPE, (49, 54), (14, 24), 28, 150),
    _country("SE", "Sweden", Region.EUROPE, (55, 66), (11, 23), 9, 180),
    _country("DK", "Denmark", Region.EUROPE, (55, 57), (8, 12), 5, 130),
    _country("CZ", "Czechia", Region.EUROPE, (49, 51), (12, 19), 9, 200),
    _country("RU", "Russia", Region.EUROPE, (50, 62), (30, 110), 110, 300),
    _country("UA", "Ukraine", Region.EUROPE, (45, 52), (22, 38), 21, 110),
    _country("TR", "Turkey", Region.EUROPE, (36, 42), (26, 44), 48, 40),
    # Africa
    _country("ZA", "South Africa", Region.AFRICA, (-34, -23), (17, 32), 29, 40),
    _country("NG", "Nigeria", Region.AFRICA, (4, 13), (3, 14), 47, 8),
    _country("EG", "Egypt", Region.AFRICA, (22, 31), (25, 35), 37, 6),
    _country("KE", "Kenya", Region.AFRICA, (-4, 4), (34, 41), 21, 10),
    _country("MA", "Morocco", Region.AFRICA, (28, 35), (-12, -2), 19, 5),
    # Asia — many users, few Atlas probes (esp. CN, KR)
    _country("CN", "China", Region.ASIA, (21, 45), (80, 122), 720, 15),
    _country("IN", "India", Region.ASIA, (8, 30), (69, 89), 390, 50),
    _country("JP", "Japan", Region.ASIA, (32, 43), (130, 144), 115, 100),
    _country("KR", "South Korea", Region.ASIA, (34, 38), (126, 129), 45, 12),
    _country("ID", "Indonesia", Region.ASIA, (-9, 4), (96, 139), 105, 30),
    _country("VN", "Vietnam", Region.ASIA, (9, 22), (103, 108), 50, 6),
    _country("TH", "Thailand", Region.ASIA, (6, 20), (98, 105), 38, 10),
    _country("PK", "Pakistan", Region.ASIA, (24, 36), (61, 76), 35, 5),
    _country("IR", "Iran", Region.ASIA, (26, 38), (45, 61), 42, 20),
    _country("SA", "Saudi Arabia", Region.ASIA, (17, 31), (36, 54), 24, 6),
    _country("IL", "Israel", Region.ASIA, (30, 33), (34, 36), 6, 40),
    _country("SG", "Singapore", Region.ASIA, (1, 2), (103, 104), 5, 60),
    # Oceania
    _country("AU", "Australia", Region.OCEANIA, (-38, -17), (115, 152), 21, 120),
    _country("NZ", "New Zealand", Region.OCEANIA, (-46, -35), (167, 178), 4, 40),
]

_BY_CODE: Dict[str, Country] = {country.code: country for country in COUNTRIES}


def country_by_code(code: str) -> Country:
    """Look up a country by ISO-like two-letter code."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise ConfigurationError(f"unknown country code {code!r}") from None


def countries_in_region(region: str) -> List[Country]:
    """All modelled countries inside a continental region."""
    if region not in Region.ALL:
        raise ConfigurationError(f"unknown region {region!r}")
    return [country for country in COUNTRIES if country.region == region]
