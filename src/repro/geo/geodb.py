"""Block-level geolocation database (MaxMind GeoLite stand-in).

The paper geolocates responding /24 blocks with MaxMind, noting accuracy
is reasonable at country level.  Our database maps block ids to
``GeoRecord`` entries and deliberately leaves a small fraction of blocks
unlocatable (the paper discards 678 of 3.8M blocks for this reason).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import DatasetError


@dataclass(frozen=True)
class GeoRecord:
    """Geolocation of one /24 block."""

    country_code: str
    latitude: float
    longitude: float


class GeoDatabase:
    """Maps /24 block ids to :class:`GeoRecord` entries."""

    def __init__(self) -> None:
        self._records: Dict[int, GeoRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, block: int) -> bool:
        return block in self._records

    def add(self, block: int, record: GeoRecord) -> None:
        """Register the location of ``block`` (replacing any previous one)."""
        self._records[block] = record

    def add_many(self, entries: Iterable[Tuple[int, GeoRecord]]) -> None:
        """Bulk insert ``(block, record)`` pairs."""
        self._records.update(entries)

    def locate(self, block: int) -> Optional[GeoRecord]:
        """Return the record for ``block`` or None when unlocatable."""
        return self._records.get(block)

    def country_of(self, block: int) -> Optional[str]:
        """Country code for ``block`` or None when unlocatable."""
        record = self._records.get(block)
        return record.country_code if record is not None else None

    def items(self) -> Iterator[Tuple[int, GeoRecord]]:
        """Yield all ``(block, record)`` pairs."""
        return iter(self._records.items())

    def require(self, block: int) -> GeoRecord:
        """Return the record for ``block`` or raise :class:`DatasetError`."""
        record = self._records.get(block)
        if record is None:
            raise DatasetError(f"block {block} has no geolocation")
        return record
