"""Block-level geolocation database (MaxMind GeoLite stand-in).

The paper geolocates responding /24 blocks with MaxMind, noting accuracy
is reasonable at country level.  Our database maps block ids to
``GeoRecord`` entries and deliberately leaves a small fraction of blocks
unlocatable (the paper discards 678 of 3.8M blocks for this reason).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.errors import DatasetError


@dataclass(frozen=True)
class GeoRecord:
    """Geolocation of one /24 block."""

    country_code: str
    latitude: float
    longitude: float


@dataclass(frozen=True)
class GeoColumns:
    """Columnar snapshot of a :class:`GeoDatabase`.

    ``blocks`` ascend; ``latitudes``/``longitudes``/``country_index``
    align row-for-row.  ``country_index`` indexes into ``countries``
    (sorted unique country codes) so per-country scalars — e.g. host
    responsiveness — can be broadcast over all located blocks at once.
    """

    blocks: np.ndarray
    latitudes: np.ndarray
    longitudes: np.ndarray
    country_index: np.ndarray
    countries: Tuple[str, ...]


class GeoDatabase:
    """Maps /24 block ids to :class:`GeoRecord` entries."""

    def __init__(self) -> None:
        self._records: Dict[int, GeoRecord] = {}
        self._columns: Optional[GeoColumns] = None
        self._columns_pid: Optional[int] = None

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, block: int) -> bool:
        return block in self._records

    def add(self, block: int, record: GeoRecord) -> None:
        """Register the location of ``block`` (replacing any previous one)."""
        self._records[block] = record
        self._columns = None
        self._columns_pid = None

    def add_many(self, entries: Iterable[Tuple[int, GeoRecord]]) -> None:
        """Bulk insert ``(block, record)`` pairs."""
        self._records.update(entries)
        self._columns = None
        self._columns_pid = None

    def locate(self, block: int) -> Optional[GeoRecord]:
        """Return the record for ``block`` or None when unlocatable."""
        return self._records.get(block)

    def country_of(self, block: int) -> Optional[str]:
        """Country code for ``block`` or None when unlocatable."""
        record = self._records.get(block)
        return record.country_code if record is not None else None

    def items(self) -> Iterator[Tuple[int, GeoRecord]]:
        """Yield all ``(block, record)`` pairs."""
        return iter(self._records.items())

    def require(self, block: int) -> GeoRecord:
        """Return the record for ``block`` or raise :class:`DatasetError`."""
        record = self._records.get(block)
        if record is None:
            raise DatasetError(f"block {block} has no geolocation")
        return record

    def columnar(self) -> GeoColumns:
        """Cached columnar snapshot, rebuilt after any insert.

        One Python pass over the records; every later consumer joins
        against the sorted block array with ``searchsorted`` instead of
        issuing a dict probe per block.
        """
        if self._columns is None or self._columns_pid != os.getpid():
            blocks = sorted(self._records)
            count = len(blocks)
            countries = tuple(
                sorted({record.country_code for record in self._records.values()})
            )
            country_row = {code: row for row, code in enumerate(countries)}
            latitudes = np.empty(count, dtype=np.float64)
            longitudes = np.empty(count, dtype=np.float64)
            country_index = np.empty(count, dtype=np.int32)
            for row, block in enumerate(blocks):
                record = self._records[block]
                latitudes[row] = record.latitude
                longitudes[row] = record.longitude
                country_index[row] = country_row[record.country_code]
            self._columns = GeoColumns(
                blocks=np.asarray(blocks, dtype=np.int64),
                latitudes=latitudes,
                longitudes=longitudes,
                country_index=country_index,
                countries=countries,
            )
            self._columns_pid = os.getpid()
        return self._columns

    def attach_columns(self, columns: GeoColumns) -> None:
        """Adopt a prebuilt (possibly memory-mapped) columnar snapshot.

        Persisted scenarios re-attach their snapshot instead of paying
        the per-record Python rebuild.  The row count must match the
        database; contents are trusted (fingerprint-keyed).
        """
        if columns.blocks.shape != (len(self._records),):
            raise DatasetError(
                "attached geo columns do not match the database size"
            )
        self._columns = columns
        self._columns_pid = os.getpid()

    def join(self, blocks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Locate many blocks at once.

        Returns ``(rows, located)``: for each of ``blocks``, its row in
        the :meth:`columnar` arrays (meaningless where ``located`` is
        False) and whether the database knows it.
        """
        columns = self.columnar()
        keys = np.asarray(blocks, dtype=np.int64)
        if columns.blocks.size == 0 or keys.size == 0:
            return (
                np.zeros(keys.shape, dtype=np.int64),
                np.zeros(keys.shape, dtype=bool),
            )
        rows = np.searchsorted(columns.blocks, keys)
        rows = np.minimum(rows, columns.blocks.size - 1)
        located = columns.blocks[rows] == keys
        return rows, located
