"""Geolocation substrate.

Provides the world model used to place ASes and /24 blocks (continents,
countries with Internet-user weights and bounding boxes), a MaxMind-like
block-level geolocation database, great-circle distance, and the
two-degree geographic grid used by the paper's coverage maps
(Figures 2-4).
"""

from repro.geo.distance import haversine_km
from repro.geo.geodb import GeoDatabase, GeoRecord
from repro.geo.grid import GeoGrid, GridCell
from repro.geo.regions import (
    COUNTRIES,
    Country,
    Region,
    country_by_code,
    countries_in_region,
)

__all__ = [
    "Country",
    "Region",
    "COUNTRIES",
    "country_by_code",
    "countries_in_region",
    "GeoDatabase",
    "GeoRecord",
    "GeoGrid",
    "GridCell",
    "haversine_km",
]
