"""Announcement policy: which sites announce, with how much prepending.

AS-path prepending (paper §6.1, Figure 5) artificially lengthens the
path of one site's announcement to shift its catchment to other sites.
An :class:`AnnouncementPolicy` captures one BGP configuration of the
anycast service: the set of announcing sites and per-site prepend
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SiteAnnouncement:
    """One site's announcement into its upstream AS.

    ``prepend`` of 0 means the plain announcement (path length 1 as seen
    at the upstream); each extra prepend adds one to the path length.

    ``no_export_to`` models NO_EXPORT-style BGP communities (the paper's
    §6.1 "more subtle methods of route control"): the upstream withholds
    this announcement from the listed neighbour ASes.  Those neighbours
    can still learn the route indirectly through other ASes — exactly
    the one-hop semantics of a targeted no-export community.  Honoured
    by the event-driven update simulator
    (:class:`repro.bgp.updates.BgpUpdateSimulator`).
    """

    site_code: str
    upstream_asn: int
    prepend: int = 0
    no_export_to: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.prepend < 0:
            raise ConfigurationError(f"negative prepend for {self.site_code}")

    @property
    def effective_length(self) -> int:
        """AS-path length as seen at the upstream AS."""
        return 1 + self.prepend


class AnnouncementPolicy:
    """A complete announcement configuration for an anycast service."""

    def __init__(self, announcements: Iterable[SiteAnnouncement]) -> None:
        self._announcements: List[SiteAnnouncement] = list(announcements)
        if not self._announcements:
            raise ConfigurationError("policy must announce at least one site")
        codes = [entry.site_code for entry in self._announcements]
        if len(set(codes)) != len(codes):
            raise ConfigurationError("duplicate site in announcement policy")

    @classmethod
    def uniform(
        cls,
        upstreams: Mapping[str, int],
        prepends: Optional[Mapping[str, int]] = None,
        withdrawn: Iterable[str] = (),
    ) -> "AnnouncementPolicy":
        """Build a policy from ``site -> upstream ASN`` with optional prepends.

        ``withdrawn`` sites are omitted entirely (site removal what-ifs).
        """
        prepends = dict(prepends or {})
        withdrawn_set = set(withdrawn)
        unknown = set(prepends) - set(upstreams)
        if unknown:
            raise ConfigurationError(f"prepends for unknown sites: {sorted(unknown)}")
        unknown = withdrawn_set - set(upstreams)
        if unknown:
            raise ConfigurationError(f"withdrawing unknown sites: {sorted(unknown)}")
        announcements = [
            SiteAnnouncement(code, asn, prepends.get(code, 0))
            for code, asn in sorted(upstreams.items())
            if code not in withdrawn_set
        ]
        return cls(announcements)

    @property
    def announcements(self) -> List[SiteAnnouncement]:
        """The per-site announcements in site-code order."""
        return list(self._announcements)

    @property
    def site_codes(self) -> List[str]:
        """Announcing site codes."""
        return [entry.site_code for entry in self._announcements]

    def prepend_of(self, site_code: str) -> int:
        """Prepend count for ``site_code`` (raises if not announcing)."""
        for entry in self._announcements:
            if entry.site_code == site_code:
                return entry.prepend
        raise ConfigurationError(f"site {site_code!r} is not announcing")

    def with_prepend(self, site_code: str, prepend: int) -> "AnnouncementPolicy":
        """Return a copy with ``site_code``'s prepend replaced."""
        if site_code not in self.site_codes:
            raise ConfigurationError(f"site {site_code!r} is not announcing")
        return AnnouncementPolicy(
            replace(entry, prepend=prepend)
            if entry.site_code == site_code
            else entry
            for entry in self._announcements
        )

    def with_no_export(
        self, site_code: str, neighbor_asns: Iterable[int]
    ) -> "AnnouncementPolicy":
        """Return a copy where ``site_code``'s announcement carries a
        NO_EXPORT-style community toward ``neighbor_asns``."""
        if site_code not in self.site_codes:
            raise ConfigurationError(f"site {site_code!r} is not announcing")
        blocked = tuple(sorted(set(neighbor_asns)))
        return AnnouncementPolicy(
            replace(entry, no_export_to=blocked)
            if entry.site_code == site_code
            else entry
            for entry in self._announcements
        )

    def describe(self) -> str:
        """Short human-readable description, e.g. ``"equal"`` or ``"MIA+2"``.

        Mirrors the labels in the paper's Figure 5/6 x-axis.
        """
        prepended = [
            (entry.site_code, entry.prepend)
            for entry in self._announcements
            if entry.prepend
        ]
        if not prepended:
            return "equal"
        return ",".join(f"{code}+{count}" for code, count in prepended)

    def as_dict(self) -> Dict[str, int]:
        """Mapping of site code to prepend count."""
        return {entry.site_code: entry.prepend for entry in self._announcements}
