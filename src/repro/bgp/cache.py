"""Content-addressed cache of routing outcomes.

Sweeps and planning searches evaluate the same announcement policies
repeatedly (benchmarks re-run configurations, stability series reuse
one policy across 96 rounds, placement search revisits baselines).  A
:class:`RoutingCache` keys fully-computed :class:`RoutingOutcome`
objects by *content* — the internet's identity, the policy's complete
announcement tuple, the :class:`RoutingConfig` and the flip model — so
a repeated scenario is a dictionary hit rather than a propagation.

On a miss the cache prefers an **incremental** compute: if any cached
outcome shares the same internet object, config and flip model, it is
used as a :class:`~repro.bgp.delta.DeltaPropagator` baseline and only
the affected route selections are rebuilt.  Delta reuse requires object
identity on the internet (``is``), not just an equal fingerprint: the
delta engine splices baseline selection objects, which is only sound
against the very topology they were built from.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.bgp.delta import DeltaPropagator
from repro.bgp.instability import FlipModel
from repro.bgp.policy import AnnouncementPolicy
from repro.bgp.propagation import (
    RoutingConfig,
    RoutingOutcome,
    compute_routes,
)
from repro.errors import ConfigurationError
from repro.obs import NULL_OBSERVER, Observer
from repro.topology.internet import Internet


def policy_fingerprint(policy: AnnouncementPolicy) -> tuple:
    """Hashable identity of a policy's complete announcement set."""
    return tuple(
        (entry.site_code, entry.upstream_asn, entry.prepend, entry.no_export_to)
        for entry in policy.announcements
    )


def policy_digest(policy: AnnouncementPolicy) -> str:
    """Short stable hex id of a policy's announcement set.

    A blake2b-8 digest of the same announcement tuple that keys the
    :class:`RoutingCache`, so two policies share a digest exactly when
    they share a cache identity (with internet, config and flip model
    held fixed, as they are within one planning search).  The playbook
    planner uses it as the config-lattice key: stable across processes
    and runs, usable in dataset ids and artifact JSON, and ties every
    ranked playbook row back to the routing state that produced it.
    """
    payload = repr(policy_fingerprint(policy)).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def internet_fingerprint(internet: Internet) -> tuple:
    """Hashable identity of a generated topology.

    Topologies are pure functions of their seed and size parameters,
    so (seed, headline counts) identifies one; two distinct Internet
    objects with equal fingerprints hold identical graphs.
    """
    summary = internet.summary()
    return (
        internet.seed,
        summary["ases"],
        summary["pops"],
        summary["announced_prefixes"],
        summary["blocks"],
    )


@dataclass
class CacheStats:
    """Where each lookup was served from."""

    hits: int = 0
    full_computes: int = 0
    delta_computes: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of get_or_compute calls."""
        return self.hits + self.full_computes + self.delta_computes

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served straight from the LRU (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    outcome: RoutingOutcome
    config: RoutingConfig
    flip_fingerprint: tuple = field(default_factory=tuple)


class RoutingCache:
    """LRU cache of routing outcomes with delta-based miss handling."""

    def __init__(
        self, maxsize: int = 64, observer: Optional[Observer] = None
    ) -> None:
        if maxsize < 1:
            raise ConfigurationError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def _key(
        self,
        internet: Internet,
        policy: AnnouncementPolicy,
        config: RoutingConfig,
        flip_fingerprint: tuple,
    ) -> tuple:
        return (
            internet_fingerprint(internet),
            policy_fingerprint(policy),
            config,
            flip_fingerprint,
        )

    def _find_baseline(
        self, internet: Internet, config: RoutingConfig, flip_fingerprint: tuple
    ) -> Optional[RoutingOutcome]:
        """Most recently used cached outcome usable as a delta baseline."""
        for entry in reversed(self._entries.values()):
            outcome = entry.outcome
            if (
                outcome.internet is internet
                and outcome.state is not None
                and entry.config == config
                and entry.flip_fingerprint == flip_fingerprint
            ):
                return outcome
        return None

    def get_or_compute(
        self,
        internet: Internet,
        policy: AnnouncementPolicy,
        flip_model: Optional[FlipModel] = None,
        config: Optional[RoutingConfig] = None,
    ) -> RoutingOutcome:
        """The outcome for (internet, policy, config, flip model).

        Hit: the cached outcome, LRU-refreshed.  Miss with a usable
        baseline: delta propagation.  Cold miss: full propagation.
        Results are bit-identical across all three paths, so callers
        never need to know which one served them.
        """
        resolved_config = config or RoutingConfig()
        resolved_flip = flip_model or FlipModel(internet.seed)
        flip_fp = resolved_flip.fingerprint()
        key = self._key(internet, policy, resolved_config, flip_fp)
        observer = self.observer
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                observer.metrics.counter("routing.cache.hits").inc()
                return entry.outcome
            baseline = self._find_baseline(internet, resolved_config, flip_fp)
        # Propagation runs outside the lock: concurrent misses for the
        # same key both compute, but results are deterministic and
        # identical, so whichever insert wins is indistinguishable.
        if baseline is not None:
            with observer.tracer.span("bgp.propagate.delta"):
                outcome = DeltaPropagator(baseline).propagate(policy)
            observer.metrics.counter("routing.cache.delta_computes").inc()
            with self._lock:
                self.stats.delta_computes += 1
        else:
            with observer.tracer.span("bgp.propagate.full"):
                outcome = compute_routes(
                    internet, policy, flip_model=resolved_flip,
                    config=resolved_config,
                )
            observer.metrics.counter("routing.cache.full_computes").inc()
            with self._lock:
                self.stats.full_computes += 1
        with self._lock:
            if key not in self._entries:
                self._entries[key] = _Entry(outcome, resolved_config, flip_fp)
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                    observer.metrics.counter("routing.cache.evictions").inc()
            else:
                self._entries.move_to_end(key)
            return self._entries[key].outcome

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        with self._lock:
            self._entries.clear()


_default_cache: Optional[RoutingCache] = None
_default_cache_lock = threading.Lock()


def default_routing_cache() -> RoutingCache:
    """Process-wide cache shared by experiment drivers (small LRU)."""
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = RoutingCache(maxsize=16)
        return _default_cache
