"""Route representations."""

from __future__ import annotations

from dataclasses import dataclass


class RouteClass:
    """Local-preference classes, ordered best-first.

    Gao-Rexford: routes learned from customers beat routes learned from
    peers beat routes learned from providers, regardless of path length.
    """

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2

    NAMES = {CUSTOMER: "customer", PEER: "peer", PROVIDER: "provider"}


@dataclass(frozen=True)
class CandidateRoute:
    """One equally-preferred route available at an AS.

    ``neighbor_asn`` is the next hop (0 for a route learned directly
    from the anycast service itself); ``site_code`` is the anycast site
    the route ultimately leads to; ``path_length`` is the AS-path length
    as observed at the selecting AS (prepending inflates it).
    """

    neighbor_asn: int
    site_code: str
    path_length: int
    route_class: int

    @property
    def class_name(self) -> str:
        """Human-readable route class."""
        return RouteClass.NAMES[self.route_class]
