"""Incremental (delta) route propagation.

Scenario sweeps — prepend ladders (paper §6.1), site-withdrawal
what-ifs, placement searches — evaluate many announcement policies that
differ from a baseline at only a handful of sites.  Re-running the full
Gao-Rexford propagation for each is wasteful: the expensive part is
building per-AS :class:`RouteSelection` objects (candidate tuples,
tie-hashes, near-route maps), and most of them cannot change when one
site's prepend moves.

:class:`DeltaPropagator` recomputes an outcome against a baseline in
three steps per phase:

1. Re-run the *distance* Dijkstras in full.  They are integer-only and
   an order of magnitude cheaper than selection building; having exact
   new distances makes the change cone precise instead of guessed.
2. Diff the new distances (and origin entries / export lengths) against
   the baseline's retained :class:`_PropagationState` to seed a dirty
   set: every AS whose distance changed, plus all of its neighbours
   (their processing *order* relative to the changed AS may have moved,
   which can flip which offers they see).
3. Walk the phase's resolution order.  Clean ASes splice the baseline's
   selection object through unchanged (structural sharing); dirty ASes
   rebuild their selection, and if the rebuilt selection differs from
   the baseline's the AS's neighbours are marked dirty too — consumers
   always resolve later in phase order, so the marks are seen in time.

Over-marking only costs recomputation; the bit-equality invariant (the
delta outcome's selections are field-identical to a scratch
``compute_routes`` run under the same config) is enforced by the
equivalence suite in ``tests/test_bgp_delta.py``.

Baseline selection objects are never mutated: when a spliced selection
needs a different alternate site (possible only when the announcing
site list changed), it is copied with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set

from repro.bgp.instability import FlipModel
from repro.bgp.policy import AnnouncementPolicy
from repro.bgp.propagation import (
    RouteSelection,
    RoutingOutcome,
    _alternate_for,
    _PropagationState,
    _Propagator,
)
from repro.bgp.route import RouteClass
from repro.errors import ConfigurationError


def _selection_fields(selection: RouteSelection) -> tuple:
    """Identity of a selection, excluding the later-assigned alternate."""
    return (
        selection.asn,
        selection.route_class,
        selection.path_length,
        selection.primary_site,
        selection.candidates,
        selection.near_routes,
        selection.pinned,
        selection.as_path,
    )


def _changed_keys(new: Dict[int, object], old: Dict[int, object]) -> Set[int]:
    """Keys present in either map whose values differ (missing != any)."""
    changed = {key for key, value in new.items() if old.get(key) != value}
    changed.update(key for key in old if key not in new)
    return changed


@dataclass
class DeltaStats:
    """How much work one delta propagation actually did."""

    total: int = 0  #: ASes holding a route in the new outcome
    rebuilt: int = 0  #: selections recomputed from scratch
    spliced: int = 0  #: baseline selection objects reused as-is

    @property
    def reuse_fraction(self) -> float:
        """Share of selections spliced through from the baseline."""
        return self.spliced / self.total if self.total else 0.0


class DeltaPropagator:
    """Recompute routing outcomes incrementally against a baseline.

    The baseline must retain its propagation state (every outcome built
    by :func:`~repro.bgp.propagation.compute_routes` does); the delta
    run reuses the baseline's :class:`RoutingConfig`, flip model and
    edge-cost cache, so results are comparable by construction.
    """

    def __init__(self, baseline: RoutingOutcome) -> None:
        if baseline.state is None:
            raise ConfigurationError(
                "baseline outcome lacks propagation state; it was not built "
                "by compute_routes"
            )
        self.baseline = baseline
        self.stats = DeltaStats()

    def propagate(self, policy: AnnouncementPolicy) -> RoutingOutcome:
        """Routes for ``policy``, bit-identical to a scratch propagation."""
        baseline = self.baseline
        base_state = baseline.state
        assert base_state is not None  # checked in __init__
        internet = baseline.internet
        graph = internet.graph
        base_selections = baseline.selections
        stats = DeltaStats()

        propagator = _Propagator(
            internet, policy, base_state.config, caches=base_state.caches
        )
        selections = propagator.selections

        # Phase-specific dirty sets: each phase reads a different
        # neighbour class, so a changed AS only taints the consumers
        # that actually import from it in that phase.  Consumers always
        # resolve later than their inputs (providers later in the
        # ascending-distance customer loop, peers in phase 2, customers
        # in the descent), so in-loop marks are seen in time.
        dirty_customer: Set[int] = set()
        dirty_peer: Set[int] = set()
        dirty_provider: Set[int] = set()

        # -- phase 1: customer routes up the provider DAG ------------------
        cust_dist = propagator._phase_up()
        dirty_customer |= _changed_keys(
            propagator._origin_entries, base_state.origin_entries
        )
        changed_dist = _changed_keys(cust_dist, base_state.cust_dist)
        dirty_customer |= changed_dist
        for asn in changed_dist:
            # The changed AS's arrival cost (and its position in the
            # resolution order, hence its visibility) changed for every
            # AS that imports from it: providers in this phase, peers
            # in the next.
            dirty_customer.update(graph.providers_of(asn))
            dirty_peer.update(graph.peers_of(asn))

        for asn in sorted(cust_dist, key=lambda a: (cust_dist[a], a)):
            base_sel = base_selections.get(asn)
            if (
                asn not in dirty_customer
                and base_sel is not None
                and base_sel.route_class == RouteClass.CUSTOMER
            ):
                selections[asn] = base_sel
                stats.spliced += 1
                continue
            rebuilt = propagator._customer_selection(asn, cust_dist)
            stats.rebuilt += 1
            if base_sel is not None and _selection_fields(
                rebuilt
            ) == _selection_fields(base_sel):
                selections[asn] = base_sel  # keep the shared object
                continue
            selections[asn] = rebuilt
            dirty_customer.update(graph.providers_of(asn))
            dirty_peer.update(graph.peers_of(asn))
            dirty_provider.update(graph.customers_of(asn))

        # -- phase 2: peer import ------------------------------------------
        for asn in internet.ases:
            if asn in selections:
                continue
            base_sel = base_selections.get(asn)
            base_is_peer = (
                base_sel is not None and base_sel.route_class == RouteClass.PEER
            )
            if asn not in dirty_peer:
                if base_is_peer:
                    selections[asn] = base_sel
                    stats.spliced += 1
                continue
            rebuilt = propagator._peer_selection(asn, cust_dist)
            if rebuilt is None:
                if base_is_peer:
                    # Lost its peer route; it falls to the provider
                    # descent and its old customers must re-look.
                    dirty_provider.update(graph.customers_of(asn))
                continue
            stats.rebuilt += 1
            if base_is_peer and _selection_fields(rebuilt) == _selection_fields(
                base_sel
            ):
                selections[asn] = base_sel
                continue
            selections[asn] = rebuilt
            dirty_provider.update(graph.customers_of(asn))

        # -- phase 3: descent down the provider DAG ------------------------
        provider_dist, export_len = propagator._compute_provider_dist()
        changed_pd = _changed_keys(provider_dist, base_state.provider_dist)
        dirty_provider |= changed_pd
        for asn in changed_pd:
            # Entering/leaving the descent (or moving within it) changes
            # which customers can see this AS's offer at their turn.
            dirty_provider.update(graph.customers_of(asn))
        for asn in _changed_keys(export_len, base_state.export_len):
            # Export length feeds every customer's arrival cost.
            dirty_provider.update(graph.customers_of(asn))

        for asn in sorted(provider_dist, key=lambda a: (provider_dist[a], a)):
            base_sel = base_selections.get(asn)
            if (
                asn not in dirty_provider
                and base_sel is not None
                and base_sel.route_class == RouteClass.PROVIDER
            ):
                selections[asn] = base_sel
                stats.spliced += 1
                continue
            rebuilt = propagator._provider_selection(asn, provider_dist, export_len)
            stats.rebuilt += 1
            if (
                base_sel is not None
                and base_sel.route_class == RouteClass.PROVIDER
                and _selection_fields(rebuilt) == _selection_fields(base_sel)
            ):
                selections[asn] = base_sel
                continue
            selections[asn] = rebuilt
            dirty_provider.update(graph.customers_of(asn))

        # -- alternates ----------------------------------------------------
        site_codes = policy.site_codes
        same_sites = site_codes == baseline.policy.site_codes
        for asn, selection in selections.items():
            if selection is base_selections.get(asn):
                if same_sites:
                    continue  # pool and flipper fallback both unchanged
                expected = _alternate_for(internet, site_codes, selection)
                if expected != selection.alternate_site:
                    selections[asn] = replace(selection, alternate_site=expected)
            else:
                alternate = _alternate_for(internet, site_codes, selection)
                if alternate is not None:
                    selection.alternate_site = alternate

        stats.total = len(selections)
        self.stats = stats
        state = _PropagationState(
            config=base_state.config,
            cust_dist=cust_dist,
            provider_dist=provider_dist,
            export_len=export_len,
            origin_entries=propagator._origin_entries,
            caches=propagator._caches,
        )
        return RoutingOutcome(
            internet, policy, selections, baseline.flip_model, state=state
        )


def delta_routes(
    baseline: RoutingOutcome, policy: AnnouncementPolicy
) -> RoutingOutcome:
    """One-shot incremental propagation of ``policy`` against ``baseline``."""
    return DeltaPropagator(baseline).propagate(policy)
