"""BGP policy routing over the synthetic topology.

Implements Gao-Rexford route propagation (customer > peer > provider
local preference, then shortest AS path, then a deterministic arbitrary
tie-break), AS-path prepending for traffic engineering (paper §6.1), and
the per-packet load-balancing instability model behind the paper's
catchment-flip observations (§6.3, Table 7).
"""

from repro.bgp.cache import (
    CacheStats,
    RoutingCache,
    default_routing_cache,
    internet_fingerprint,
    policy_fingerprint,
)
from repro.bgp.delta import DeltaPropagator, DeltaStats, delta_routes
from repro.bgp.instability import FlipModel, FlipModelConfig
from repro.bgp.policy import AnnouncementPolicy, SiteAnnouncement
from repro.bgp.propagation import (
    RoutingConfig,
    RoutingOutcome,
    RouteSelection,
    compute_routes,
)
from repro.bgp.ribdump import OriginLookup, read_rib_dump, write_rib_dump
from repro.bgp.updates import BgpUpdateSimulator, UpdateOutcome
from repro.bgp.route import CandidateRoute, RouteClass

__all__ = [
    "RouteClass",
    "CandidateRoute",
    "SiteAnnouncement",
    "AnnouncementPolicy",
    "RouteSelection",
    "RoutingOutcome",
    "compute_routes",
    "DeltaPropagator",
    "DeltaStats",
    "delta_routes",
    "RoutingCache",
    "CacheStats",
    "default_routing_cache",
    "internet_fingerprint",
    "policy_fingerprint",
    "FlipModel",
    "FlipModelConfig",
    "RoutingConfig",
    "OriginLookup",
    "read_rib_dump",
    "write_rib_dump",
    "BgpUpdateSimulator",
    "UpdateOutcome",
]
