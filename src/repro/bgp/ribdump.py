"""RouteViews-style RIB dumps.

The paper maps scanned addresses to AS numbers with Route Views and
RIPE RIS data (§4).  This module plays that role: it exports the
topology's announced prefixes as a RouteViews-like text table and
rebuilds a longest-prefix-match origin lookup from such a table — the
exact pipeline stage an external analyst would run, without touching
the simulator's internals.  It can also dump the per-AS paths toward
the anycast prefix, the way a route collector peered with every AS
would see them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TextIO

from repro.bgp.propagation import RoutingOutcome
from repro.errors import DatasetError
from repro.netaddr.prefix import Prefix
from repro.netaddr.trie import LongestPrefixTrie
from repro.topology.internet import Internet


def write_rib_dump(internet: Internet, stream: TextIO) -> None:
    """Write every announced prefix as ``<prefix> <origin ASN>``."""
    stream.write("# prefix origin-as\n")
    for entry in sorted(internet.announced, key=lambda e: e.prefix):
        stream.write(f"{entry.prefix} {entry.origin_asn}\n")


class OriginLookup:
    """Address/block -> origin-AS lookup built from a RIB dump."""

    def __init__(self, trie: LongestPrefixTrie) -> None:
        self._trie = trie

    def __len__(self) -> int:
        return len(self._trie)

    def origin_of_address(self, address: int) -> Optional[int]:
        """Origin ASN of ``address`` by longest-prefix match, or None."""
        return self._trie.lookup_value(address)

    def origin_of_block(self, block: int) -> Optional[int]:
        """Origin ASN of a /24 ``block``, or None when unrouted."""
        return self._trie.lookup_value(block << 8)

    def prefix_of_address(self, address: int) -> Optional[Prefix]:
        """The covering announced prefix of ``address``, or None."""
        match = self._trie.lookup(address)
        return match[0] if match is not None else None


def read_rib_dump(stream: TextIO) -> OriginLookup:
    """Parse a table written by :func:`write_rib_dump`."""
    trie: LongestPrefixTrie = LongestPrefixTrie()
    for line_number, line in enumerate(stream, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 2:
            raise DatasetError(
                f"RIB dump line {line_number}: expected 2 fields, got {len(fields)}"
            )
        prefix_text, asn_text = fields
        if not asn_text.isdigit():
            raise DatasetError(f"RIB dump line {line_number}: bad ASN {asn_text!r}")
        trie.insert(Prefix(prefix_text), int(asn_text))
    if len(trie) == 0:
        raise DatasetError("RIB dump contains no routes")
    return OriginLookup(trie)


def write_path_dump(routing: RoutingOutcome, stream: TextIO) -> None:
    """Dump every AS's selected path to the anycast prefix.

    One line per AS: ``<asn>: <as path>`` with the service shown as
    ``ORIGIN`` — what a route collector multihop-peered with each AS
    would record for the service prefix.
    """
    stream.write(f"# paths to {routing.policy.site_codes}\n")
    for asn in sorted(routing.selections):
        selection = routing.selections[asn]
        hops = " ".join(
            "ORIGIN" if hop == 0 else str(hop) for hop in selection.as_path
        )
        stream.write(f"{asn}: {hops}\n")


def read_path_dump(stream: TextIO) -> Dict[int, List[int]]:
    """Parse :func:`write_path_dump` output into ``asn -> path`` (0=origin)."""
    paths: Dict[int, List[int]] = {}
    for line_number, line in enumerate(stream, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, tail = line.partition(":")
        if not head.strip().isdigit() or not tail.strip():
            raise DatasetError(f"path dump line {line_number}: malformed {line!r}")
        hops = [
            0 if token == "ORIGIN" else int(token)
            for token in tail.split()
        ]
        paths[int(head)] = hops
    if not paths:
        raise DatasetError("path dump contains no paths")
    return paths
