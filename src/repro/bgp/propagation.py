"""Gao-Rexford route propagation.

Computes, for every AS, the route it selects toward the anycast prefix
under a given :class:`AnnouncementPolicy`, in three phases:

1. **Up**: customer-learned routes climb the customer->provider DAG
   (Dijkstra on routing cost — prepending inflates the initial cost at
   each site's upstream).
2. **Across**: ASes holding customer routes export them to peers.
3. **Down**: every AS exports its best route to its customers; routes
   descend the provider->customer DAG.

Selection at each AS: best class (customer > peer > provider), then
lowest routing cost, then a deterministic pseudo-random tie-break (real
BGP ties break on router ids, which are arbitrary from our viewpoint;
hashing avoids the systematic low-ASN bias of a lexicographic rule).

Three realism knobs (see :class:`RoutingConfig`):

* **edge jitter** — each adjacency carries a deterministic extra cost
  of 0-2 on top of the one AS hop, modelling MEDs/intra-AS policy, so
  path-cost differences between two anycast sites spread over several
  values and AS-path prepending (paper §6.1) shifts catchments
  *gradually* rather than all at once;
* **pinned providers** — a fraction of customer->provider adjacencies
  are pinned by local policy: the customer prefers that provider for
  this prefix regardless of path length, modelling the ASes the paper
  observes "that choose to ignore prepending";
* **PoP slack** — multi-PoP ASes let each PoP pick independently among
  routes within ``pop_slack`` of the best (hot-potato routing), which
  is what divides large ASes across catchments (paper §6.2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.anycast.catchment import CatchmentMap
from repro.bgp.instability import FlipModel
from repro.bgp.policy import AnnouncementPolicy
from repro.bgp.route import CandidateRoute, RouteClass
from repro.errors import ConfigurationError, RoutingError
from repro.rng import mix64, uniform_unit
from repro.topology.asys import PoP
from repro.topology.internet import Internet

_SERVICE_NEIGHBOR = 0  # sentinel neighbour ASN for routes heard from the service
_INF = 1 << 30
_EDGE_SALT = 0x45444745
_PIN_SALT = 0x50494E53
_DRIFT_SALT = 0x44524946


@dataclass(frozen=True)
class RoutingConfig:
    """Knobs controlling routing realism (see module docstring)."""

    jitter_weights: Tuple[float, ...] = (0.70, 0.20, 0.10)
    pin_probability: float = 0.10
    pop_slack: int = 1
    era: int = 0
    era_drift_probability: float = 0.20

    def __post_init__(self) -> None:
        if abs(sum(self.jitter_weights) - 1.0) > 1e-9:
            raise ConfigurationError("jitter_weights must sum to 1")
        if not 0.0 <= self.pin_probability <= 1.0:
            raise ConfigurationError("pin_probability must be in [0, 1]")
        if self.pop_slack < 0:
            raise ConfigurationError("pop_slack must be >= 0")
        if not 0.0 <= self.era_drift_probability <= 1.0:
            raise ConfigurationError("era_drift_probability must be in [0, 1]")


@dataclass
class RouteSelection:
    """The route an AS selected, plus equally/nearly-preferred alternatives."""

    asn: int
    route_class: int
    path_length: int
    primary_site: str
    candidates: Tuple[CandidateRoute, ...]
    near_routes: Tuple[Tuple[int, str], ...] = ()
    alternate_site: Optional[str] = None
    pinned: bool = False
    #: The selected route's AS path as this AS would export it: itself
    #: first, the service's sentinel ASN (0) last, repeated once per
    #: prepend.  Follows the *primary* candidate; at multi-exit points
    #: the hot-potato site split is not reflected here.
    as_path: Tuple[int, ...] = ()

    @property
    def candidate_sites(self) -> Tuple[str, ...]:
        """Distinct sites reachable through equally-preferred routes."""
        seen: List[str] = []
        for candidate in self.candidates:
            if candidate.site_code not in seen:
                seen.append(candidate.site_code)
        return tuple(seen)

    @property
    def pop_sites(self) -> Tuple[str, ...]:
        """Distinct sites within slack of the best route, best first."""
        return tuple(site for _, site in self.near_routes)

    def _weighted_pick(self, hash_value: int) -> str:
        """Pick a near site, weighted toward cheaper routes.

        Weight halves per unit of extra cost (8/4/2/1), so closer
        routes win most of the time and prepending — which changes the
        deltas — shifts the distribution *monotonically* instead of
        reshuffling a uniform choice.
        """
        if not self.near_routes:
            return self.primary_site
        if len(self.near_routes) == 1:
            return self.near_routes[0][1]
        weights = [8 >> min(delta, 3) for delta, _ in self.near_routes]
        total = sum(weights)
        draw = hash_value % total
        for weight, (_, site) in zip(weights, self.near_routes):
            if draw < weight:
                return site
            draw -= weight
        return self.near_routes[-1][1]

    def site_for_importer(self, importer_asn: int) -> str:
        """Site this AS's export leads to, as seen by ``importer_asn``.

        A multi-exit AS (several nearly-equal routes to different sites)
        hands different neighbours different effective exits depending on
        where they connect — the entry point picks the egress under
        hot-potato routing.  Deterministic per (this AS, importer) so
        catchments are stable across rounds.
        """
        return self._weighted_pick(
            mix64(self.asn * 0x9E3779B1 ^ importer_asn * 0x85EBCA6B)
        )

    def site_for_pop(self, pop_id: int) -> str:
        """Site a given PoP of this AS egresses to (hot-potato)."""
        return self._weighted_pick(mix64(pop_id * 0x51ED + 17))


def edge_cost(seed: int, config: RoutingConfig, importer: int, exporter: int) -> int:
    """Routing cost of importing a route from ``exporter`` (shared).

    One AS hop plus deterministic jitter (MEDs / intra-AS policy), with
    optional per-era re-rolls modelling routing drift over time.  Both
    the analytic propagator and the event-driven update simulator use
    this function, so their route costs are comparable.
    """
    edge_id = importer * 131071 + exporter
    draw = uniform_unit(seed, _EDGE_SALT, edge_id)
    era = config.era
    if era and (
        uniform_unit(seed, _DRIFT_SALT, edge_id) < config.era_drift_probability
    ):
        draw = uniform_unit(seed, _DRIFT_SALT, edge_id, era)
    jitter = len(config.jitter_weights) - 1
    cumulative = 0.0
    for level, weight in enumerate(config.jitter_weights):
        cumulative += weight
        if draw < cumulative:
            jitter = level
            break
    return 1 + jitter


def is_pinned(seed: int, config: RoutingConfig, customer: int, provider: int) -> bool:
    """Whether ``customer`` pins ``provider`` for the anycast prefix (shared)."""
    return (
        uniform_unit(seed, _PIN_SALT, customer * 524287 + provider)
        < config.pin_probability
    )


def _near_tuple(near: Dict[str, int]) -> Tuple[Tuple[int, str], ...]:
    """Sort (site -> delta) into the (delta, site) tuples a selection stores."""
    return tuple(sorted((delta, site) for site, delta in near.items()))


def _tie_hash(asn: int, neighbor: int, site_code: str) -> int:
    site_hash = int.from_bytes(site_code.encode("utf-8")[:8].ljust(8, b"\0"), "little")
    return mix64(mix64(asn * 0x9E37 + neighbor) ^ site_hash)


def _alternate_for(
    internet: Internet, site_codes: List[str], selection: RouteSelection
) -> Optional[str]:
    """The alternate site a selection would be assigned (see _assign_alternates).

    A pure function of the selection's own routes, the announcing site
    list, and the AS's flipper flag — shared by the full propagator and
    the delta engine so both assign identical alternates.
    """
    pool = [
        site
        for site in (*selection.pop_sites, *selection.candidate_sites)
        if site != selection.primary_site
    ]
    if pool:
        return pool[0]
    if len(site_codes) > 1 and internet.ases[selection.asn].flipper:
        # Per-packet load balancing across unequal paths: a flipper
        # with one equal-cost route still oscillates toward a
        # deterministic next-best site.
        others = [s for s in site_codes if s != selection.primary_site]
        return others[mix64(selection.asn * 0xA5A5) % len(others)]
    return None


@dataclass
class _SharedCaches:
    """Memo tables for the pure per-pair draws of one (seed, config).

    Edge costs, pin decisions, tie hashes and importer hashes are pure
    functions of the topology seed, the routing config and the AS pair,
    so a baseline's tables stay valid for every delta recomputation
    under the same config — sharing them is what makes rebuilding a
    selection much cheaper than building it from scratch.
    """

    edge: Dict[Tuple[int, int], int] = field(default_factory=dict)
    pins: Dict[Tuple[int, int], bool] = field(default_factory=dict)
    ties: Dict[Tuple[int, int, str], int] = field(default_factory=dict)
    import_hash: Dict[Tuple[int, int], int] = field(default_factory=dict)


@dataclass
class _PropagationState:
    """Working maps retained from one propagation for incremental reuse.

    A :class:`~repro.bgp.delta.DeltaPropagator` diffs these against a
    re-derived skeleton to decide which route selections can possibly
    have changed; everything else is spliced through unchanged.
    """

    config: RoutingConfig
    cust_dist: Dict[int, int]
    provider_dist: Dict[int, int]
    export_len: Dict[int, int]
    origin_entries: Dict[int, List[CandidateRoute]]
    caches: _SharedCaches


class RoutingOutcome:
    """Result of one propagation: per-AS selections and catchment queries."""

    def __init__(
        self,
        internet: Internet,
        policy: AnnouncementPolicy,
        selections: Dict[int, RouteSelection],
        flip_model: FlipModel,
        state: Optional[_PropagationState] = None,
    ) -> None:
        self.internet = internet
        self.policy = policy
        self.selections = selections
        self.flip_model = flip_model
        #: Propagation working maps, kept so DeltaPropagator can use
        #: this outcome as the baseline of an incremental recomputation.
        self.state = state
        self._pop_site_cache: Dict[int, str] = {}
        self._catchment_cache: Dict[Optional[int], CatchmentMap] = {}

    def selection_of(self, asn: int) -> Optional[RouteSelection]:
        """The selected route at ``asn`` (None if the prefix never reached it)."""
        return self.selections.get(asn)

    def site_of_asn(self, asn: int) -> Optional[str]:
        """Primary site selected by ``asn``."""
        selection = self.selections.get(asn)
        return selection.primary_site if selection is not None else None

    def site_of_pop(self, pop: PoP) -> Optional[str]:
        """Site a given PoP egresses to (hot-potato over the candidate set)."""
        cached = self._pop_site_cache.get(pop.pop_id)
        if cached is not None:
            return cached
        selection = self.selections.get(pop.asn)
        if selection is None:
            return None
        site = selection.site_for_pop(pop.pop_id)
        self._pop_site_cache[pop.pop_id] = site
        return site

    def site_of_block(self, block: int, round_id: Optional[int] = None) -> Optional[str]:
        """Site that traffic from ``block`` reaches.

        With ``round_id`` given, flipper ASes may divert individual
        blocks to their alternate route for that round (per-packet load
        balancing, paper §6.3).
        """
        if not self.internet.has_block(block):
            return None
        pop = self.internet.pop_of_block(block)
        base_site = self.site_of_pop(pop)
        if base_site is None:
            return None
        if round_id is None:
            return base_site
        selection = self.selections[pop.asn]
        asys = self.internet.ases[pop.asn]
        return self.flip_model.site_for(asys, selection, base_site, block, round_id)

    def catchment_map(self, round_id: Optional[int] = None) -> CatchmentMap:
        """Catchment of every populated block (site per block).

        Memoised per ``round_id``: the outcome is immutable once built,
        so the block->site dict is derived at most once per round and
        repeated calls return the same :class:`CatchmentMap` instance
        (which has no mutators).
        """
        cached = self._catchment_cache.get(round_id)
        if cached is not None:
            return cached
        mapping: Dict[int, str] = {}
        for block in self.internet.blocks:
            site = self.site_of_block(block, round_id)
            if site is not None:
                mapping[block] = site
        result = CatchmentMap(self.policy.site_codes, mapping)
        self._catchment_cache[round_id] = result
        return result

    def reachable_fraction(self) -> float:
        """Fraction of ASes that received any route (sanity metric)."""
        if not self.internet.ases:
            return 0.0
        return len(self.selections) / len(self.internet.ases)


class _Propagator:
    """Holds working state of one propagation run."""

    def __init__(
        self,
        internet: Internet,
        policy: AnnouncementPolicy,
        config: RoutingConfig,
        caches: Optional[_SharedCaches] = None,
    ) -> None:
        self.internet = internet
        self.policy = policy
        self.config = config
        self.graph = internet.graph
        self.seed = internet.seed
        self.selections: Dict[int, RouteSelection] = {}
        # Per-pair draws are pure in (seed, config, pair), so a
        # baseline's caches can be shared with delta recomputations.
        self._caches = caches if caches is not None else _SharedCaches()
        self._origin_entries: Dict[int, List[CandidateRoute]] = {}
        self._state: Optional[_PropagationState] = None

    def edge_cost(self, importer: int, exporter: int) -> int:
        """Cached shared edge cost (see module-level :func:`edge_cost`)."""
        key = (importer, exporter)
        cached = self._caches.edge.get(key)
        if cached is not None:
            return cached
        cost = edge_cost(self.seed, self.config, importer, exporter)
        self._caches.edge[key] = cost
        return cost

    def tie_hash(self, asn: int, neighbor: int, site_code: str) -> int:
        """Cached tie-break hash (see module-level :func:`_tie_hash`)."""
        key = (asn, neighbor, site_code)
        cached = self._caches.ties.get(key)
        if cached is None:
            cached = _tie_hash(asn, neighbor, site_code)
            self._caches.ties[key] = cached
        return cached

    def import_site(self, selection: RouteSelection, importer: int) -> str:
        """``selection.site_for_importer`` with the hash draw cached.

        The hash depends only on the (exporter, importer) pair, so it is
        shareable even when the exporter's selection changes between
        baseline and delta.
        """
        key = (selection.asn, importer)
        cached = self._caches.import_hash.get(key)
        if cached is None:
            cached = mix64(selection.asn * 0x9E3779B1 ^ importer * 0x85EBCA6B)
            self._caches.import_hash[key] = cached
        return selection._weighted_pick(cached)

    def slack_for(self, asn: int) -> int:
        """Near-candidate slack for ``asn``.

        Multi-PoP ASes hold eBGP sessions at many locations and see a
        wider spread of nearly-equal routes, so they get one extra unit
        of slack — this is the lever behind intra-AS catchment splits
        (paper §6.2) without perturbing single-PoP catchments.
        """
        base = self.config.pop_slack
        if self.internet.ases[asn].is_multi_pop:
            return base + 2
        return base

    def is_pinned(self, customer: int, provider: int) -> bool:
        """Cached shared pin draw (see module-level :func:`is_pinned`)."""
        key = (customer, provider)
        cached = self._caches.pins.get(key)
        if cached is None:
            cached = is_pinned(self.seed, self.config, customer, provider)
            self._caches.pins[key] = cached
        return cached

    # -- phases ------------------------------------------------------------

    def run(self) -> Dict[int, RouteSelection]:
        cust_dist = self._phase_up()
        self._resolve_customer(cust_dist)
        self._phase_peers(cust_dist)
        provider_dist, export_len = self._compute_provider_dist()
        self._resolve_provider(provider_dist, export_len)
        self._assign_alternates()
        self._state = _PropagationState(
            config=self.config,
            cust_dist=cust_dist,
            provider_dist=provider_dist,
            export_len=export_len,
            origin_entries=self._origin_entries,
            caches=self._caches,
        )
        return self.selections

    def _phase_up(self) -> Dict[int, int]:
        """Dijkstra of customer-learned routes up the provider DAG."""
        cust_dist: Dict[int, int] = {}
        heap: List[Tuple[int, int]] = []
        self._origin_entries = {}
        for announcement in self.policy.announcements:
            upstream = announcement.upstream_asn
            if upstream not in self.internet.ases:
                raise RoutingError(
                    f"upstream AS{upstream} for site {announcement.site_code} "
                    "does not exist in the topology"
                )
            length = announcement.effective_length
            self._origin_entries.setdefault(upstream, []).append(
                CandidateRoute(
                    _SERVICE_NEIGHBOR, announcement.site_code, length, RouteClass.CUSTOMER
                )
            )
            if length < cust_dist.get(upstream, _INF):
                cust_dist[upstream] = length
                heapq.heappush(heap, (length, upstream))
        while heap:
            length, asn = heapq.heappop(heap)
            if length > cust_dist.get(asn, _INF):
                continue
            for provider in self.graph.providers_of(asn):
                candidate = length + self.edge_cost(provider, asn)
                if candidate < cust_dist.get(provider, _INF):
                    cust_dist[provider] = candidate
                    heapq.heappush(heap, (candidate, provider))
        return cust_dist

    def _resolve_customer(self, cust_dist: Dict[int, int]) -> None:
        """Pick primaries for customer-route holders in distance order."""
        for asn in sorted(cust_dist, key=lambda a: (cust_dist[a], a)):
            self.selections[asn] = self._customer_selection(asn, cust_dist)

    def _customer_selection(
        self, asn: int, cust_dist: Dict[int, int]
    ) -> RouteSelection:
        """Build one customer-class selection.

        Reads only earlier-resolved customers from ``self.selections``
        (processing order is ascending (distance, asn), and customer
        arrivals always exceed the customer's own distance), which is
        what lets the delta engine re-run single ASes in place.
        """
        slack = self.slack_for(asn)
        best = cust_dist[asn]
        exact: List[CandidateRoute] = []
        near: Dict[str, int] = {}
        for entry in self._origin_entries.get(asn, []):
            if entry.path_length == best:
                exact.append(entry)
            delta = entry.path_length - best
            if delta <= slack:
                near[entry.site_code] = min(near.get(entry.site_code, 99), delta)
        for customer in self.graph.customers_of(asn):
            customer_dist = cust_dist.get(customer)
            if customer_dist is None:
                continue
            arrival = customer_dist + self.edge_cost(asn, customer)
            neighbor_selection = self.selections.get(customer)
            if neighbor_selection is None:
                continue
            via_site = self.import_site(neighbor_selection, asn)
            if arrival == best:
                exact.append(
                    CandidateRoute(
                        customer, via_site, arrival, RouteClass.CUSTOMER
                    )
                )
            delta = arrival - best
            if delta <= slack:
                near[via_site] = min(near.get(via_site, 99), delta)
        if not exact:
            raise RoutingError(f"AS{asn}: customer distance with no candidates")
        primary = min(
            exact, key=lambda c: self.tie_hash(asn, c.neighbor_asn, c.site_code)
        )
        if primary.neighbor_asn == _SERVICE_NEIGHBOR:
            as_path = (asn,) + (_SERVICE_NEIGHBOR,) * primary.path_length
        else:
            as_path = (asn,) + self.selections[primary.neighbor_asn].as_path
        return RouteSelection(
            asn, RouteClass.CUSTOMER, best, primary.site_code,
            tuple(exact), _near_tuple(near), as_path=as_path,
        )

    def _phase_peers(self, cust_dist: Dict[int, int]) -> None:
        """ASes without customer routes import their peers' customer routes."""
        for asn in self.internet.ases:
            if asn in self.selections:
                continue
            selection = self._peer_selection(asn, cust_dist)
            if selection is not None:
                self.selections[asn] = selection

    def _peer_selection(
        self, asn: int, cust_dist: Dict[int, int]
    ) -> Optional[RouteSelection]:
        """Build one peer-class selection (None when no peer has a route).

        Reads only customer-route holders from ``self.selections``, so
        peer selections are order-independent among themselves.
        """
        slack = self.slack_for(asn)
        best = _INF
        offers: List[Tuple[int, CandidateRoute]] = []
        for peer in self.graph.peers_of(asn):
            peer_cust = cust_dist.get(peer)
            if peer_cust is None:
                continue
            arrival = peer_cust + self.edge_cost(asn, peer)
            offers.append(
                (
                    arrival,
                    CandidateRoute(
                        peer,
                        self.import_site(self.selections[peer], asn),
                        arrival,
                        RouteClass.PEER,
                    ),
                )
            )
            best = min(best, arrival)
        if not offers:
            return None
        exact = [route for arrival, route in offers if arrival == best]
        near: Dict[str, int] = {}
        for arrival, route in offers:
            delta = arrival - best
            if delta <= slack:
                near[route.site_code] = min(near.get(route.site_code, 99), delta)
        primary = min(
            exact, key=lambda c: self.tie_hash(asn, c.neighbor_asn, c.site_code)
        )
        as_path = (asn,) + self.selections[primary.neighbor_asn].as_path
        return RouteSelection(
            asn, RouteClass.PEER, best, primary.site_code,
            tuple(exact), _near_tuple(near), as_path=as_path,
        )

    def _compute_provider_dist(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Dijkstra of best routes down the provider->customer DAG.

        Returns ``(provider_dist, export_len)``: the provider-learned
        distance of every AS without a customer/peer route, and the
        per-AS export cost used for arrivals (path length for
        customer/peer holders, descent distance below).
        """
        export_len: Dict[int, int] = {
            asn: selection.path_length for asn, selection in self.selections.items()
        }
        heap = [(length, asn) for asn, length in export_len.items()]
        heapq.heapify(heap)
        provider_dist: Dict[int, int] = {}
        while heap:
            length, asn = heapq.heappop(heap)
            if length > export_len.get(asn, _INF):
                continue
            for customer in self.graph.customers_of(asn):
                if customer in self.selections and customer not in provider_dist:
                    continue  # holds a customer/peer route; ignores provider offers
                candidate = length + self.edge_cost(customer, asn)
                if candidate < provider_dist.get(customer, _INF):
                    provider_dist[customer] = candidate
                    export_len[customer] = candidate
                    heapq.heappush(heap, (candidate, customer))
        return provider_dist, export_len

    def _resolve_provider(
        self, provider_dist: Dict[int, int], export_len: Dict[int, int]
    ) -> None:
        """Pick primaries for provider-route holders in distance order.

        Pinned provider adjacencies beat unpinned ones regardless of
        cost.  Export costs use the min-cost offer even when a pin makes
        the AS *use* a longer route — a small, documented approximation
        that keeps the descent a clean Dijkstra while preserving the
        property that matters: each AS's customers inherit the site the
        AS actually selected.
        """
        for asn in sorted(provider_dist, key=lambda a: (provider_dist[a], a)):
            self.selections[asn] = self._provider_selection(
                asn, provider_dist, export_len
            )

    def _provider_selection(
        self, asn: int, provider_dist: Dict[int, int], export_len: Dict[int, int]
    ) -> RouteSelection:
        """Build one provider-class selection.

        Reads only earlier-resolved providers (customer/peer holders or
        ASes earlier in the ascending (distance, asn) descent order)
        from ``self.selections``.
        """
        slack = self.slack_for(asn)
        offers: List[Tuple[bool, int, CandidateRoute]] = []
        for provider in self.graph.providers_of(asn):
            provider_selection = self.selections.get(provider)
            if provider_selection is None:
                # Provider has no route yet (resolves later in the
                # descent, so its offer cannot be the best anyway).
                continue
            pinned = self.is_pinned(asn, provider)
            arrival = export_len.get(provider, _INF) + self.edge_cost(asn, provider)
            if arrival >= _INF:
                continue
            offers.append(
                (
                    pinned,
                    arrival,
                    CandidateRoute(
                        provider,
                        self.import_site(provider_selection, asn),
                        arrival,
                        RouteClass.PROVIDER,
                    ),
                )
            )
        if not offers:
            raise RoutingError(f"AS{asn}: provider distance with no candidates")
        has_pin = any(pinned for pinned, _, _ in offers)
        if has_pin:
            eligible = [(arrival, route) for pinned, arrival, route in offers if pinned]
        else:
            eligible = [(arrival, route) for _, arrival, route in offers]
        best = min(arrival for arrival, _ in eligible)
        exact = [route for arrival, route in eligible if arrival == best]
        near: Dict[str, int] = {}
        for arrival, route in eligible:
            delta = arrival - best
            if delta <= slack:
                near[route.site_code] = min(near.get(route.site_code, 99), delta)
        primary = min(
            exact, key=lambda c: self.tie_hash(asn, c.neighbor_asn, c.site_code)
        )
        as_path = (asn,) + self.selections[primary.neighbor_asn].as_path
        return RouteSelection(
            asn, RouteClass.PROVIDER, best, primary.site_code,
            tuple(exact), _near_tuple(near), pinned=has_pin, as_path=as_path,
        )

    def _assign_alternates(self) -> None:
        """Give every selection an alternate site for the flip model."""
        site_codes = self.policy.site_codes
        for selection in self.selections.values():
            alternate = _alternate_for(self.internet, site_codes, selection)
            if alternate is not None:
                selection.alternate_site = alternate


def compute_routes(
    internet: Internet,
    policy: AnnouncementPolicy,
    flip_model: Optional[FlipModel] = None,
    config: Optional[RoutingConfig] = None,
) -> RoutingOutcome:
    """Run Gao-Rexford propagation of ``policy`` over ``internet``."""
    propagator = _Propagator(internet, policy, config or RoutingConfig())
    selections = propagator.run()
    flip_model = flip_model or FlipModel(internet.seed)
    return RoutingOutcome(
        internet, policy, selections, flip_model, state=propagator._state
    )
