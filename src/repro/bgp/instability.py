"""Catchment instability model.

The paper (§6.3, Figure 9, Table 7) finds that ~0.1% of VPs change
catchment between 15-minute rounds, and that flips concentrate heavily
in a few ASes (51% in Chinanet) — consistent with per-packet or
per-flow load balancing across links that reach different anycast
sites.  We model exactly that: ASes marked ``flipper`` have a subset of
blocks on load-balanced paths which oscillate between the AS's primary
and alternate route; all other multi-path ASes flip at a tiny
background rate (transient routing changes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.rng import uniform_unit
from repro.topology.asys import AutonomousSystem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.propagation import RouteSelection

_PARTICIPATE_SALT = 0x464C4950
_FLIP_SALT = 0x0F11BB11


@dataclass(frozen=True)
class FlipModelConfig:
    """Instability rates.

    ``flipper_block_fraction``: share of a flipper AS's blocks that sit
    behind a load-balanced link.  ``flipper_flip_probability``: chance
    such a block takes the alternate path in a given round.
    ``background_flip_probability``: chance any block of a non-flipper
    multi-candidate AS flips in a round (transient routing changes).
    """

    flipper_block_fraction: float = 0.12
    flipper_flip_probability: float = 0.10
    background_flip_probability: float = 0.001

    def __post_init__(self) -> None:
        for name in (
            "flipper_block_fraction",
            "flipper_flip_probability",
            "background_flip_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name}={value} must be in [0, 1]")


class FlipModel:
    """Deterministic per-(block, round) flip decisions."""

    def __init__(self, seed: int, config: Optional[FlipModelConfig] = None) -> None:
        self._seed = seed
        self.config = config or FlipModelConfig()

    def fingerprint(self) -> tuple:
        """Hashable identity of this model's decisions (for cache keys).

        Two models with equal fingerprints return identical flip
        decisions for every (block, round) pair.
        """
        return (
            self._seed,
            self.config.flipper_block_fraction,
            self.config.flipper_flip_probability,
            self.config.background_flip_probability,
        )

    def participates(self, asys: AutonomousSystem, block: int) -> bool:
        """Whether ``block`` of flipper ``asys`` sits on a load-balanced path."""
        if not asys.flipper:
            return False
        return (
            uniform_unit(self._seed, _PARTICIPATE_SALT, block)
            < self.config.flipper_block_fraction
        )

    def site_for(
        self,
        asys: AutonomousSystem,
        selection: "RouteSelection",
        base_site: str,
        block: int,
        round_id: int,
    ) -> str:
        """Resolve the per-round site for ``block`` given its AS's routes."""
        alternate = selection.alternate_site
        if alternate is None or alternate == base_site:
            return base_site
        if asys.flipper:
            if not self.participates(asys, block):
                return base_site
            probability = self.config.flipper_flip_probability
        else:
            probability = self.config.background_flip_probability
        if uniform_unit(self._seed, _FLIP_SALT, block, round_id) < probability:
            return alternate
        return base_site
