"""Event-driven BGP update simulation.

The analytic propagator (:mod:`repro.bgp.propagation`) computes the
routing fixed point directly; this module reaches the same state the
way the real protocol does — session by session, UPDATE by UPDATE —
with Gao-Rexford export filters:

* routes learned from customers are exported to everyone;
* routes learned from peers or providers are exported to customers only.

Uses the same shared edge costs and pins as the analytic engine, so the
two are directly comparable: with pins disabled they agree exactly on
every AS's route class and cost (asserted by tests), which validates
both implementations against each other.  Beyond validation, the
simulator measures what the analytic engine cannot: *convergence cost*
— how many UPDATE messages a configuration change triggers, the thing
an operator's routers actually experience during the paper's
trial-and-error prepending experiments (§6.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.bgp.policy import AnnouncementPolicy
from repro.bgp.propagation import (
    RoutingConfig,
    _tie_hash,
    edge_cost,
    is_pinned,
)
from repro.bgp.route import RouteClass
from repro.errors import RoutingError
from repro.topology.internet import Internet

_SERVICE_NEIGHBOR = 0


@dataclass(frozen=True)
class Offer:
    """A route as advertised by one neighbour: where it leads, at what cost."""

    site_code: str
    cost: int


@dataclass(frozen=True)
class SimSelection:
    """An AS's converged selection in the update simulation."""

    route_class: int
    pinned: bool
    cost: int
    site_code: str
    neighbor_asn: int


@dataclass
class ConvergenceStats:
    """Protocol work done to reach the fixed point."""

    messages: int = 0
    announcements: int = 0
    withdrawals: int = 0
    selection_changes: int = 0


class UpdateOutcome:
    """Converged state of one event-driven run."""

    def __init__(
        self,
        selections: Dict[int, SimSelection],
        stats: ConvergenceStats,
    ) -> None:
        self.selections = selections
        self.stats = stats

    def selection_of(self, asn: int) -> Optional[SimSelection]:
        """The converged route at ``asn`` (None when unreachable)."""
        return self.selections.get(asn)

    def site_of_asn(self, asn: int) -> Optional[str]:
        """Converged site selected by ``asn``."""
        selection = self.selections.get(asn)
        return selection.site_code if selection is not None else None

    def block_weighted_fractions(self, internet) -> Dict[str, float]:
        """Per-site share weighted by each AS's populated /24 count.

        AS-granular (no PoP splitting), which is what an UPDATE-level
        view can know; used to compare traffic-engineering mechanisms.
        """
        counts: Dict[str, int] = {}
        total = 0
        for asn, selection in self.selections.items():
            weight = len(internet.blocks_of_asn(asn))
            if weight:
                counts[selection.site_code] = (
                    counts.get(selection.site_code, 0) + weight
                )
                total += weight
        return {
            site: count / total for site, count in counts.items()
        } if total else {}


class BgpUpdateSimulator:
    """Session-level simulation of one prefix's propagation."""

    def __init__(
        self,
        internet: Internet,
        policy: AnnouncementPolicy,
        config: Optional[RoutingConfig] = None,
    ) -> None:
        self.internet = internet
        self.policy = policy
        self.config = config or RoutingConfig()
        self._seed = internet.seed
        graph = internet.graph
        # Static per-AS neighbour tables (importer's view).
        self._neighbors: Dict[int, Dict[int, Tuple[int, bool, int]]] = {}
        for asn in internet.ases:
            table: Dict[int, Tuple[int, bool, int]] = {}
            for customer in graph.customers_of(asn):
                table[customer] = (
                    RouteClass.CUSTOMER,
                    False,
                    edge_cost(self._seed, self.config, asn, customer),
                )
            for peer in graph.peers_of(asn):
                table[peer] = (
                    RouteClass.PEER,
                    False,
                    edge_cost(self._seed, self.config, asn, peer),
                )
            for provider in graph.providers_of(asn):
                table[provider] = (
                    RouteClass.PROVIDER,
                    is_pinned(self._seed, self.config, asn, provider),
                    edge_cost(self._seed, self.config, asn, provider),
                )
            self._neighbors[asn] = table

    @staticmethod
    def _rank(
        route_class: int, pinned: bool, cost: int, tie: int
    ) -> Tuple[int, int, int, int]:
        # Pinned provider routes beat unpinned ones regardless of cost
        # (matching the analytic engine's pin semantics).
        return (route_class, 0 if pinned else 1, cost, tie)

    def run(
        self,
        message_limit: int = 5_000_000,
        queue_discipline: str = "fifo",
    ) -> UpdateOutcome:
        """Inject the announcements and process updates to convergence.

        ``queue_discipline`` chooses the message processing order
        ("fifo" or "lifo").  Gao-Rexford policies have no dispute wheel,
        so the converged state is identical either way — a safety
        property the tests assert; only the message count differs.
        """
        if queue_discipline not in ("fifo", "lifo"):
            raise RoutingError(f"unknown queue discipline {queue_discipline!r}")
        rib_in: Dict[int, Dict[int, Offer]] = {
            asn: {} for asn in self.internet.ases
        }
        selections: Dict[int, Optional[SimSelection]] = {
            asn: None for asn in self.internet.ases
        }
        exported_to: Dict[int, set] = {asn: set() for asn in self.internet.ases}
        queue: Deque[Tuple[int, int, Optional[Offer]]] = deque()
        stats = ConvergenceStats()

        for announcement in self.policy.announcements:
            if announcement.upstream_asn not in self.internet.ases:
                raise RoutingError(
                    f"upstream AS{announcement.upstream_asn} does not exist"
                )
            queue.append(
                (
                    announcement.upstream_asn,
                    _SERVICE_NEIGHBOR,
                    Offer(announcement.site_code, announcement.effective_length),
                )
            )

        def decide(asn: int) -> Optional[SimSelection]:
            best: Optional[Tuple[Tuple[int, int, int, int], SimSelection]] = None
            for neighbor, offer in rib_in[asn].items():
                if neighbor == _SERVICE_NEIGHBOR:
                    route_class, pinned, cost = RouteClass.CUSTOMER, False, offer.cost
                else:
                    route_class, pinned, link_cost = self._neighbors[asn][neighbor]
                    cost = offer.cost + link_cost
                rank = self._rank(
                    route_class, pinned, cost,
                    _tie_hash(asn, neighbor, offer.site_code),
                )
                if best is None or rank < best[0]:
                    best = (
                        rank,
                        SimSelection(route_class, pinned, cost, offer.site_code,
                                     neighbor),
                    )
            return best[1] if best is not None else None

        no_export = {
            (a.upstream_asn, a.site_code): set(a.no_export_to)
            for a in self.policy.announcements
            if a.no_export_to
        }

        def eligible_importers(asn: int, selection: SimSelection):
            graph = self.internet.graph
            blocked = (
                no_export.get((asn, selection.site_code), set())
                if selection.neighbor_asn == _SERVICE_NEIGHBOR
                else set()
            )
            if selection.route_class == RouteClass.CUSTOMER:
                for neighbor in self._neighbors[asn]:
                    if neighbor != selection.neighbor_asn and neighbor not in blocked:
                        yield neighbor
            else:
                for customer in graph.customers_of(asn):
                    if customer != selection.neighbor_asn and customer not in blocked:
                        yield customer

        while queue:
            if stats.messages >= message_limit:
                raise RoutingError(
                    f"BGP update simulation exceeded {message_limit} messages"
                )
            if queue_discipline == "fifo":
                importer, exporter, offer = queue.popleft()
            else:
                importer, exporter, offer = queue.pop()
            stats.messages += 1
            if offer is None:
                stats.withdrawals += 1
                rib_in[importer].pop(exporter, None)
            else:
                stats.announcements += 1
                rib_in[importer][exporter] = offer
            new_selection = decide(importer)
            if new_selection == selections[importer]:
                continue
            selections[importer] = new_selection
            stats.selection_changes += 1
            previously = exported_to[importer]
            if new_selection is None:
                # Sorted drain: set iteration order must not decide the
                # update-queue order (it would vary run-to-run).
                for neighbor in sorted(previously):
                    queue.append((neighbor, importer, None))
                exported_to[importer] = set()
                continue
            now = set(eligible_importers(importer, new_selection))
            for neighbor in sorted(previously - now):
                queue.append((neighbor, importer, None))
            outgoing = Offer(new_selection.site_code, new_selection.cost)
            for neighbor in sorted(now):
                queue.append((neighbor, importer, outgoing))
            exported_to[importer] = now

        converged = {
            asn: selection
            for asn, selection in selections.items()
            if selection is not None
        }
        return UpdateOutcome(converged, stats)
