"""DNS traffic substrate: query logs and synthetic workloads.

Stands in for the paper's RSSAC-002-style service logs (DITL datasets,
Table 2): per-/24 query volumes over a day in hourly bins, with the
statistical features the paper leans on — resolver concentration,
heavy-tailed rates, NAT-dense regions, and ping-unresponsive blocks
that still send real traffic.
"""

from repro.traffic.attack import (
    AttackProfile,
    attack_day_load,
    compose_attack,
    hotspot_blocks,
)
from repro.traffic.ditl import build_day_load
from repro.traffic.logs import DayLoad, LoadKind
from repro.traffic.names import QueryNameSampler
from repro.traffic.workload import WorkloadProfile, nl_profile, root_profile

# NOTE: repro.traffic.rssac is imported directly (not re-exported here)
# because it builds on repro.load, which itself builds on this package.

__all__ = [
    "DayLoad",
    "LoadKind",
    "WorkloadProfile",
    "root_profile",
    "nl_profile",
    "build_day_load",
    "QueryNameSampler",
    "AttackProfile",
    "attack_day_load",
    "compose_attack",
    "hotspot_blocks",
]
