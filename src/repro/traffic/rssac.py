"""RSSAC-002-style daily reporting.

Root operators publish standardised daily measurements (RSSAC-002);
the paper leans on this: "all root operators collect this information
as part of standard RSSAC-002 performance reporting" (§3.2).  This
module holds the report *value types* and renderer the reproduction
needs: per-site daily query/response volumes and the unique-sources
count, rendered as the traditional YAML-ish document.  The aggregation
that builds a report from logs and routing lives in
:func:`repro.load.rssac.build_rssac_report` — it needs the load
estimator, which sits a layer above this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, TextIO

from repro.errors import DatasetError


@dataclass(frozen=True)
class SiteTrafficReport:
    """One site's daily traffic block in the report."""

    site_code: str
    queries: float
    responses: float
    unique_sources: int


@dataclass
class Rssac002Report:
    """A day-level traffic report for one anycast service."""

    service_name: str
    date_label: str
    total_queries: float
    total_responses: float
    unique_sources: int
    sites: List[SiteTrafficReport]

    def site(self, site_code: str) -> SiteTrafficReport:
        """Look up one site's block."""
        for entry in self.sites:
            if entry.site_code == site_code:
                return entry
        raise DatasetError(f"report has no site {site_code!r}")

    def write(self, stream: TextIO) -> None:
        """Render the report in RSSAC-002's YAML-like style."""
        stream.write("---\n")
        stream.write(f"service: {self.service_name}\n")
        stream.write(f"start-period: {self.date_label}\n")
        stream.write("metric: traffic-volume\n")
        stream.write(f"dns-udp-queries-received: {self.total_queries:.0f}\n")
        stream.write(f"dns-udp-responses-sent: {self.total_responses:.0f}\n")
        stream.write(f"unique-sources: {self.unique_sources}\n")
        stream.write("sites:\n")
        for entry in self.sites:
            stream.write(f"  - site: {entry.site_code}\n")
            stream.write(f"    queries: {entry.queries:.0f}\n")
            stream.write(f"    responses: {entry.responses:.0f}\n")
            stream.write(f"    unique-sources: {entry.unique_sources}\n")
