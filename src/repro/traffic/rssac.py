"""RSSAC-002-style daily reporting.

Root operators publish standardised daily measurements (RSSAC-002);
the paper leans on this: "all root operators collect this information
as part of standard RSSAC-002 performance reporting" (§3.2).  This
module produces the subset of that report the reproduction needs:
per-site daily query/response volumes and the unique-sources count,
rendered as the traditional YAML-ish document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, TextIO

from repro.bgp.propagation import RoutingOutcome
from repro.errors import DatasetError
from repro.load.estimator import LoadEstimate
from repro.load.prediction import measured_site_load
from repro.traffic.logs import DayLoad, LoadKind


@dataclass(frozen=True)
class SiteTrafficReport:
    """One site's daily traffic block in the report."""

    site_code: str
    queries: float
    responses: float
    unique_sources: int


@dataclass
class Rssac002Report:
    """A day-level traffic report for one anycast service."""

    service_name: str
    date_label: str
    total_queries: float
    total_responses: float
    unique_sources: int
    sites: List[SiteTrafficReport]

    def site(self, site_code: str) -> SiteTrafficReport:
        """Look up one site's block."""
        for entry in self.sites:
            if entry.site_code == site_code:
                return entry
        raise DatasetError(f"report has no site {site_code!r}")

    def write(self, stream: TextIO) -> None:
        """Render the report in RSSAC-002's YAML-like style."""
        stream.write("---\n")
        stream.write(f"service: {self.service_name}\n")
        stream.write(f"start-period: {self.date_label}\n")
        stream.write("metric: traffic-volume\n")
        stream.write(f"dns-udp-queries-received: {self.total_queries:.0f}\n")
        stream.write(f"dns-udp-responses-sent: {self.total_responses:.0f}\n")
        stream.write(f"unique-sources: {self.unique_sources}\n")
        stream.write("sites:\n")
        for entry in self.sites:
            stream.write(f"  - site: {entry.site_code}\n")
            stream.write(f"    queries: {entry.queries:.0f}\n")
            stream.write(f"    responses: {entry.responses:.0f}\n")
            stream.write(f"    unique-sources: {entry.unique_sources}\n")


def build_rssac_report(
    service_name: str,
    load: DayLoad,
    routing: RoutingOutcome,
) -> Rssac002Report:
    """Aggregate one day of logs into the per-site report.

    Queries and responses are split by the ground-truth catchment of
    each source block (the operator's own logs know where every query
    landed); ``unique_sources`` counts /24 blocks, the aggregation
    level of this whole reproduction.
    """
    queries = LoadEstimate(load, LoadKind.QUERIES)
    responses = LoadEstimate(load, LoadKind.ALL_REPLIES)
    per_site_queries = measured_site_load(routing, queries)
    per_site_responses = measured_site_load(routing, responses)
    site_codes = routing.policy.site_codes

    sources_by_site: Dict[str, int] = {code: 0 for code in site_codes}
    for block in load.blocks:
        site = routing.site_of_block(int(block))
        if site is not None:
            sources_by_site[site] += 1

    sites = [
        SiteTrafficReport(
            site_code=code,
            queries=per_site_queries.daily_of(code),
            responses=per_site_responses.daily_of(code),
            unique_sources=sources_by_site[code],
        )
        for code in site_codes
    ]
    return Rssac002Report(
        service_name=service_name,
        date_label=load.date_label,
        total_queries=queries.total(),
        total_responses=responses.total(),
        unique_sources=len(load),
        sites=sites,
    )
