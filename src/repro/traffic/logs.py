"""Day-long query-load datasets.

A :class:`DayLoad` is the cleaned, aggregated form of a day of server
logs: for every source /24 block, hourly query counts plus the
fractions of queries that produced good replies and any reply at all
(the paper separates queries / good replies / all replies, §3.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TextIO, Tuple

import numpy as np

from repro.errors import DatasetError

HOURS = 24


class LoadKind:
    """The three load measures of paper §3.2."""

    QUERIES = "queries"
    GOOD_REPLIES = "good_replies"
    ALL_REPLIES = "all_replies"

    ALL = (QUERIES, GOOD_REPLIES, ALL_REPLIES)


class DayLoad:
    """Hourly per-/24 load for one day of one service."""

    def __init__(
        self,
        service_name: str,
        date_label: str,
        blocks: Iterable[int],
        queries: np.ndarray,
        good_fraction: np.ndarray,
        reply_fraction: np.ndarray,
    ) -> None:
        self.service_name = service_name
        self.date_label = date_label
        if isinstance(blocks, np.ndarray):
            # Keep array inputs as-is (including read-only memmaps from
            # a persisted table store) — no per-element Python pass.
            self.blocks = blocks.astype(np.int64, copy=False)
        else:
            self.blocks = np.asarray(list(blocks), dtype=np.int64)
        if self.blocks.size and np.any(np.diff(self.blocks) <= 0):
            raise DatasetError("blocks must be strictly ascending")
        self.queries = np.asarray(queries, dtype=np.float64)
        self.good_fraction = np.asarray(good_fraction, dtype=np.float64)
        self.reply_fraction = np.asarray(reply_fraction, dtype=np.float64)
        n = self.blocks.size
        if self.queries.shape != (n, HOURS):
            raise DatasetError(
                f"queries shape {self.queries.shape} != ({n}, {HOURS})"
            )
        if self.good_fraction.shape != (n,) or self.reply_fraction.shape != (n,):
            raise DatasetError("fraction arrays must be one value per block")
        self._index_cache: Optional[Dict[int, int]] = None

    @property
    def _index(self) -> Dict[int, int]:
        """Block -> row lookup, built lazily.

        Columnar consumers never touch it, so a memmap-backed day
        cold-starts without a million-entry dict build.
        """
        if self._index_cache is None:
            self._index_cache = {
                int(block): row for row, block in enumerate(self.blocks)
            }
        return self._index_cache

    def __len__(self) -> int:
        return self.blocks.size

    def __contains__(self, block: int) -> bool:
        return block in self._index

    def row_of(self, block: int) -> Optional[int]:
        """Row index of ``block`` or None."""
        return self._index.get(block)

    # -- daily totals -----------------------------------------------------

    def daily_queries(self) -> np.ndarray:
        """Per-block queries/day."""
        return self.queries.sum(axis=1)

    def daily_of_kind(self, kind: str) -> np.ndarray:
        """Per-block daily totals of ``kind``."""
        daily = self.daily_queries()
        if kind == LoadKind.QUERIES:
            return daily
        if kind == LoadKind.GOOD_REPLIES:
            return daily * self.good_fraction
        if kind == LoadKind.ALL_REPLIES:
            return daily * self.reply_fraction
        raise DatasetError(f"unknown load kind {kind!r}")

    def total_queries(self) -> float:
        """Queries/day across all blocks."""
        return float(self.queries.sum())

    def mean_qps(self) -> float:
        """Mean queries/second over the day."""
        return self.total_queries() / 86_400.0

    def hourly_totals(self) -> np.ndarray:
        """Total queries per hour (length-24 vector)."""
        return self.queries.sum(axis=0)

    def queries_of_block(self, block: int) -> float:
        """Queries/day from ``block`` (0.0 if absent)."""
        row = self._index.get(block)
        return float(self.queries[row].sum()) if row is not None else 0.0

    def top_blocks(self, count: int) -> List[Tuple[int, float]]:
        """The heaviest ``count`` blocks as ``(block, queries/day)``.

        Ties break toward the lower block id via a stable ``lexsort``;
        an unkeyed float ``argsort`` would leave tied blocks in
        quicksort-partition order, which varies across numpy builds.
        """
        daily = self.daily_queries()
        order = np.lexsort((self.blocks, -daily))[:count]
        return [(int(self.blocks[i]), float(daily[i])) for i in order]

    # -- transforms ---------------------------------------------------------

    def scaled(self, factor: float) -> "DayLoad":
        """A copy with all query counts multiplied by ``factor``."""
        if factor <= 0:
            raise DatasetError("scale factor must be positive")
        return DayLoad(
            self.service_name,
            self.date_label,
            self.blocks,
            self.queries * factor,
            self.good_fraction,
            self.reply_fraction,
        )

    def restrict(self, blocks: Iterable[int]) -> "DayLoad":
        """A copy containing only the given blocks (those present)."""
        keep = sorted(set(blocks) & set(self._index))
        rows = [self._index[block] for block in keep]
        return DayLoad(
            self.service_name,
            self.date_label,
            keep,
            self.queries[rows],
            self.good_fraction[rows],
            self.reply_fraction[rows],
        )

    # -- serialisation -------------------------------------------------------

    def write_tsv(self, stream: TextIO) -> None:
        """Write as TSV: block, good_frac, reply_frac, then 24 hourly counts."""
        stream.write(f"# service={self.service_name} date={self.date_label}\n")
        for row, block in enumerate(self.blocks):
            hours = "\t".join(f"{value:.3f}" for value in self.queries[row])
            stream.write(
                f"{int(block)}\t{self.good_fraction[row]:.6f}\t"
                f"{self.reply_fraction[row]:.6f}\t{hours}\n"
            )

    @classmethod
    def read_tsv(cls, stream: TextIO) -> "DayLoad":
        """Parse the format produced by :meth:`write_tsv`."""
        header = stream.readline().strip()
        if not header.startswith("# service="):
            raise DatasetError("missing DayLoad header line")
        try:
            service_part, date_part = header[2:].split(" ")
            service_name = service_part.split("=", 1)[1]
            date_label = date_part.split("=", 1)[1]
        except (ValueError, IndexError) as error:
            raise DatasetError(f"malformed DayLoad header: {header!r}") from error
        blocks: List[int] = []
        rows: List[List[float]] = []
        good: List[float] = []
        reply: List[float] = []
        for line_number, line in enumerate(stream, 2):
            line = line.strip()
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) != 3 + HOURS:
                raise DatasetError(
                    f"line {line_number}: expected {3 + HOURS} fields, got {len(fields)}"
                )
            blocks.append(int(fields[0]))
            good.append(float(fields[1]))
            reply.append(float(fields[2]))
            rows.append([float(value) for value in fields[3:]])
        return cls(
            service_name,
            date_label,
            blocks,
            np.asarray(rows, dtype=np.float64).reshape(len(blocks), HOURS),
            np.asarray(good),
            np.asarray(reply),
        )
