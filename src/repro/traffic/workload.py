"""Workload profiles: who sends DNS traffic, and how much.

A profile captures the paper's observations about real query load:

* only a fraction of blocks send queries at all (ISPs concentrate DNS
  behind recursive resolvers at a few data centres — §5.4);
* per-block volume is heavy-tailed, with designated resolver blocks
  carrying most of an AS's traffic;
* some regions (India) push huge volume through few blocks (NAT);
* some regions (Korea, Japan) send traffic from blocks that do not
  answer pings, producing the paper's "unmappable" 12.9% (Table 5);
* regional services (.nl) concentrate traffic near home (Figure 4b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters of a synthetic query workload.

    ``country_multiplier`` scales per-block traffic volume by country;
    ``country_sender_fraction`` overrides what share of a country's
    blocks send queries at all.  ``resolver_fraction`` of sending
    blocks are data-centre resolvers carrying ``resolver_boost``× the
    base volume.
    """

    name: str
    sender_fraction: float = 0.30
    dark_sender_penalty: float = 0.08
    resolver_fraction: float = 0.04
    resolver_boost: float = 40.0
    lognormal_sigma: float = 1.6
    base_queries_per_day: float = 2_000.0
    good_reply_low: float = 0.30
    good_reply_high: float = 0.75
    reply_fraction_low: float = 0.92
    reply_fraction_high: float = 1.00
    diurnal_amplitude: float = 0.45
    country_multiplier: Dict[str, float] = field(default_factory=dict)
    country_sender_fraction: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in (
            "sender_fraction",
            "dark_sender_penalty",
            "resolver_fraction",
            "diurnal_amplitude",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name}={value} must be in [0, 1]")
        if self.base_queries_per_day <= 0:
            raise ConfigurationError("base_queries_per_day must be positive")
        if self.resolver_boost < 1:
            raise ConfigurationError("resolver_boost must be >= 1")
        if not 0.0 <= self.good_reply_low <= self.good_reply_high <= 1.0:
            raise ConfigurationError("good reply fractions must satisfy 0<=low<=high<=1")
        if not 0.0 <= self.reply_fraction_low <= self.reply_fraction_high <= 1.0:
            raise ConfigurationError("reply fractions must satisfy 0<=low<=high<=1")

    def multiplier_for(self, country_code: str) -> float:
        """Volume multiplier for blocks in ``country_code``."""
        return self.country_multiplier.get(country_code, 1.0)

    def sender_fraction_for(self, country_code: str) -> float:
        """Fraction of blocks in ``country_code`` that send queries."""
        return self.country_sender_fraction.get(country_code, self.sender_fraction)

    def has_sender_override(self, country_code: str) -> bool:
        """True when ``country_code`` has an explicit sender fraction.

        Overridden countries (Korea, Japan, ...) model populations that
        send real traffic from ping-dark blocks, so the dark-sender
        penalty does not apply to them.
        """
        return country_code in self.country_sender_fraction


def root_profile() -> WorkloadProfile:
    """Global root-server-like workload (B-Root, Table 2 LB-* datasets).

    Load roughly follows Internet users; India is NAT-boosted; Korea
    and Japan send plenty of traffic from ping-dark blocks (which is
    why they dominate the unmappable slice in Figure 4a).
    """
    return WorkloadProfile(
        name="root",
        country_multiplier={"IN": 6.0, "KR": 2.5, "CN": 1.5},
        country_sender_fraction={"KR": 0.45, "JP": 0.35},
    )


def nl_profile() -> WorkloadProfile:
    """Regional ccTLD-like workload (.nl, Figure 4b).

    Traffic concentrates in the Netherlands and Europe with a
    significant US share and a thin global tail.
    """
    return WorkloadProfile(
        name="nl",
        sender_fraction=0.12,
        country_multiplier={
            "NL": 60.0,
            "DE": 12.0,
            "GB": 9.0,
            "FR": 8.0,
            "SE": 6.0,
            "DK": 6.0,
            "ES": 5.0,
            "IT": 5.0,
            "PL": 4.0,
            "CZ": 4.0,
            "US": 7.0,
            "CA": 2.0,
        },
        country_sender_fraction={"NL": 0.75, "DE": 0.40, "GB": 0.35, "US": 0.20},
    )
