"""Query-name sampling: the names behind the load numbers.

The aggregate workload (:mod:`repro.traffic.ditl`) assigns each block a
*good-reply fraction*; this module realises that fraction as actual
query names — resolvable ones under the synthetic root's TLDs, and the
junk that has dominated root-server traffic since 1992 (paper §3.2
citing [15]).  Feeding the sampled names through the
:class:`~repro.dns.root.RootServer` recovers the configured fraction,
which the integration tests verify.
"""

from __future__ import annotations

from typing import List

from repro.dns.zone import Zone
from repro.errors import ConfigurationError
from repro.rng import uniform_unit

_KIND_SALT = 0x4E414D45
_PICK_SALT = 0x5049434B
_LABELS = (
    "www", "mail", "ns1", "api", "cdn", "app", "login", "static",
    "update", "time", "pool", "mx",
)
_JUNK_SUFFIXES = (
    "local", "belkin", "home", "corp", "lan", "internal", "wpad",
    "localdomain", "zzzzz", "invalid-tld",
)


class QueryNameSampler:
    """Deterministic per-(block, query) name generation."""

    def __init__(self, zone: Zone, seed: int) -> None:
        self._tlds: List[str] = zone.delegated_children()
        if not self._tlds:
            raise ConfigurationError("zone has no delegations to sample from")
        self._seed = seed

    def sample(self, block: int, index: int, good_probability: float) -> str:
        """The ``index``-th query name sent by ``block``.

        With ``good_probability`` the name resolves (a second-level name
        under a delegated TLD -> referral); otherwise it is junk under a
        non-existent suffix (-> NXDOMAIN).
        """
        good = (
            uniform_unit(self._seed, _KIND_SALT, block, index) < good_probability
        )
        pick = uniform_unit(self._seed, _PICK_SALT, block, index)
        label = _LABELS[int(pick * 1e6) % len(_LABELS)]
        if good:
            tld = self._tlds[int(pick * 1e9) % len(self._tlds)]
            return f"{label}.example.{tld}"
        suffix = _JUNK_SUFFIXES[int(pick * 1e9) % len(_JUNK_SUFFIXES)]
        return f"{label}.{suffix}"

    def sample_many(
        self, block: int, count: int, good_probability: float
    ) -> List[str]:
        """The first ``count`` query names of ``block``."""
        return [
            self.sample(block, index, good_probability) for index in range(count)
        ]
