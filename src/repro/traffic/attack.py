"""Volumetric attack workloads layered on the diurnal day.

"Anycast Agility: Network Playbooks to Fight DDoS" (PAPERS.md) plans
mitigations against *volumetric* attacks: a hotspot of source blocks —
typically concentrated in one site's catchment — suddenly multiplies
the service's query volume for a few hours.  This module turns that
attack model into data the rest of the pipeline already understands: an
:class:`AttackProfile` plus a deterministic attacker sample compose
with any baseline :class:`~repro.traffic.logs.DayLoad` into a new
``DayLoad``, so catchment weighting, capacity checks, and the playbook
planner (:mod:`repro.core.playbook`) treat attack days exactly like
ordinary days.

Everything is deterministic in the seed: attacker selection and
per-attacker volume draws go through :func:`repro.rng.uniform_unit`
with module-level salts, mirroring :mod:`repro.traffic.ditl`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.anycast.catchment import CatchmentMap
from repro.errors import ConfigurationError, DatasetError
from repro.rng import uniform_unit
from repro.traffic.logs import HOURS, DayLoad

_HOTSPOT_SALT = 0x41545048  # attacker-sample membership draws
_ATTACK_VOLUME_SALT = 0x41545656  # per-attacker volume weights


@dataclass(frozen=True)
class AttackProfile:
    """One volumetric attack scenario.

    ``intensity`` is the attack's hourly rate as a multiple of the
    baseline day's **peak-hour** rate — the unit operators reason in
    ("a flood twice our busiest hour"), and deliberately the peak
    rather than the mean: capacity planning across the repo compares
    peak rates (see :meth:`repro.load.estimator.LoadEstimate.peak_qph`
    and :func:`repro.load.weighting.capacity_violations`), so an
    intensity-1.0 attack doubles the service's previous worst hour.
    ``hotspot_fraction`` is the share of the target site's catchment
    blocks that source attack traffic; the attack runs for
    ``duration_hours`` starting at UTC ``start_hour`` (wrapping past
    midnight), flat across the window.
    """

    target_site: str
    intensity: float = 1.0
    hotspot_fraction: float = 0.5
    start_hour: int = 12
    duration_hours: int = 4
    name: str = "volumetric"

    def __post_init__(self) -> None:
        if self.intensity <= 0:
            raise ConfigurationError("attack intensity must be positive")
        if not 0 < self.hotspot_fraction <= 1:
            raise ConfigurationError("hotspot fraction must be in (0, 1]")
        if not 0 <= self.start_hour < HOURS:
            raise ConfigurationError(f"start hour must be in [0, {HOURS})")
        if not 1 <= self.duration_hours <= HOURS:
            raise ConfigurationError(
                f"attack duration must be 1..{HOURS} hours"
            )

    def window_hours(self) -> Tuple[int, ...]:
        """The UTC hour bins the attack occupies, in firing order."""
        return tuple(
            (self.start_hour + offset) % HOURS
            for offset in range(self.duration_hours)
        )


def hotspot_blocks(
    catchment: CatchmentMap,
    site_code: str,
    fraction: float,
    seed: int,
) -> List[int]:
    """Deterministic attacker sample from one site's catchment.

    Each block mapped to ``site_code`` joins the attacker population
    with probability ``fraction`` via a salted per-block draw, so the
    sample is a pure function of (seed, block) — independent of
    iteration order and of every other block.  A non-empty catchment
    always yields at least one attacker (the lowest block), so an
    attack on a mapped site never degenerates to a no-op.
    """
    if not 0 < fraction <= 1:
        raise ConfigurationError("hotspot fraction must be in (0, 1]")
    members = sorted(catchment.blocks_of_site(site_code))
    chosen = [
        block
        for block in members
        if uniform_unit(seed, _HOTSPOT_SALT, block) < fraction
    ]
    if not chosen and members:
        chosen = [members[0]]
    return chosen


def attack_day_load(
    baseline: DayLoad,
    attackers: Sequence[int],
    profile: AttackProfile,
    seed: int,
) -> DayLoad:
    """Overlay ``profile``'s flood from ``attackers`` onto a baseline day.

    The attack's hourly rate (``intensity`` x the baseline day's peak
    hour) times the window length gives its total volume, split across
    the attacker blocks with mildly uneven per-block weights (salted
    draws in ``[0.5, 1.5)``, normalised), then spread flat over the
    attack window's hour bins.  The result is a
    valid :class:`DayLoad` over the union block universe: baseline
    hourly counts are preserved bit-for-bit outside the window and
    merely *added to* inside it, so the composition commutes with
    restriction and with the diurnal shape of the underlying day.

    Blocks already in the baseline keep their good/all-reply fractions
    (the QUERIES load kind, which capacity planning uses, is
    fraction-independent); attacker-only blocks get ``good_fraction``
    0.0 and ``reply_fraction`` 1.0 — junk queries that all draw an
    answer but never a good one.
    """
    attacker_array = np.unique(np.asarray(list(attackers), dtype=np.int64))
    if attacker_array.size == 0:
        raise DatasetError("attack needs at least one attacker block")
    peak_rate = float(baseline.hourly_totals().max()) if len(baseline) else 0.0
    attack_total = profile.intensity * peak_rate * profile.duration_hours
    if attack_total <= 0:
        raise DatasetError("baseline day has no traffic to scale against")

    weights = 0.5 + np.asarray(
        [
            uniform_unit(seed, _ATTACK_VOLUME_SALT, int(block))
            for block in attacker_array
        ],
        dtype=np.float64,
    )
    per_block_daily = attack_total * weights / weights.sum()
    per_block_hourly = per_block_daily / profile.duration_hours

    union = np.union1d(baseline.blocks, attacker_array)
    queries = np.zeros((union.size, HOURS), dtype=np.float64)
    good = np.zeros(union.size, dtype=np.float64)
    reply = np.ones(union.size, dtype=np.float64)

    baseline_rows = np.searchsorted(union, baseline.blocks)
    queries[baseline_rows] = baseline.queries
    good[baseline_rows] = baseline.good_fraction
    reply[baseline_rows] = baseline.reply_fraction

    attacker_rows = np.searchsorted(union, attacker_array)
    for hour in profile.window_hours():
        queries[attacker_rows, hour] += per_block_hourly

    return DayLoad(
        service_name=baseline.service_name,
        date_label=f"{baseline.date_label}+{profile.name}",
        blocks=union,
        queries=queries,
        good_fraction=good,
        reply_fraction=reply,
    )


def compose_attack(
    baseline: DayLoad,
    catchment: CatchmentMap,
    profile: AttackProfile,
    seed: int,
) -> Tuple[DayLoad, List[int]]:
    """Sample the hotspot and overlay it in one step.

    Convenience for the CLI / planner path: returns the attack-day load
    together with the attacker blocks (the latter feed
    :func:`repro.core.experiments.attack_absorption` and the playbook
    artifact's attacker count).
    """
    attackers = hotspot_blocks(
        catchment, profile.target_site, profile.hotspot_fraction, seed
    )
    if not attackers:
        raise DatasetError(
            f"site {profile.target_site!r} has an empty catchment; "
            "nothing to concentrate an attack on"
        )
    return attack_day_load(baseline, attackers, profile, seed), attackers
