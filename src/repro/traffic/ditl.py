"""DITL-style day builders: a full synthetic day of query logs.

Produces a :class:`~repro.traffic.logs.DayLoad` from a topology and a
:class:`~repro.traffic.workload.WorkloadProfile`: deterministic
per-block daily volumes (heavy-tailed, resolver-concentrated,
regionally weighted) spread over 24 hourly bins with a local-time
diurnal curve.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.rng import uniform_unit
from repro.topology.internet import Internet
from repro.traffic.logs import HOURS, DayLoad
from repro.traffic.workload import WorkloadProfile

_SENDER_SALT = 0x53454E44
_VOLUME_SALT = 0x564F4C00
_RESOLVER_SALT = 0x5245534F
_GOOD_SALT = 0x474F4F44
_REPLY_SALT = 0x5245504C
_PEAK_LOCAL_HOUR = 14.0


def _gaussian_from_unit(u1: float, u2: float) -> float:
    """Box-Muller transform of two uniform draws."""
    u1 = max(u1, 1e-12)
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


def build_day_load(
    internet: Internet,
    profile: WorkloadProfile,
    date_label: str,
    seed: Optional[int] = None,
    day_index: int = 0,
    target_total_queries: Optional[float] = None,
) -> DayLoad:
    """Build one day of query logs for ``internet`` under ``profile``.

    ``day_index`` decorrelates different days slightly (load drifts a
    few percent day to day); ``target_total_queries`` rescales the whole
    day to a fixed total (e.g. the paper's 2.2G queries/day, scaled).
    """
    seed = internet.seed if seed is None else seed
    blocks: List[int] = []
    daily: List[float] = []
    longitudes: List[float] = []
    good: List[float] = []
    reply: List[float] = []
    for block in internet.blocks:
        record = internet.geodb.locate(block)
        country = record.country_code if record is not None else None
        sender_fraction = (
            profile.sender_fraction_for(country)
            if country is not None
            else profile.sender_fraction
        )
        # Query sources are mostly resolver infrastructure, which is far
        # more ping-responsive than the average /24 — without this
        # correlation the unmappable share of traffic (paper Table 5:
        # 17.6%) would balloon to ~50%.  Countries with explicit sender
        # overrides (Korea, Japan) keep their ping-dark senders.
        if country is None or not profile.has_sender_override(country):
            responsive = internet.host_model.is_stable_responder(block, country)
            if not responsive:
                sender_fraction *= profile.dark_sender_penalty
        if uniform_unit(seed, _SENDER_SALT, block) >= sender_fraction:
            continue
        u1 = uniform_unit(seed, _VOLUME_SALT, block, 1)
        u2 = uniform_unit(seed, _VOLUME_SALT, block, 2)
        volume = profile.base_queries_per_day * math.exp(
            profile.lognormal_sigma * _gaussian_from_unit(u1, u2)
        )
        if uniform_unit(seed, _RESOLVER_SALT, block) < profile.resolver_fraction:
            volume *= profile.resolver_boost
        if country is not None:
            volume *= profile.multiplier_for(country)
        # Mild day-to-day drift so different dates differ realistically.
        drift = 0.9 + 0.2 * uniform_unit(seed, _VOLUME_SALT, block, 100 + day_index)
        volume *= drift
        blocks.append(block)
        daily.append(volume)
        longitudes.append(record.longitude if record is not None else 0.0)
        good_draw = uniform_unit(seed, _GOOD_SALT, block)
        good.append(
            profile.good_reply_low
            + (profile.good_reply_high - profile.good_reply_low) * good_draw
        )
        reply_draw = uniform_unit(seed, _REPLY_SALT, block)
        reply.append(
            profile.reply_fraction_low
            + (profile.reply_fraction_high - profile.reply_fraction_low) * reply_draw
        )

    daily_array = np.asarray(daily, dtype=np.float64)
    longitude_array = np.asarray(longitudes, dtype=np.float64)
    utc_hours = np.arange(HOURS, dtype=np.float64)
    # Diurnal curve peaking at local afternoon; hour weights normalised
    # per block so the daily total is exactly the drawn volume.
    local_hours = (utc_hours[None, :] + longitude_array[:, None] / 15.0) % 24.0
    phase = 2.0 * math.pi * (local_hours - _PEAK_LOCAL_HOUR) / 24.0
    weights = 1.0 + profile.diurnal_amplitude * np.cos(phase)
    weights /= weights.sum(axis=1, keepdims=True)
    queries = daily_array[:, None] * weights

    load = DayLoad(
        service_name=profile.name,
        date_label=date_label,
        blocks=blocks,
        queries=queries,
        good_fraction=np.asarray(good),
        reply_fraction=np.asarray(reply),
    )
    if target_total_queries is not None and load.total_queries() > 0:
        load = load.scaled(target_total_queries / load.total_queries())
    return load
