"""Authoritative DNS zones with delegation.

A :class:`Zone` holds RRsets and delegation points and answers the
question an authoritative server must: answer, referral, or NXDOMAIN.
Used to give the anycast service a real root-like zone to serve
(paper §3.2's load types — *good replies* vs junk — fall straight out
of zone lookups: junk names get NXDOMAIN).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.message import TYPE_NS, TYPE_SOA, DnsRecord
from repro.errors import DNSError


def _normalize(name: str) -> str:
    return name.rstrip(".").lower()


@dataclass
class ZoneAnswer:
    """Result of one zone lookup."""

    rcode: int
    answers: List[DnsRecord] = field(default_factory=list)
    authorities: List[DnsRecord] = field(default_factory=list)
    additionals: List[DnsRecord] = field(default_factory=list)

    @property
    def is_referral(self) -> bool:
        """True when the answer delegates to a child zone."""
        return (
            self.rcode == 0
            and not self.answers
            and any(record.rtype == TYPE_NS for record in self.authorities)
        )


class Zone:
    """One authoritative zone (e.g. the root)."""

    def __init__(self, origin: str, soa: DnsRecord) -> None:
        if soa.rtype != TYPE_SOA:
            raise DNSError("zone needs an SOA record")
        self.origin = _normalize(origin)
        self.soa = soa
        self._rrsets: Dict[Tuple[str, int], List[DnsRecord]] = {}
        self._delegations: Dict[str, List[DnsRecord]] = {}
        self._glue: Dict[str, List[DnsRecord]] = {}
        self.add_record(soa)

    # -- construction -----------------------------------------------------

    def add_record(self, record: DnsRecord) -> None:
        """Add an authoritative record at a name inside the zone."""
        name = _normalize(record.name)
        if not self._in_zone(name):
            raise DNSError(f"{record.name!r} is outside zone {self.origin!r}")
        self._rrsets.setdefault((name, record.rtype), []).append(record)

    def add_delegation(
        self, child: str, ns_records: List[DnsRecord],
        glue: Optional[List[DnsRecord]] = None,
    ) -> None:
        """Delegate ``child`` to the given NS records (+ optional glue)."""
        child = _normalize(child)
        if not self._in_zone(child) or child == self.origin:
            raise DNSError(f"cannot delegate {child!r} from {self.origin!r}")
        if not ns_records or any(r.rtype != TYPE_NS for r in ns_records):
            raise DNSError("delegation needs NS records")
        self._delegations[child] = list(ns_records)
        self._glue[child] = list(glue or [])

    # -- lookup ------------------------------------------------------------

    def _in_zone(self, name: str) -> bool:
        if self.origin == "":
            return True
        return name == self.origin or name.endswith("." + self.origin)

    def _delegation_covering(self, name: str) -> Optional[str]:
        """The delegation point at or above ``name``, if any."""
        labels = name.split(".") if name else []
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            if candidate in self._delegations:
                return candidate
        return None

    def lookup(self, qname: str, qtype: int) -> ZoneAnswer:
        """Authoritative lookup: answer, referral, or NXDOMAIN.

        NXDOMAIN and NODATA responses carry the SOA in the authority
        section, as real servers do.
        """
        name = _normalize(qname)
        if not self._in_zone(name):
            return ZoneAnswer(rcode=5)  # REFUSED: not our zone
        delegation = self._delegation_covering(name)
        if delegation is not None:
            # Anything at or below a delegation point gets a referral —
            # the parent is not authoritative there (root servers answer
            # "com NS" with a referral too).
            return ZoneAnswer(
                rcode=0,
                authorities=list(self._delegations[delegation]),
                additionals=list(self._glue[delegation]),
            )
        exact = self._rrsets.get((name, qtype))
        if exact:
            return ZoneAnswer(rcode=0, answers=list(exact))
        # Name exists with other types -> NODATA; else NXDOMAIN.
        name_exists = any(key[0] == name for key in self._rrsets)
        return ZoneAnswer(
            rcode=0 if name_exists else 3,
            authorities=[self.soa],
        )

    def delegated_children(self) -> List[str]:
        """All delegation points (e.g. the TLDs of a root zone)."""
        return sorted(self._delegations)

    def record_count(self) -> int:
        """Total authoritative records (excluding delegations/glue)."""
        return sum(len(records) for records in self._rrsets.values())
