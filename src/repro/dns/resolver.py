"""Iterative resolution over the synthetic namespace.

Builds the delegation hierarchy under the synthetic root — TLD zones
that delegate ``example.<tld>``, and leaf zones with real A records —
and an iterative resolver that walks root → TLD → leaf following
referrals and glue, exactly as the recursive resolvers behind the
paper's query load do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dns.message import (
    RCODE_NXDOMAIN,
    TYPE_A,
    DnsRecord,
)
from repro.dns.root import build_root_zone
from repro.dns.zone import Zone, ZoneAnswer
from repro.errors import DNSError
from repro.rng import mix64

_LEAF_HOSTS = (
    "www", "mail", "ns1", "api", "cdn", "app", "login", "static",
    "update", "time", "pool", "mx",
)
_LEAF_BASE = 0x0B000000  # 11.0.0.0/8: leaf host addresses
_LEAF_MASK = 0x00FFFFFF


def _leaf_address(name: str) -> int:
    raw = int.from_bytes(name.encode("ascii")[:8].ljust(8, b"\0"), "little")
    return _LEAF_BASE | (mix64(raw ^ mix64(len(name))) & _LEAF_MASK)


def build_tld_zone(tld: str) -> Zone:
    """A TLD zone delegating ``example.<tld>`` to its own nameservers."""
    zone = Zone(tld, DnsRecord.soa(tld, f"a.nic.{tld}", f"hostmaster.{tld}", 1))
    zone.add_record(DnsRecord.ns(tld, f"a.nic.{tld}"))
    child = f"example.{tld}"
    ns_name = f"ns1.{child}"
    zone.add_delegation(
        child,
        [DnsRecord.ns(child, ns_name)],
        glue=[DnsRecord.a(ns_name, _leaf_address(ns_name))],
    )
    return zone


def build_leaf_zone(origin: str) -> Zone:
    """A second-level zone with A records for the common host labels."""
    zone = Zone(
        origin, DnsRecord.soa(origin, f"ns1.{origin}", f"hostmaster.{origin}", 1)
    )
    zone.add_record(DnsRecord.ns(origin, f"ns1.{origin}"))
    zone.add_record(DnsRecord.a(f"ns1.{origin}", _leaf_address(f"ns1.{origin}")))
    for host in _LEAF_HOSTS:
        name = f"{host}.{origin}"
        zone.add_record(DnsRecord.a(name, _leaf_address(name)))
    return zone


class SyntheticNamespace:
    """The whole delegation tree: root, TLD zones, and leaf zones."""

    def __init__(self) -> None:
        self.root = build_root_zone()
        self._zones: Dict[str, Zone] = {"": self.root}

    def zone_for(self, origin: str) -> Zone:
        """The authoritative zone at ``origin`` (built lazily)."""
        origin = origin.rstrip(".").lower()
        cached = self._zones.get(origin)
        if cached is not None:
            return cached
        labels = origin.split(".")
        if len(labels) == 1 and origin in self.root.delegated_children():
            zone = build_tld_zone(origin)
        elif len(labels) == 2 and labels[0] == "example":
            zone = build_leaf_zone(origin)
        else:
            raise DNSError(f"no authoritative zone at {origin!r}")
        self._zones[origin] = zone
        return zone


@dataclass
class ResolutionResult:
    """Outcome of one iterative resolution."""

    qname: str
    rcode: int
    answers: List[DnsRecord] = field(default_factory=list)
    zones_consulted: List[str] = field(default_factory=list)

    @property
    def address(self) -> Optional[int]:
        """The first A answer, when present."""
        for record in self.answers:
            if record.rtype == TYPE_A:
                return record.a_address()
        return None


class IterativeResolver:
    """Follows referrals from the root down to an authoritative answer."""

    def __init__(self, namespace: Optional[SyntheticNamespace] = None,
                 max_depth: int = 8) -> None:
        self.namespace = namespace if namespace is not None else SyntheticNamespace()
        if max_depth < 1:
            raise DNSError("max_depth must be >= 1")
        self._max_depth = max_depth

    def resolve(self, qname: str, qtype: int = TYPE_A) -> ResolutionResult:
        """Resolve ``qname`` iteratively; returns the final answer."""
        result = ResolutionResult(qname=qname, rcode=RCODE_NXDOMAIN)
        zone = self.namespace.zone_for("")
        for _ in range(self._max_depth):
            result.zones_consulted.append(zone.origin or ".")
            answer: ZoneAnswer = zone.lookup(qname, qtype)
            if not answer.is_referral:
                result.rcode = answer.rcode
                result.answers = answer.answers
                return result
            child = answer.authorities[0].name
            try:
                zone = self.namespace.zone_for(child)
            except DNSError:
                # Delegation to a zone nobody serves: resolution fails
                # (the real-world lame-delegation case).
                result.rcode = 2  # SERVFAIL
                return result
        raise DNSError(f"resolution of {qname!r} exceeded {self._max_depth} referrals")
