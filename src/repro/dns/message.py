"""DNS wire format: header, questions, TXT and OPT records.

Covers what catchment mapping needs — CHAOS TXT ``hostname.bind``
queries and NSID — with RFC 1035-conformant encoding.  Name
*decompression* (pointer chasing) is supported for robustness; we never
emit pointers ourselves.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import DNSError

TYPE_A = 1
TYPE_NS = 2
TYPE_SOA = 6
TYPE_TXT = 16
TYPE_OPT = 41
CLASS_IN = 1
CLASS_CHAOS = 3
EDNS_OPTION_NSID = 3
RCODE_NOERROR = 0
RCODE_NXDOMAIN = 3
RCODE_REFUSED = 5

_FLAG_QR = 1 << 15
_FLAG_AA = 1 << 10
_MAX_LABEL = 63
_MAX_NAME = 255
_POINTER_MASK = 0xC0


def encode_name(name: str) -> bytes:
    """Encode a dotted name into DNS label format."""
    if name in ("", "."):
        return b"\x00"
    wire = bytearray()
    for label in name.rstrip(".").split("."):
        raw = label.encode("ascii")
        if not raw:
            raise DNSError(f"empty label in {name!r}")
        if len(raw) > _MAX_LABEL:
            raise DNSError(f"label too long in {name!r}")
        wire.append(len(raw))
        wire.extend(raw)
    wire.append(0)
    if len(wire) > _MAX_NAME:
        raise DNSError(f"name too long: {name!r}")
    return bytes(wire)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) name; return (name, next offset)."""
    labels: List[str] = []
    jumps = 0
    next_offset: Optional[int] = None
    position = offset
    while True:
        if position >= len(data):
            raise DNSError("name runs past end of message")
        length = data[position]
        if length & _POINTER_MASK == _POINTER_MASK:
            if position + 1 >= len(data):
                raise DNSError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[position + 1]
            if next_offset is None:
                next_offset = position + 2
            jumps += 1
            if jumps > 32:
                raise DNSError("compression pointer loop")
            position = pointer
            continue
        if length & _POINTER_MASK:
            raise DNSError(f"bad label length byte {length:#x}")
        position += 1
        if length == 0:
            break
        if position + length > len(data):
            raise DNSError("label runs past end of message")
        raw = data[position : position + length]
        try:
            labels.append(raw.decode("ascii"))
        except UnicodeDecodeError:
            raise DNSError(f"non-ASCII label {raw!r}") from None
        position += length
    if next_offset is None:
        next_offset = position
    return ".".join(labels), next_offset


@dataclass(frozen=True)
class DnsQuestion:
    """One question-section entry."""

    name: str
    qtype: int
    qclass: int

    def encode(self) -> bytes:
        """Wire-format bytes of this question entry."""
        return encode_name(self.name) + struct.pack("!HH", self.qtype, self.qclass)


@dataclass(frozen=True)
class DnsRecord:
    """One resource record (answer/authority/additional sections)."""

    name: str
    rtype: int
    rclass: int
    ttl: int
    rdata: bytes

    def encode(self) -> bytes:
        """Wire-format bytes of this resource record."""
        return (
            encode_name(self.name)
            + struct.pack("!HHIH", self.rtype, self.rclass, self.ttl, len(self.rdata))
            + self.rdata
        )

    @staticmethod
    def txt(name: str, text: str, rclass: int = CLASS_CHAOS, ttl: int = 0) -> "DnsRecord":
        """Build a single-string TXT record."""
        raw = text.encode("utf-8")
        if len(raw) > 255:
            raise DNSError("TXT string longer than 255 bytes")
        return DnsRecord(name, TYPE_TXT, rclass, ttl, bytes([len(raw)]) + raw)

    def txt_strings(self) -> List[str]:
        """Decode TXT rdata into its strings."""
        if self.rtype != TYPE_TXT:
            raise DNSError("not a TXT record")
        strings: List[str] = []
        position = 0
        while position < len(self.rdata):
            length = self.rdata[position]
            position += 1
            if position + length > len(self.rdata):
                raise DNSError("TXT string runs past rdata")
            strings.append(self.rdata[position : position + length].decode("utf-8"))
            position += length
        return strings

    @staticmethod
    def a(name: str, address: int, ttl: int = 3600) -> "DnsRecord":
        """Build an A record from a 32-bit address."""
        return DnsRecord(name, TYPE_A, CLASS_IN, ttl, address.to_bytes(4, "big"))

    def a_address(self) -> int:
        """Decode an A record's address."""
        if self.rtype != TYPE_A or len(self.rdata) != 4:
            raise DNSError("not a well-formed A record")
        return int.from_bytes(self.rdata, "big")

    @staticmethod
    def ns(name: str, target: str, ttl: int = 3600) -> "DnsRecord":
        """Build an NS record."""
        return DnsRecord(name, TYPE_NS, CLASS_IN, ttl, encode_name(target))

    def ns_target(self) -> str:
        """Decode an NS record's nameserver name."""
        if self.rtype != TYPE_NS:
            raise DNSError("not an NS record")
        target, _ = decode_name(self.rdata, 0)
        return target

    @staticmethod
    def soa(
        name: str,
        mname: str,
        rname: str,
        serial: int,
        refresh: int = 1800,
        retry: int = 900,
        expire: int = 604800,
        minimum: int = 86400,
        ttl: int = 86400,
    ) -> "DnsRecord":
        """Build an SOA record."""
        rdata = (
            encode_name(mname)
            + encode_name(rname)
            + struct.pack("!IIIII", serial, refresh, retry, expire, minimum)
        )
        return DnsRecord(name, TYPE_SOA, CLASS_IN, ttl, rdata)

    @staticmethod
    def nsid_opt(nsid: bytes = b"", udp_size: int = 4096) -> "DnsRecord":
        """Build an OPT pseudo-record carrying an NSID option [RFC 5001]."""
        option = struct.pack("!HH", EDNS_OPTION_NSID, len(nsid)) + nsid
        return DnsRecord("", TYPE_OPT, udp_size, 0, option)

    def nsid_value(self) -> Optional[bytes]:
        """Extract the NSID option payload from an OPT record, if present."""
        if self.rtype != TYPE_OPT:
            raise DNSError("not an OPT record")
        position = 0
        while position + 4 <= len(self.rdata):
            code, length = struct.unpack("!HH", self.rdata[position : position + 4])
            position += 4
            if position + length > len(self.rdata):
                raise DNSError("EDNS option runs past rdata")
            if code == EDNS_OPTION_NSID:
                return self.rdata[position : position + length]
            position += length
        return None


@dataclass
class DnsMessage:
    """A DNS message (query or response)."""

    message_id: int
    is_response: bool = False
    authoritative: bool = False
    rcode: int = 0
    questions: List[DnsQuestion] = field(default_factory=list)
    answers: List[DnsRecord] = field(default_factory=list)
    authorities: List[DnsRecord] = field(default_factory=list)
    additionals: List[DnsRecord] = field(default_factory=list)

    def encode(self) -> bytes:
        """Wire-format bytes of the whole message (header + sections)."""
        flags = 0
        if self.is_response:
            flags |= _FLAG_QR
        if self.authoritative:
            flags |= _FLAG_AA
        flags |= self.rcode & 0xF
        header = struct.pack(
            "!HHHHHH",
            self.message_id,
            flags,
            len(self.questions),
            len(self.answers),
            len(self.authorities),
            len(self.additionals),
        )
        body = b"".join(question.encode() for question in self.questions)
        body += b"".join(record.encode() for record in self.answers)
        body += b"".join(record.encode() for record in self.authorities)
        body += b"".join(record.encode() for record in self.additionals)
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "DnsMessage":
        """Parse wire-format bytes into a DnsMessage (raises DNSError)."""
        if len(data) < 12:
            raise DNSError(f"DNS message truncated: {len(data)} bytes")
        message_id, flags, qdcount, ancount, nscount, arcount = struct.unpack(
            "!HHHHHH", data[:12]
        )
        message = cls(
            message_id=message_id,
            is_response=bool(flags & _FLAG_QR),
            authoritative=bool(flags & _FLAG_AA),
            rcode=flags & 0xF,
        )
        offset = 12
        for _ in range(qdcount):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise DNSError("question runs past end of message")
            qtype, qclass = struct.unpack("!HH", data[offset : offset + 4])
            offset += 4
            message.questions.append(DnsQuestion(name, qtype, qclass))
        records: List[DnsRecord] = []
        for _ in range(ancount + nscount + arcount):
            name, offset = decode_name(data, offset)
            if offset + 10 > len(data):
                raise DNSError("record header runs past end of message")
            rtype, rclass, ttl, rdlength = struct.unpack(
                "!HHIH", data[offset : offset + 10]
            )
            offset += 10
            if offset + rdlength > len(data):
                raise DNSError("rdata runs past end of message")
            records.append(
                DnsRecord(name, rtype, rclass, ttl, data[offset : offset + rdlength])
            )
            offset += rdlength
        message.answers = records[:ancount]
        message.authorities = records[ancount : ancount + nscount]
        message.additionals = records[ancount + nscount :]
        return message

    @classmethod
    def query(
        cls,
        message_id: int,
        name: str,
        qtype: int = TYPE_TXT,
        qclass: int = CLASS_CHAOS,
        request_nsid: bool = False,
    ) -> "DnsMessage":
        """Build a query message (optionally asking for NSID)."""
        message = cls(message_id=message_id)
        message.questions.append(DnsQuestion(name, qtype, qclass))
        if request_nsid:
            message.additionals.append(DnsRecord.nsid_opt())
        return message
