"""A synthetic root zone and the root-like authoritative server.

Gives the B-Root-style service an actual zone to serve: TLD
delegations built from the world model's country codes plus the big
generics, with deterministic glue.  Valid-TLD queries get referrals,
junk names get NXDOMAIN — the split behind the paper's "good replies"
vs "all replies" load types (§3.2; junk has dominated root traffic
since 1992 [15]).
"""

from __future__ import annotations

from typing import List

from repro.dns.message import (
    CLASS_CHAOS,
    CLASS_IN,
    RCODE_REFUSED,
    TYPE_NS,
    TYPE_SOA,
    TYPE_TXT,
    DnsMessage,
    DnsRecord,
)
from repro.dns.server import SiteIdentityServer
from repro.dns.zone import Zone
from repro.geo.regions import COUNTRIES
from repro.rng import mix64

_GENERIC_TLDS = ("com", "net", "org", "edu", "gov", "int", "arpa", "info")
#: Glue addresses are carved from the benchmarking range 198.18.0.0/15.
_GLUE_BASE = 0xC6120000
_GLUE_MASK = 0x0001FFFF


def _glue_address(nameserver: str) -> int:
    # Stable across processes (Python's str hash is randomised).
    raw = int.from_bytes(nameserver.encode("ascii")[:8].ljust(8, b"\0"), "little")
    return _GLUE_BASE | (mix64(raw ^ mix64(len(nameserver))) & _GLUE_MASK)


def build_root_zone(serial: int = 2017051500) -> Zone:
    """Build the synthetic root zone (generic + country TLDs)."""
    soa = DnsRecord.soa(
        "", "a.root-servers.example", "nstld.example", serial
    )
    zone = Zone("", soa)
    zone.add_record(DnsRecord.ns("", "a.root-servers.example"))
    zone.add_record(DnsRecord.ns("", "b.root-servers.example"))
    tlds: List[str] = list(_GENERIC_TLDS) + sorted(
        country.code.lower() for country in COUNTRIES
    )
    for tld in tlds:
        ns_names = [f"a.nic.{tld}", f"b.nic.{tld}"]
        ns_records = [DnsRecord.ns(tld, ns_name) for ns_name in ns_names]
        glue = [DnsRecord.a(ns_name, _glue_address(ns_name)) for ns_name in ns_names]
        zone.add_delegation(tld, ns_records, glue)
    return zone


class RootServer:
    """A root-like authoritative server at one anycast site.

    Serves the synthetic root zone for IN-class queries and keeps the
    site-identity behaviour (CHAOS ``hostname.bind``, NSID) of
    :class:`~repro.dns.server.SiteIdentityServer`.
    """

    def __init__(self, site_code: str, service_name: str,
                 zone: Zone = None) -> None:
        self.zone = zone if zone is not None else build_root_zone()
        self._identity = SiteIdentityServer(site_code, service_name)
        self.site_code = site_code

    @property
    def hostname(self) -> str:
        """This site's identity hostname."""
        return self._identity.hostname

    def handle(self, query: DnsMessage) -> DnsMessage:
        """Answer IN queries from the zone; CHAOS queries identify the site."""
        if query.questions and query.questions[0].qclass == CLASS_CHAOS:
            return self._identity.handle(query)
        response = DnsMessage(
            message_id=query.message_id,
            is_response=True,
            questions=list(query.questions),
        )
        if not query.questions:
            response.rcode = RCODE_REFUSED
            return response
        question = query.questions[0]
        if question.qclass != CLASS_IN:
            response.rcode = RCODE_REFUSED
            return response
        answer = self.zone.lookup(question.name, question.qtype)
        response.rcode = answer.rcode
        response.answers = answer.answers
        response.authorities = answer.authorities
        response.additionals.extend(answer.additionals)
        # Authoritative for answers and NXDOMAIN, not for referrals.
        response.authoritative = not answer.is_referral and answer.rcode in (0, 3)
        return response

    def is_good_reply(self, query: DnsMessage) -> bool:
        """Paper §3.2's 'good reply': an answer or referral, not junk.

        Junk (queries for names under no existing TLD) produces
        NXDOMAIN; everything resolvable counts as good.
        """
        response = self.handle(query)
        return response.rcode == 0
