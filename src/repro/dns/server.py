"""Per-site authoritative responder for site-identity queries.

Each anycast site runs a nameserver that reveals its identity through
the two standard mechanisms: a CHAOS-class TXT answer for
``hostname.bind`` (and ``id.server``), and the NSID EDNS option.  This
is what RIPE Atlas probes query to learn which site serves them.
"""

from __future__ import annotations

from repro.dns.message import (
    CLASS_CHAOS,
    TYPE_OPT,
    TYPE_TXT,
    DnsMessage,
    DnsRecord,
)

_IDENTITY_NAMES = ("hostname.bind", "id.server")
_RCODE_REFUSED = 5


class SiteIdentityServer:
    """The DNS responder running at one anycast site."""

    def __init__(self, site_code: str, service_name: str) -> None:
        self.site_code = site_code
        self.service_name = service_name

    @property
    def hostname(self) -> str:
        """The hostname this site reports, e.g. ``lax1.b.example``."""
        return f"{self.site_code.lower()}1.{self.service_name.lower()}"

    def handle(self, query: DnsMessage) -> DnsMessage:
        """Answer a query; site-identity questions get the site hostname.

        Anything that is not a CHAOS TXT identity query is REFUSED,
        which is how real root servers treat unexpected CHAOS queries.
        """
        response = DnsMessage(
            message_id=query.message_id,
            is_response=True,
            authoritative=True,
            questions=list(query.questions),
        )
        wants_nsid = any(
            record.rtype == TYPE_OPT and record.nsid_value() is not None
            for record in query.additionals
        ) or any(
            record.rtype == TYPE_OPT and record.nsid_value() == b""
            for record in query.additionals
        )
        if wants_nsid or any(r.rtype == TYPE_OPT for r in query.additionals):
            response.additionals.append(
                DnsRecord.nsid_opt(self.hostname.encode("ascii"))
            )
        if not query.questions:
            response.rcode = _RCODE_REFUSED
            return response
        question = query.questions[0]
        if (
            question.qclass == CLASS_CHAOS
            and question.qtype == TYPE_TXT
            and question.name.lower() in _IDENTITY_NAMES
        ):
            response.answers.append(
                DnsRecord.txt(question.name, self.hostname, CLASS_CHAOS)
            )
        else:
            response.rcode = _RCODE_REFUSED
        return response
