"""Minimal-but-real DNS substrate.

Implements the wire format needed for the traditional anycast mapping
technique the paper compares against: CHAOS-class TXT queries for
``hostname.bind`` [49] and the NSID EDNS option [4], answered by a
per-site authoritative responder that identifies the site.
"""

from repro.dns.message import (
    CLASS_CHAOS,
    CLASS_IN,
    EDNS_OPTION_NSID,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    TYPE_A,
    TYPE_NS,
    TYPE_OPT,
    TYPE_SOA,
    TYPE_TXT,
    DnsMessage,
    DnsQuestion,
    DnsRecord,
    decode_name,
    encode_name,
)
from repro.dns.root import RootServer, build_root_zone
from repro.dns.server import SiteIdentityServer
from repro.dns.zone import Zone, ZoneAnswer

__all__ = [
    "CLASS_CHAOS",
    "CLASS_IN",
    "TYPE_TXT",
    "TYPE_OPT",
    "EDNS_OPTION_NSID",
    "DnsMessage",
    "DnsQuestion",
    "DnsRecord",
    "encode_name",
    "decode_name",
    "SiteIdentityServer",
    "TYPE_A",
    "TYPE_NS",
    "TYPE_SOA",
    "RCODE_NOERROR",
    "RCODE_NXDOMAIN",
    "RCODE_REFUSED",
    "Zone",
    "ZoneAnswer",
    "RootServer",
    "build_root_zone",
]
