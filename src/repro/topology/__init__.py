"""Synthetic Internet topology.

Builds a deterministic, seeded model of the Internet at the granularity
the paper measures: autonomous systems with Gao-Rexford business
relationships, points of presence (PoPs) for large ASes, BGP-announced
prefixes, and populated /24 blocks with a host-responsiveness model.
"""

from repro.topology.asys import ASTier, AutonomousSystem, PoP
from repro.topology.allocator import PrefixAllocator
from repro.topology.generator import SeededAS, TopologyConfig, build_internet
from repro.topology.hosts import HostModel, HostModelConfig
from repro.topology.internet import Internet
from repro.topology.prefixes import AnnouncedPrefix
from repro.topology.relationships import Relationship, RelationshipGraph

__all__ = [
    "ASTier",
    "AutonomousSystem",
    "PoP",
    "PrefixAllocator",
    "AnnouncedPrefix",
    "Relationship",
    "RelationshipGraph",
    "HostModel",
    "HostModelConfig",
    "Internet",
    "SeededAS",
    "TopologyConfig",
    "build_internet",
]
