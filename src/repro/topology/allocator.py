"""Sequential aligned allocator for IPv4 prefixes.

Hands out non-overlapping, properly aligned CIDR prefixes from a region
of the address space, mimicking registry allocation.  Keeps a simple
bump cursor with alignment; fragmentation is acceptable because the
synthetic Internet uses a small fraction of the space.
"""

from __future__ import annotations

from repro.errors import AddressError, TopologyError
from repro.netaddr.prefix import Prefix


class PrefixAllocator:
    """Allocates aligned, non-overlapping prefixes from a base prefix."""

    def __init__(self, pool: Prefix) -> None:
        self._pool = pool
        self._cursor = pool.network
        self._end = pool.network + pool.size

    @property
    def pool(self) -> Prefix:
        """The prefix this allocator carves from."""
        return self._pool

    @property
    def remaining(self) -> int:
        """Addresses still available (upper bound; ignores alignment waste)."""
        return max(0, self._end - self._cursor)

    def allocate(self, length: int) -> Prefix:
        """Allocate the next free prefix of ``length`` bits.

        Raises :class:`TopologyError` when the pool is exhausted.
        """
        if length < self._pool.length or length > 32:
            raise AddressError(
                f"cannot allocate /{length} from pool {self._pool}"
            )
        size = 1 << (32 - length)
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size > self._end:
            raise TopologyError(
                f"address pool {self._pool} exhausted allocating /{length}"
            )
        self._cursor = aligned + size
        return Prefix(aligned, length)
