"""Topology validation: invariant checks over a generated Internet.

Production deployments of the real Verfploeter validate their inputs
(hitlists, BGP feeds) before measuring; this module gives the synthetic
substrate the same treatment.  :func:`validate_internet` checks every
structural invariant the rest of the library assumes and returns a
report instead of asserting, so callers can degrade gracefully on
hand-built topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.topology.asys import ASTier
from repro.topology.internet import Internet
from repro.topology.relationships import Relationship


@dataclass
class ValidationReport:
    """Outcome of one validation pass."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.errors.TopologyError` on any error."""
        from repro.errors import TopologyError

        if self.errors:
            raise TopologyError(
                f"invalid topology: {len(self.errors)} errors, first: "
                f"{self.errors[0]}"
            )


def validate_internet(internet: Internet) -> ValidationReport:
    """Check every structural invariant of a generated topology."""
    report = ValidationReport()
    graph = internet.graph

    # -- AS-level invariants ------------------------------------------------
    tier1 = [asn for asn, asys in internet.ases.items() if asys.tier == ASTier.TIER1]
    if not tier1:
        report.errors.append("no tier-1 ASes")
    for index, a in enumerate(tier1):
        for b in tier1[index + 1:]:
            if not graph.has_link(a, b):
                report.errors.append(f"tier-1 clique broken: AS{a}-AS{b}")
    for asn, asys in internet.ases.items():
        if asys.tier != ASTier.TIER1 and not graph.providers_of(asn):
            report.errors.append(f"AS{asn} ({asys.name}) has no provider")
        if not asys.pop_ids:
            report.errors.append(f"AS{asn} ({asys.name}) has no PoPs")
        for pop_id in asys.pop_ids:
            if pop_id >= len(internet.pops):
                report.errors.append(f"AS{asn}: dangling PoP id {pop_id}")
            elif internet.pops[pop_id].asn != asn:
                report.errors.append(f"AS{asn}: PoP {pop_id} owned by another AS")

    # Provider hierarchy must be acyclic.
    state = {}

    def has_cycle(asn: int) -> bool:
        if state.get(asn) == "done":
            return False
        if state.get(asn) == "visiting":
            return True
        state[asn] = "visiting"
        cyclic = any(has_cycle(p) for p in graph.providers_of(asn))
        state[asn] = "done"
        return cyclic

    for asn in internet.ases:
        if has_cycle(asn):
            report.errors.append(f"provider cycle reachable from AS{asn}")
            break

    # -- prefix invariants ----------------------------------------------------
    announced = sorted(internet.announced, key=lambda e: e.prefix)
    for earlier, later in zip(announced, announced[1:]):
        if earlier.prefix.overlaps(later.prefix):
            report.errors.append(
                f"overlapping announcements {earlier.prefix} / {later.prefix}"
            )
    for entry in announced:
        if entry.origin_asn not in internet.ases:
            report.errors.append(f"{entry.prefix} originated by unknown AS")
        if not entry.populated_blocks:
            report.warnings.append(f"{entry.prefix} has no populated blocks")
        for block in entry.populated_blocks:
            if not entry.prefix.contains_address(block << 8):
                report.errors.append(
                    f"block {block:#x} outside its prefix {entry.prefix}"
                )

    # -- block invariants ------------------------------------------------------
    unlocated = 0
    for block in internet.blocks:
        asn = internet.asn_of_block(block)
        if asn not in internet.ases:
            report.errors.append(f"block {block:#x} assigned to unknown AS{asn}")
            continue
        pop = internet.pop_of_block(block)
        if pop.asn != asn:
            report.errors.append(f"block {block:#x} served by foreign PoP")
        if block not in internet.geodb:
            unlocated += 1
    if internet.blocks and unlocated / len(internet.blocks) > 0.01:
        report.warnings.append(
            f"{unlocated} blocks ({unlocated / len(internet.blocks):.1%}) "
            "have no geolocation"
        )

    return report


#: Sentinel ASN the propagator uses for the anycast service itself.
_SERVICE_SENTINEL = 0


def _valley_free_error(internet: Internet, as_path: Tuple[int, ...]) -> Optional[str]:
    """Why ``as_path`` violates Gao-Rexford export rules, or None.

    The path is stored receiver-first, service sentinel (0) last.
    Read receiver-to-origin, each hop is the relationship of the
    importer to the AS it heard the route from, so a valid path reads

        provider* peer? customer*

    (descend the provider chain backwards, cross at most one peering,
    then climb down the customer chain backwards).  A "valley"
    (customer hop followed by provider/peer, or a second peer hop)
    means some AS exported a peer/provider route to a peer/provider,
    which no rational operator does.
    """
    graph = internet.graph
    # 0 = still in provider hops, 1 = peer hop seen, 2 = in customer hops.
    stage = 0
    for importer, exporter in zip(as_path, as_path[1:]):
        if _SERVICE_SENTINEL in (importer, exporter) or importer == exporter:
            continue  # service hop or origin prepending
        if not graph.has_link(importer, exporter):
            return f"hop AS{importer}<-AS{exporter} has no adjacency"
        relation = graph.relationship(importer, exporter)
        if relation == Relationship.PROVIDER:
            if stage != 0:
                return (
                    f"valley at AS{importer}: provider hop after "
                    f"{'peer' if stage == 1 else 'customer'} hop"
                )
        elif relation == Relationship.PEER:
            if stage == 2:
                return f"valley at AS{importer}: peer hop after customer hop"
            if stage == 1:
                return f"valley at AS{importer}: second peer hop"
            stage = 1
        elif relation == Relationship.CUSTOMER:
            stage = 2
    return None


def validate_rib(
    internet: Internet,
    routing,
    rib_entries: Optional[Iterable[Tuple["Prefix", int]]] = None,  # noqa: F821
) -> ValidationReport:
    """Check a computed routing outcome (and optional RIB dump) for sanity.

    ``routing`` is duck-typed (any object with ``selections`` mapping
    ASN -> selection and ``policy.site_codes``) so this layer-1 module
    never imports the BGP layer above it.  Three invariant families:

    * every selected best path is **valley-free** (Gao-Rexford: routes
      learned from peers/providers are never re-exported upward);
    * every selection points at a **declared site** of the policy and
      belongs to a known AS;
    * every RIB entry (``(prefix, origin)`` pairs, e.g. parsed from a
      :mod:`repro.bgp.ribdump` table) matches a prefix actually in
      ``internet.announced`` with the same origin AS.
    """
    report = ValidationReport()
    site_codes = set(routing.policy.site_codes)

    for asn in sorted(routing.selections):
        selection = routing.selections[asn]
        if selection is None:
            continue
        if asn not in internet.ases:
            report.errors.append(f"selection for unknown AS{asn}")
            continue
        if selection.primary_site not in site_codes:
            report.errors.append(
                f"AS{asn} selected undeclared site {selection.primary_site!r}"
            )
        if selection.as_path:
            if selection.as_path[0] != asn:
                report.errors.append(
                    f"AS{asn} path does not start with itself: "
                    f"{selection.as_path}"
                )
            if selection.as_path[-1] != _SERVICE_SENTINEL:
                report.errors.append(
                    f"AS{asn} path does not end at the service: "
                    f"{selection.as_path}"
                )
            valley = _valley_free_error(internet, selection.as_path)
            if valley is not None:
                report.errors.append(
                    f"AS{asn} best path {selection.as_path} is not "
                    f"valley-free: {valley}"
                )

    if rib_entries is not None:
        announced = {entry.prefix: entry.origin_asn for entry in internet.announced}
        for prefix, origin in rib_entries:
            expected = announced.get(prefix)
            if expected is None:
                report.errors.append(
                    f"RIB prefix {prefix} is not announced by the topology"
                )
            elif expected != origin:
                report.errors.append(
                    f"RIB prefix {prefix} originated by AS{origin}, "
                    f"topology announces it from AS{expected}"
                )

    return report
