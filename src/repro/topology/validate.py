"""Topology validation: invariant checks over a generated Internet.

Production deployments of the real Verfploeter validate their inputs
(hitlists, BGP feeds) before measuring; this module gives the synthetic
substrate the same treatment.  :func:`validate_internet` checks every
structural invariant the rest of the library assumes and returns a
report instead of asserting, so callers can degrade gracefully on
hand-built topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.topology.asys import ASTier
from repro.topology.internet import Internet


@dataclass
class ValidationReport:
    """Outcome of one validation pass."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.errors.TopologyError` on any error."""
        from repro.errors import TopologyError

        if self.errors:
            raise TopologyError(
                f"invalid topology: {len(self.errors)} errors, first: "
                f"{self.errors[0]}"
            )


def validate_internet(internet: Internet) -> ValidationReport:
    """Check every structural invariant of a generated topology."""
    report = ValidationReport()
    graph = internet.graph

    # -- AS-level invariants ------------------------------------------------
    tier1 = [asn for asn, asys in internet.ases.items() if asys.tier == ASTier.TIER1]
    if not tier1:
        report.errors.append("no tier-1 ASes")
    for index, a in enumerate(tier1):
        for b in tier1[index + 1:]:
            if not graph.has_link(a, b):
                report.errors.append(f"tier-1 clique broken: AS{a}-AS{b}")
    for asn, asys in internet.ases.items():
        if asys.tier != ASTier.TIER1 and not graph.providers_of(asn):
            report.errors.append(f"AS{asn} ({asys.name}) has no provider")
        if not asys.pop_ids:
            report.errors.append(f"AS{asn} ({asys.name}) has no PoPs")
        for pop_id in asys.pop_ids:
            if pop_id >= len(internet.pops):
                report.errors.append(f"AS{asn}: dangling PoP id {pop_id}")
            elif internet.pops[pop_id].asn != asn:
                report.errors.append(f"AS{asn}: PoP {pop_id} owned by another AS")

    # Provider hierarchy must be acyclic.
    state = {}

    def has_cycle(asn: int) -> bool:
        if state.get(asn) == "done":
            return False
        if state.get(asn) == "visiting":
            return True
        state[asn] = "visiting"
        cyclic = any(has_cycle(p) for p in graph.providers_of(asn))
        state[asn] = "done"
        return cyclic

    for asn in internet.ases:
        if has_cycle(asn):
            report.errors.append(f"provider cycle reachable from AS{asn}")
            break

    # -- prefix invariants ----------------------------------------------------
    announced = sorted(internet.announced, key=lambda e: e.prefix)
    for earlier, later in zip(announced, announced[1:]):
        if earlier.prefix.overlaps(later.prefix):
            report.errors.append(
                f"overlapping announcements {earlier.prefix} / {later.prefix}"
            )
    for entry in announced:
        if entry.origin_asn not in internet.ases:
            report.errors.append(f"{entry.prefix} originated by unknown AS")
        if not entry.populated_blocks:
            report.warnings.append(f"{entry.prefix} has no populated blocks")
        for block in entry.populated_blocks:
            if not entry.prefix.contains_address(block << 8):
                report.errors.append(
                    f"block {block:#x} outside its prefix {entry.prefix}"
                )

    # -- block invariants ------------------------------------------------------
    unlocated = 0
    for block in internet.blocks:
        asn = internet.asn_of_block(block)
        if asn not in internet.ases:
            report.errors.append(f"block {block:#x} assigned to unknown AS{asn}")
            continue
        pop = internet.pop_of_block(block)
        if pop.asn != asn:
            report.errors.append(f"block {block:#x} served by foreign PoP")
        if block not in internet.geodb:
            unlocated += 1
    if internet.blocks and unlocated / len(internet.blocks) > 0.01:
        report.warnings.append(
            f"{unlocated} blocks ({unlocated / len(internet.blocks):.1%}) "
            "have no geolocation"
        )

    return report
