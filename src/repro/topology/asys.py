"""Autonomous systems and points of presence."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError


class ASTier:
    """Coarse AS roles in the synthetic hierarchy."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    STUB = "stub"

    ALL = (TIER1, TRANSIT, STUB)


@dataclass(frozen=True)
class PoP:
    """A point of presence: where an AS touches a city/region.

    Multi-PoP ASes are what produce intra-AS catchment splits: each PoP
    may prefer a different egress toward the anycast prefix (hot-potato
    routing), so parts of one AS land in different catchments
    (paper §6.2).
    """

    pop_id: int
    asn: int
    country_code: str
    latitude: float
    longitude: float

    @property
    def location(self) -> Tuple[float, float]:
        """(latitude, longitude) of this PoP."""
        return (self.latitude, self.longitude)


@dataclass
class AutonomousSystem:
    """One AS in the synthetic topology."""

    asn: int
    tier: str
    name: str
    country_code: str
    pop_ids: List[int] = field(default_factory=list)
    flipper: bool = False

    @property
    def is_multi_pop(self) -> bool:
        """True when the AS has more than one PoP."""
        return len(self.pop_ids) > 1

    def __post_init__(self) -> None:
        if self.tier not in ASTier.ALL:
            raise ConfigurationError(f"unknown AS tier {self.tier!r}")
