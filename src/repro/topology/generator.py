"""Synthetic Internet generator.

Builds a deterministic Internet from a :class:`TopologyConfig`:

* a tier-1 clique, regional transit providers, and stub (edge) ASes,
  with Gao-Rexford customer/provider/peer relationships;
* *seeded* ASes — fully specified ASes the caller needs to exist, such
  as anycast-site upstreams (Table 3) or a Chinanet-like flipping
  eyeball giant (Table 7);
* BGP-announced prefixes per AS with a realistic length mix
  (short prefixes few, long prefixes many — the Figure 8 x-axis);
* populated /24 blocks inside each prefix, assigned to the origin AS's
  PoPs and geolocated near them.

Everything derives from ``config.seed`` through labelled RNG streams,
so two runs with equal configs produce identical Internets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geo.geodb import GeoDatabase, GeoRecord
from repro.geo.regions import COUNTRIES, Country, country_by_code
from repro.netaddr.prefix import Prefix
from repro.rng import derive_rng
from repro.topology.allocator import PrefixAllocator
from repro.topology.asys import ASTier, AutonomousSystem, PoP
from repro.topology.hosts import HostModel, HostModelConfig
from repro.topology.internet import Internet
from repro.topology.prefixes import AnnouncedPrefix
from repro.topology.relationships import RelationshipGraph



@dataclass(frozen=True)
class SeededAS:
    """An AS the caller requires to exist with exact properties.

    ``prefix_plan`` lists ``(prefix_length, count)`` pairs to announce;
    ``pop_countries`` creates one PoP per listed country (repeats allowed
    for multiple PoPs in one country).
    """

    name: str
    tier: str
    country_code: str
    pop_countries: Tuple[str, ...]
    prefix_plan: Tuple[Tuple[int, int], ...]
    flipper: bool = False
    block_density: float = 0.5
    provider_names: Tuple[str, ...] = ()
    peer_regions: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.tier not in ASTier.ALL:
            raise ConfigurationError(f"seeded AS {self.name!r}: bad tier {self.tier!r}")
        if not self.pop_countries:
            raise ConfigurationError(f"seeded AS {self.name!r}: needs >= 1 PoP")
        for length, count in self.prefix_plan:
            if not 8 <= length <= 24 or count < 1:
                raise ConfigurationError(
                    f"seeded AS {self.name!r}: bad prefix plan entry ({length}, {count})"
                )


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the synthetic Internet."""

    seed: int = 1
    tier1_count: int = 8
    transit_count: int = 60
    stub_count: int = 600
    transit_multi_pop_fraction: float = 0.60
    stub_multi_pop_fraction: float = 0.25
    stub_multihome_fraction: float = 0.45
    transit_peering_probability: float = 0.10
    max_blocks_per_prefix: int = 64
    block_density_scale: float = 1.0
    address_pool: str = "8.0.0.0/5"
    unlocatable_fraction: float = 0.0002
    seeded_ases: Tuple[SeededAS, ...] = ()
    host_config: Optional[HostModelConfig] = None

    def __post_init__(self) -> None:
        if self.tier1_count < 1:
            raise ConfigurationError("tier1_count must be >= 1")
        if self.transit_count < 1:
            raise ConfigurationError("transit_count must be >= 1")
        if self.stub_count < 0:
            raise ConfigurationError("stub_count must be >= 0")
        for name in (
            "transit_multi_pop_fraction",
            "stub_multi_pop_fraction",
            "stub_multihome_fraction",
            "transit_peering_probability",
            "unlocatable_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name}={value} must be in [0, 1]")
        if self.max_blocks_per_prefix < 1:
            raise ConfigurationError("max_blocks_per_prefix must be >= 1")
        if self.block_density_scale <= 0:
            raise ConfigurationError("block_density_scale must be positive")
        Prefix(self.address_pool)  # validates eagerly (raises AddressError)


# Prefix length mixes per tier: (length, relative weight).  Skewed so
# that long prefixes dominate counts, as in the paper's Figure 8.
_PREFIX_MIX = {
    ASTier.TIER1: [(12, 1), (13, 2), (14, 3), (15, 4), (16, 6)],
    ASTier.TRANSIT: [(14, 1), (15, 2), (16, 4), (17, 4), (18, 6), (19, 8), (20, 9)],
    ASTier.STUB: [(19, 2), (20, 4), (21, 6), (22, 10), (23, 9), (24, 8)],
}

_PREFIX_COUNT_RANGE = {
    ASTier.TIER1: (2, 5),
    ASTier.TRANSIT: (2, 8),
    ASTier.STUB: (1, 3),
}

_BLOCK_DENSITY = {
    ASTier.TIER1: 0.08,
    ASTier.TRANSIT: 0.25,
    ASTier.STUB: 0.70,
}

_POP_COUNT_RANGE = {ASTier.TIER1: (6, 10), ASTier.TRANSIT: (1, 4), ASTier.STUB: (1, 1)}


class _Builder:
    """Single-use builder holding generation state."""

    def __init__(self, config: TopologyConfig) -> None:
        self.config = config
        self.ases: Dict[int, AutonomousSystem] = {}
        self.pops: List[PoP] = []
        self.graph = RelationshipGraph()
        self.announced: List[AnnouncedPrefix] = []
        self.block_assignment: Dict[int, Tuple[int, int]] = {}
        self.geodb = GeoDatabase()
        self.allocator = PrefixAllocator(Prefix(self.config.address_pool))
        self.next_asn = 1
        self.tier1_asns: List[int] = []
        self.transit_asns: List[int] = []
        self.stub_asns: List[int] = []
        self.seeded_asns: Dict[str, int] = {}
        weights = [country.internet_weight for country in COUNTRIES]
        self._countries = COUNTRIES
        self._country_weights = weights

    # -- sampling helpers -------------------------------------------------

    def _sample_country(self, rng) -> Country:
        return rng.choices(self._countries, weights=self._country_weights, k=1)[0]

    def _sample_point_in(self, country: Country, rng) -> Tuple[float, float]:
        lat = rng.uniform(*country.lat_range)
        lon = rng.uniform(*country.lon_range)
        return lat, lon

    def _new_pop(self, asn: int, country_code: str, rng) -> int:
        country = country_by_code(country_code)
        lat, lon = self._sample_point_in(country, rng)
        pop = PoP(len(self.pops), asn, country_code, lat, lon)
        self.pops.append(pop)
        return pop.pop_id

    def _new_as(
        self,
        tier: str,
        name: str,
        country_code: str,
        pop_countries: Sequence[str],
        rng,
        flipper: bool = False,
    ) -> AutonomousSystem:
        asn = self.next_asn
        self.next_asn += 1
        asys = AutonomousSystem(asn, tier, name, country_code, [], flipper)
        asys.pop_ids = [self._new_pop(asn, code, rng) for code in pop_countries]
        self.ases[asn] = asys
        return asys

    # -- AS population ----------------------------------------------------

    def build_tier1(self) -> None:
        rng = derive_rng(self.config.seed, "tier1")
        hubs = ["US", "US", "GB", "DE", "FR", "JP", "NL", "SE", "IN", "SG", "AU", "BR"]
        for index in range(self.config.tier1_count):
            home = hubs[index % len(hubs)]
            pop_count = rng.randint(*_POP_COUNT_RANGE[ASTier.TIER1])
            pop_countries = [home] + [
                self._sample_country(rng).code for _ in range(pop_count - 1)
            ]
            asys = self._new_as(
                ASTier.TIER1, f"TIER1-{index}", home, pop_countries, rng
            )
            self.tier1_asns.append(asys.asn)
        # Tier-1 clique: full-mesh settlement-free peering.
        for i, a in enumerate(self.tier1_asns):
            for b in self.tier1_asns[i + 1 :]:
                self.graph.add_peering(a, b)

    def build_transit(self) -> None:
        rng = derive_rng(self.config.seed, "transit")
        for index in range(self.config.transit_count):
            home = self._sample_country(rng)
            if rng.random() < self.config.transit_multi_pop_fraction:
                pop_count = rng.randint(2, _POP_COUNT_RANGE[ASTier.TRANSIT][1])
            else:
                pop_count = 1
            region_mates = [c for c in self._countries if c.region == home.region]
            pop_countries = [home.code] + [
                rng.choice(region_mates).code for _ in range(pop_count - 1)
            ]
            asys = self._new_as(
                ASTier.TRANSIT, f"TRANSIT-{index}", home.code, pop_countries, rng
            )
            providers = rng.sample(self.tier1_asns, k=min(len(self.tier1_asns), rng.randint(1, 2)))
            for provider in providers:
                self.graph.add_customer_provider(asys.asn, provider)
            # Buy from earlier transits too (keeps hierarchy acyclic) —
            # deeper chains spread path costs, which is what makes
            # prepending shift catchments gradually rather than all at once.
            for _ in range(rng.randint(0, 2)):
                if not self.transit_asns:
                    break
                upstream = rng.choice(self.transit_asns)
                if not self.graph.has_link(asys.asn, upstream):
                    self.graph.add_customer_provider(asys.asn, upstream)
            self.transit_asns.append(asys.asn)
        # Same-region transit peering.
        for i, a in enumerate(self.transit_asns):
            for b in self.transit_asns[i + 1 :]:
                if self.graph.has_link(a, b):
                    continue
                same_region = (
                    country_by_code(self.ases[a].country_code).region
                    == country_by_code(self.ases[b].country_code).region
                )
                probability = self.config.transit_peering_probability
                if same_region and rng.random() < probability:
                    self.graph.add_peering(a, b)

    def _transit_preference(self, country: Country, rng) -> List[int]:
        """Transit providers ordered: same country, same region, anywhere."""
        same_country = [
            asn
            for asn in self.transit_asns
            if self.ases[asn].country_code == country.code
        ]
        same_region = [
            asn
            for asn in self.transit_asns
            if country_by_code(self.ases[asn].country_code).region == country.region
            and self.ases[asn].country_code != country.code
        ]
        anywhere = [
            asn
            for asn in self.transit_asns
            if asn not in same_country and asn not in same_region
        ]
        rng.shuffle(same_country)
        rng.shuffle(same_region)
        rng.shuffle(anywhere)
        return same_country + same_region + anywhere

    def build_stubs(self) -> None:
        rng = derive_rng(self.config.seed, "stub")
        for index in range(self.config.stub_count):
            home = self._sample_country(rng)
            # Most stubs are single-PoP; some regional ISPs run two.
            pop_countries = [home.code]
            if rng.random() < self.config.stub_multi_pop_fraction:
                pop_countries.append(home.code)
            asys = self._new_as(
                ASTier.STUB, f"STUB-{index}", home.code, pop_countries, rng
            )
            if rng.random() < self.config.stub_multihome_fraction:
                provider_count = rng.randint(2, 3)
            else:
                provider_count = 1
            preferences = self._transit_preference(home, rng)
            for provider in preferences[:provider_count]:
                self.graph.add_customer_provider(asys.asn, provider)
            self.stub_asns.append(asys.asn)

    def build_seeded(self) -> None:
        rng = derive_rng(self.config.seed, "seeded")
        for spec in self.config.seeded_ases:
            asys = self._new_as(
                spec.tier,
                spec.name,
                spec.country_code,
                spec.pop_countries,
                rng,
                flipper=spec.flipper,
            )
            self.seeded_asns[spec.name] = asys.asn
            home = country_by_code(spec.country_code)
            if spec.tier == ASTier.TIER1:
                for other in self.tier1_asns:
                    self.graph.add_peering(asys.asn, other)
                self.tier1_asns.append(asys.asn)
                continue
            # Transit and stub seeded ASes are multihomed for resilience.
            # Explicit provider_names pin connectivity (scenarios use this
            # to control how strong each anycast upstream is); otherwise
            # pick 2 providers preferring local transit, then tier-1.
            if spec.provider_names:
                providers = [self._resolve_name(name) for name in spec.provider_names]
            else:
                preferences = self._transit_preference(home, rng) or list(self.tier1_asns)
                providers = preferences[:2] if len(preferences) >= 2 else preferences
            for provider in providers:
                if not self.graph.has_link(asys.asn, provider):
                    self.graph.add_customer_provider(asys.asn, provider)
            # Regional peering fabric: the seeded AS peers with most
            # transits whose home country lies in the listed regions
            # (how an academic exchange like AMPATH blankets South
            # America).  Peer routes beat provider routes, so the whole
            # region gravitates to this AS's announcements.
            for region in spec.peer_regions:
                for transit in list(self.transit_asns):
                    home = country_by_code(self.ases[transit].country_code)
                    if home.region != region or self.graph.has_link(asys.asn, transit):
                        continue
                    if rng.random() < 0.75:
                        self.graph.add_peering(asys.asn, transit)
            if spec.tier == ASTier.TRANSIT:
                self.transit_asns.append(asys.asn)
            else:
                self.stub_asns.append(asys.asn)

    def _resolve_name(self, name: str) -> int:
        """ASN of a previously-created AS by generated name."""
        for asn, asys in self.ases.items():
            if asys.name == name:
                return asn
        raise ConfigurationError(f"seeded provider {name!r} does not exist (yet)")

    # -- prefixes and blocks ----------------------------------------------

    def _announce(
        self, asys: AutonomousSystem, length: int, density: float, rng
    ) -> None:
        prefix = self.allocator.allocate(length)
        entry = AnnouncedPrefix(prefix, asys.asn)
        span = prefix.block_count
        target = max(
            1,
            min(
                self.config.max_blocks_per_prefix,
                int(math.ceil(span * density * self.config.block_density_scale)),
            ),
        )
        target = min(target, span)
        start_block = prefix.network >> 8
        offsets = rng.sample(range(span), target) if target < span else list(range(span))
        for offset in sorted(offsets):
            block = start_block + offset
            pop_id = rng.choice(asys.pop_ids)
            self.block_assignment[block] = (asys.asn, pop_id)
            entry.populated_blocks.append(block)
        self.announced.append(entry)

    def build_prefixes(self) -> None:
        rng = derive_rng(self.config.seed, "prefix")
        seeded_names = {spec.name: spec for spec in self.config.seeded_ases}
        for asn in sorted(self.ases):
            asys = self.ases[asn]
            spec = seeded_names.get(asys.name)
            if spec is not None:
                for length, count in spec.prefix_plan:
                    for _ in range(count):
                        self._announce(asys, length, spec.block_density, rng)
                continue
            low, high = _PREFIX_COUNT_RANGE[asys.tier]
            mix = _PREFIX_MIX[asys.tier]
            lengths = [entry[0] for entry in mix]
            weights = [entry[1] for entry in mix]
            for _ in range(rng.randint(low, high)):
                length = rng.choices(lengths, weights=weights, k=1)[0]
                self._announce(asys, length, _BLOCK_DENSITY[asys.tier], rng)

    def build_geo(self) -> None:
        rng = derive_rng(self.config.seed, "geo")
        for block in sorted(self.block_assignment):
            if rng.random() < self.config.unlocatable_fraction:
                continue
            pop = self.pops[self.block_assignment[block][1]]
            country = country_by_code(pop.country_code)
            lat = min(max(rng.gauss(pop.latitude, 1.5), country.lat_range[0]), country.lat_range[1])
            lon = min(max(rng.gauss(pop.longitude, 1.5), country.lon_range[0]), country.lon_range[1])
            lat = min(max(lat, -89.9), 89.9)
            lon = min(max(lon, -179.9), 179.9)
            self.geodb.add(block, GeoRecord(pop.country_code, lat, lon))

    def finish(self) -> Internet:
        host_model = HostModel(self.config.seed, self.config.host_config)
        internet = Internet(
            self.config.seed,
            self.ases,
            self.pops,
            self.graph,
            self.announced,
            self.block_assignment,
            self.geodb,
            host_model,
        )
        return internet


def build_internet(config: Optional[TopologyConfig] = None) -> Internet:
    """Generate a synthetic Internet from ``config`` (defaults if None)."""
    config = config or TopologyConfig()
    builder = _Builder(config)
    builder.build_tier1()
    builder.build_transit()
    builder.build_stubs()
    builder.build_seeded()
    builder.build_prefixes()
    builder.build_geo()
    return builder.finish()
