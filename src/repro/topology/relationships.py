"""AS business relationships (Gao-Rexford model).

Two relationship kinds: customer-provider (directional) and peer-peer
(symmetric).  The graph stores adjacency in both directions so BGP
propagation can walk "up" (toward providers), "across" (peers), and
"down" (toward customers) in separate phases.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.errors import TopologyError


class Relationship:
    """Labels for the relationship a neighbour has *to us*."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"


class RelationshipGraph:
    """Directed AS relationship graph with O(1) neighbour lookups."""

    def __init__(self) -> None:
        self._providers: Dict[int, List[int]] = {}
        self._customers: Dict[int, List[int]] = {}
        self._peers: Dict[int, List[int]] = {}
        self._edge_set: Set[Tuple[int, int]] = set()

    def _check_new_edge(self, a: int, b: int) -> None:
        if a == b:
            raise TopologyError(f"self-loop on AS{a}")
        if (a, b) in self._edge_set or (b, a) in self._edge_set:
            raise TopologyError(f"duplicate relationship between AS{a} and AS{b}")
        self._edge_set.add((a, b))

    def add_customer_provider(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        self._check_new_edge(customer, provider)
        self._providers.setdefault(customer, []).append(provider)
        self._customers.setdefault(provider, []).append(customer)

    def add_peering(self, a: int, b: int) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        self._check_new_edge(a, b)
        self._peers.setdefault(a, []).append(b)
        self._peers.setdefault(b, []).append(a)

    def has_link(self, a: int, b: int) -> bool:
        """True if any relationship exists between ``a`` and ``b``."""
        return (a, b) in self._edge_set or (b, a) in self._edge_set

    def providers_of(self, asn: int) -> List[int]:
        """ASes that ``asn`` buys transit from."""
        return self._providers.get(asn, [])

    def customers_of(self, asn: int) -> List[int]:
        """ASes that buy transit from ``asn``."""
        return self._customers.get(asn, [])

    def peers_of(self, asn: int) -> List[int]:
        """Settlement-free peers of ``asn``."""
        return self._peers.get(asn, [])

    def degree(self, asn: int) -> int:
        """Total neighbour count of ``asn``."""
        return (
            len(self.providers_of(asn))
            + len(self.customers_of(asn))
            + len(self.peers_of(asn))
        )

    def edges(self) -> Iterator[Tuple[int, int, str]]:
        """Yield ``(a, b, kind)`` for every relationship once.

        ``kind`` is ``"cp"`` (a is customer of b) or ``"pp"`` (peering).
        """
        for customer, providers in self._providers.items():
            for provider in providers:
                yield (customer, provider, "cp")
        seen: Set[Tuple[int, int]] = set()
        for a, peers in self._peers.items():
            for b in peers:
                key = (min(a, b), max(a, b))
                if key not in seen:
                    seen.add(key)
                    yield (key[0], key[1], "pp")

    def relationship(self, of_asn: int, neighbor: int) -> str:
        """What ``neighbor`` is to ``of_asn`` (customer/peer/provider)."""
        if neighbor in self._customers.get(of_asn, []):
            return Relationship.CUSTOMER
        if neighbor in self._peers.get(of_asn, []):
            return Relationship.PEER
        if neighbor in self._providers.get(of_asn, []):
            return Relationship.PROVIDER
        raise TopologyError(f"AS{neighbor} is not a neighbour of AS{of_asn}")
