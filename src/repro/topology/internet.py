"""The assembled synthetic Internet."""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.geo.geodb import GeoDatabase
from repro.netaddr.trie import LongestPrefixTrie
from repro.topology.asys import AutonomousSystem, PoP
from repro.topology.hosts import HostModel
from repro.topology.prefixes import AnnouncedPrefix
from repro.topology.relationships import RelationshipGraph


class Internet:
    """Container for a generated topology.

    Holds the AS graph, PoPs, announced prefixes (with a longest-prefix-
    match trie), the populated /24 blocks with their AS/PoP assignment,
    the geolocation database, and the host-responsiveness model.
    """

    def __init__(
        self,
        seed: int,
        ases: Dict[int, AutonomousSystem],
        pops: List[PoP],
        graph: RelationshipGraph,
        announced: List[AnnouncedPrefix],
        block_assignment: Dict[int, Tuple[int, int]],
        geodb: GeoDatabase,
        host_model: HostModel,
    ) -> None:
        self.seed = seed
        self.ases = ases
        self.pops = pops
        self.graph = graph
        self.announced = announced
        self.geodb = geodb
        self.host_model = host_model
        self._block_assignment = block_assignment
        self._blocks: List[int] = sorted(block_assignment)
        self._trie: LongestPrefixTrie[AnnouncedPrefix] = LongestPrefixTrie()
        for entry in announced:
            self._trie.insert(entry.prefix, entry)
        self._blocks_by_asn: Dict[int, List[int]] = {}
        for block in self._blocks:
            asn = block_assignment[block][0]
            self._blocks_by_asn.setdefault(asn, []).append(block)
        self._block_table: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._block_table_pid: Optional[int] = None

    # -- blocks ---------------------------------------------------------

    @property
    def blocks(self) -> Sequence[int]:
        """All populated /24 block ids, ascending."""
        return self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def has_block(self, block: int) -> bool:
        """True if ``block`` is populated in this topology."""
        return block in self._block_assignment

    def asn_of_block(self, block: int) -> int:
        """Origin AS of ``block``."""
        try:
            return self._block_assignment[block][0]
        except KeyError:
            raise TopologyError(f"block {block} is not populated") from None

    def pop_of_block(self, block: int) -> PoP:
        """The PoP serving ``block``."""
        try:
            pop_id = self._block_assignment[block][1]
        except KeyError:
            raise TopologyError(f"block {block} is not populated") from None
        return self.pops[pop_id]

    def blocks_of_asn(self, asn: int) -> List[int]:
        """All populated blocks originated by ``asn``."""
        return self._blocks_by_asn.get(asn, [])

    def block_table(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar ``(blocks, asns, pop_ids)`` view of the block assignment.

        Blocks ascend; the arrays align row-for-row.  Built once and
        cached — the assignment is immutable after construction — so
        vectorised consumers (the fast scan engine, bulk AS lookups)
        join against it with ``searchsorted`` instead of per-block dict
        probes.
        """
        if self._block_table is None or self._block_table_pid != os.getpid():
            count = len(self._blocks)
            blocks = np.asarray(self._blocks, dtype=np.int64)
            asns = np.fromiter(
                (self._block_assignment[block][0] for block in self._blocks),
                dtype=np.int64,
                count=count,
            )
            pop_ids = np.fromiter(
                (self._block_assignment[block][1] for block in self._blocks),
                dtype=np.int64,
                count=count,
            )
            self._block_table = (blocks, asns, pop_ids)
            self._block_table_pid = os.getpid()
        return self._block_table

    def attach_block_table(
        self, blocks: np.ndarray, asns: np.ndarray, pop_ids: np.ndarray
    ) -> None:
        """Adopt a prebuilt (possibly memory-mapped) block table.

        Lets a persisted scenario skip the Python rebuild pass: the
        arrays come straight from :mod:`repro.core.tables` memmaps.
        Shapes must match the populated block count; contents are
        trusted (they are keyed by the scenario fingerprint).
        """
        if not (blocks.shape == asns.shape == pop_ids.shape == (len(self._blocks),)):
            raise TopologyError(
                "attached block table shapes do not match the populated blocks"
            )
        self._block_table = (blocks, asns, pop_ids)
        self._block_table_pid = os.getpid()

    def asns_of_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Origin AS of each of ``blocks`` (vectorised ``asn_of_block``).

        Raises :class:`~repro.errors.TopologyError` if any block is not
        populated, mirroring the scalar lookup.
        """
        table_blocks, table_asns, _ = self.block_table()
        keys = np.asarray(blocks, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        pos = np.searchsorted(table_blocks, keys)
        pos_clamped = np.minimum(pos, max(table_blocks.size - 1, 0))
        found = (
            (table_blocks.size > 0) & (table_blocks[pos_clamped] == keys)
        )
        if not np.all(found):
            missing = int(keys[~found][0])
            raise TopologyError(f"block {missing} is not populated")
        return table_asns[pos_clamped]

    def country_of_block(self, block: int) -> Optional[str]:
        """Country code of ``block`` from the geolocation DB (or None)."""
        return self.geodb.country_of(block)

    # -- prefixes -------------------------------------------------------

    def announced_prefix_of(self, block: int) -> Optional[AnnouncedPrefix]:
        """The BGP-announced prefix covering ``block`` (LPM), or None."""
        return self._trie.lookup_value(block << 8)

    def prefixes_of_asn(self, asn: int) -> List[AnnouncedPrefix]:
        """Prefixes announced by ``asn``."""
        return [entry for entry in self.announced if entry.origin_asn == asn]

    # -- ASes -----------------------------------------------------------

    def autonomous_system(self, asn: int) -> AutonomousSystem:
        """Look up an AS by number."""
        try:
            return self.ases[asn]
        except KeyError:
            raise TopologyError(f"AS{asn} does not exist") from None

    def asns(self) -> Iterator[int]:
        """All AS numbers."""
        return iter(self.ases)

    def find_asn_by_name(self, name: str) -> int:
        """Return the ASN whose name is ``name`` (exact match)."""
        for asn, asys in self.ases.items():
            if asys.name == name:
                return asn
        raise TopologyError(f"no AS named {name!r}")

    def pops_of_asn(self, asn: int) -> List[PoP]:
        """PoP objects of ``asn``."""
        return [self.pops[pop_id] for pop_id in self.autonomous_system(asn).pop_ids]

    def summary(self) -> Dict[str, int]:
        """Headline sizes: AS / PoP / prefix / block counts."""
        return {
            "ases": len(self.ases),
            "pops": len(self.pops),
            "announced_prefixes": len(self.announced),
            "blocks": len(self._blocks),
        }
