"""Host responsiveness model for /24 blocks.

The paper probes one representative address per /24 and sees replies
from ~55% of blocks, with per-round churn (blocks going silent or
coming back, Figure 9), ~2% duplicate replies, and a small fraction of
hosts replying from a different source address (§4 "data cleaning").

Everything here is a *deterministic function* of (seed, block, round),
computed on demand via stateless hashing, so no per-block state needs
to be stored and results are reproducible for any subset of blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.rng import uniform_unit

_STABLE_SALT = 0x5741424C  # arbitrary distinct salts per decision
_CHURN_SALT = 0x43485552
_DUP_SALT = 0x44555053
_DUPN_SALT = 0x4E445550
_OFFADDR_SALT = 0x4F464641
_LATE_SALT = 0x4C415445
_LATENCY_SALT = 0x4C544E43


@dataclass(frozen=True)
class HostModelConfig:
    """Tunable behaviour of the passive-VP population.

    ``base_responsiveness`` matches the paper's ~55% block response rate;
    ``country_responsiveness`` overrides it per country (the paper finds
    Korea and parts of Asia heavily ping-unresponsive despite sending
    real DNS traffic — Table 5 / Figure 4a red slices).
    """

    base_responsiveness: float = 0.55
    country_responsiveness: Dict[str, float] = field(
        default_factory=lambda: {"KR": 0.12, "JP": 0.38, "VN": 0.40, "PK": 0.42}
    )
    churn_probability: float = 0.024
    duplicate_fraction: float = 0.015
    heavy_duplicate_fraction: float = 0.05
    max_duplicates: int = 25
    off_address_fraction: float = 0.005
    late_fraction: float = 0.002
    late_threshold_ms: float = 900_000.0

    def __post_init__(self) -> None:
        for name in (
            "base_responsiveness",
            "churn_probability",
            "duplicate_fraction",
            "off_address_fraction",
            "late_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name}={value} must be in [0, 1]")
        if self.max_duplicates < 3:
            raise ConfigurationError("max_duplicates must be >= 3")
        if not 0.0 < self.heavy_duplicate_fraction <= 1.0:
            raise ConfigurationError("heavy_duplicate_fraction must be in (0, 1]")


class HostModel:
    """Deterministic per-(block, round) host behaviour."""

    def __init__(self, seed: int, config: Optional[HostModelConfig] = None) -> None:
        self._seed = seed
        self.config = config or HostModelConfig()

    def responsiveness_for(self, country_code: Optional[str]) -> float:
        """Long-term response probability for blocks in ``country_code``."""
        if country_code is None:
            return self.config.base_responsiveness
        return self.config.country_responsiveness.get(
            country_code, self.config.base_responsiveness
        )

    def is_stable_responder(self, block: int, country_code: Optional[str] = None) -> bool:
        """Whether ``block`` hosts a ping responder at all (time-invariant)."""
        threshold = self.responsiveness_for(country_code)
        return uniform_unit(self._seed, _STABLE_SALT, block) < threshold

    def responds_in_round(
        self, block: int, round_id: int, country_code: Optional[str] = None
    ) -> bool:
        """Whether ``block`` replies in measurement round ``round_id``.

        A stable responder goes temporarily silent with the churn
        probability, independently per round — this produces the paper's
        to-NR / from-NR bands in Figure 9.
        """
        if not self.is_stable_responder(block, country_code):
            return False
        churn_draw = uniform_unit(self._seed, _CHURN_SALT, block, round_id)
        return churn_draw >= self.config.churn_probability

    def reply_count(self, block: int, round_id: int) -> int:
        """Number of replies sent to a single echo request (>= 1).

        ~2% of responders duplicate; duplicate counts are heavy-tailed
        (the paper observed up to thousands; we cap for tractability).
        """
        if uniform_unit(self._seed, _DUP_SALT, block) >= self.config.duplicate_fraction:
            return 1
        # Most duplicating hosts send one extra reply; a small heavy
        # tail sends many (the paper saw up to thousands; we cap).
        tail = uniform_unit(self._seed, _DUPN_SALT, block, round_id)
        if tail >= self.config.heavy_duplicate_fraction:
            return 2
        heaviness = tail / self.config.heavy_duplicate_fraction
        return 3 + int((self.config.max_duplicates - 3) * heaviness)

    def replies_from_other_address(self, block: int) -> bool:
        """True when the responder replies from an address we never probed."""
        return uniform_unit(self._seed, _OFFADDR_SALT, block) < self.config.off_address_fraction

    def is_late_replier(self, block: int, round_id: int) -> bool:
        """True when the reply arrives after the collection cut-off."""
        return (
            uniform_unit(self._seed, _LATE_SALT, block, round_id)
            < self.config.late_fraction
        )

    def reply_latency_ms(self, block: int, round_id: int) -> float:
        """Reply latency in milliseconds.

        Normal replies fall in tens to a few hundred ms; late repliers
        (stale NAT bindings, queued boxes) exceed the cleaning cut-off.
        """
        if self.is_late_replier(block, round_id):
            extra = uniform_unit(self._seed, _LATENCY_SALT, block, round_id)
            return self.config.late_threshold_ms * (1.0 + 4.0 * extra)
        base = uniform_unit(self._seed, _LATENCY_SALT, block, round_id)
        return 10.0 + 390.0 * base
