"""BGP-announced prefixes and their populated /24 blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.netaddr.prefix import Prefix


@dataclass
class AnnouncedPrefix:
    """A prefix announced in BGP by one origin AS.

    ``populated_blocks`` holds the /24 block ids inside the prefix that
    actually contain hosts; sparse population of big prefixes mirrors
    the real Internet, where most of a /12 has no ping-responsive /24s.
    """

    prefix: Prefix
    origin_asn: int
    populated_blocks: List[int] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Announced prefix length."""
        return self.prefix.length

    def __str__(self) -> str:
        return f"{self.prefix} (AS{self.origin_asn})"
