"""Verfploeter reproduction: broad, load-aware anycast catchment mapping.

Reproduction of de Vries et al., "Broad and Load-Aware Anycast Mapping
with Verfploeter" (IMC 2017), over a fully synthetic but
behaviour-faithful Internet substrate.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import broot_like, Verfploeter

    scenario = broot_like(scale="small")
    vp = Verfploeter(scenario.internet, scenario.service)
    scan = vp.run_scan()
    print(scan.catchment.fractions())
"""

from repro.anycast import AnycastService, AnycastSite, CatchmentMap
from repro.bgp import AnnouncementPolicy, compute_routes
from repro.core import (
    PlaybookPlanner,
    Scenario,
    ScanResult,
    Verfploeter,
    broot_like,
    compare_coverage,
    nl_like,
    prepend_sweep,
    run_stability_series,
    tangled_like,
)
from repro.core.scenarios import cdn_like
from repro.errors import ReproError
from repro.load import LoadEstimate, weight_catchment
from repro.obs import NULL_OBSERVER, Observer
from repro.topology import Internet, TopologyConfig, build_internet
from repro.traffic import AttackProfile, DayLoad, LoadKind, build_day_load

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "AnycastService",
    "AnycastSite",
    "CatchmentMap",
    "AnnouncementPolicy",
    "compute_routes",
    "Internet",
    "TopologyConfig",
    "build_internet",
    "Verfploeter",
    "ScanResult",
    "Scenario",
    "broot_like",
    "tangled_like",
    "nl_like",
    "cdn_like",
    "compare_coverage",
    "prepend_sweep",
    "run_stability_series",
    "DayLoad",
    "LoadKind",
    "build_day_load",
    "AttackProfile",
    "PlaybookPlanner",
    "LoadEstimate",
    "weight_catchment",
    "Observer",
    "NULL_OBSERVER",
]
