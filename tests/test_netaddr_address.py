"""Tests for IPv4 address parsing/formatting."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.netaddr.address import (
    IPv4Address,
    format_ipv4,
    is_valid_ipv4,
    parse_ipv4,
)


class TestParse:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0.0.0.0", 0),
            ("255.255.255.255", 0xFFFFFFFF),
            ("192.0.2.1", 0xC0000201),
            ("10.0.0.1", 0x0A000001),
            ("1.2.3.4", 0x01020304),
        ],
    )
    def test_valid(self, text, value):
        assert parse_ipv4(text) == value

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.1.1.1",
            "1.2.3.-4",
            "a.b.c.d",
            "01.2.3.4",
            "1..2.3",
            " 1.2.3.4",
            "1.2.3.4 ",
        ],
    )
    def test_invalid(self, text):
        with pytest.raises(AddressError):
            parse_ipv4(text)
        assert not is_valid_ipv4(text)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value

    def test_format_out_of_range(self):
        with pytest.raises(AddressError):
            format_ipv4(1 << 32)
        with pytest.raises(AddressError):
            format_ipv4(-1)


class TestIPv4Address:
    def test_from_string(self):
        assert IPv4Address("192.0.2.1").value == 0xC0000201

    def test_from_int(self):
        assert str(IPv4Address(0xC0000201)) == "192.0.2.1"

    def test_from_address(self):
        original = IPv4Address("10.0.0.1")
        assert IPv4Address(original) == original

    def test_rejects_bad_type(self):
        with pytest.raises(AddressError):
            IPv4Address(1.5)  # type: ignore[arg-type]

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    def test_block_property(self):
        assert IPv4Address("192.0.2.77").block == 0xC00002

    def test_ordering(self):
        assert IPv4Address("1.0.0.0") < IPv4Address("2.0.0.0")
        assert IPv4Address("1.0.0.0") < 0x02000000

    def test_int_equality(self):
        assert IPv4Address("1.2.3.4") == 0x01020304

    def test_hash_matches_int(self):
        assert hash(IPv4Address("1.2.3.4")) == hash(0x01020304)

    def test_addition(self):
        assert str(IPv4Address("10.0.0.1") + 9) == "10.0.0.10"

    def test_index_protocol(self):
        assert hex(IPv4Address("0.0.0.255")) == "0xff"

    def test_repr(self):
        assert "192.0.2.1" in repr(IPv4Address("192.0.2.1"))
