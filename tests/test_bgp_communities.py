"""Tests for NO_EXPORT-style community handling in the update simulator."""

from __future__ import annotations

import pytest

from repro.bgp.policy import AnnouncementPolicy, SiteAnnouncement
from repro.bgp.propagation import RoutingConfig
from repro.bgp.updates import BgpUpdateSimulator
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def config():
    return RoutingConfig(pin_probability=0.0)


@pytest.fixture(scope="module")
def upstreams(tiny_internet):
    return {
        "A": tiny_internet.find_asn_by_name("UP-A"),
        "B": tiny_internet.find_asn_by_name("UP-B"),
    }


class TestPolicySurface:
    def test_with_no_export(self, upstreams):
        policy = AnnouncementPolicy.uniform(upstreams)
        modified = policy.with_no_export("A", [5, 3, 5])
        entry = [a for a in modified.announcements if a.site_code == "A"][0]
        assert entry.no_export_to == (3, 5)
        original = [a for a in policy.announcements if a.site_code == "A"][0]
        assert original.no_export_to == ()

    def test_unknown_site_rejected(self, upstreams):
        policy = AnnouncementPolicy.uniform(upstreams)
        with pytest.raises(ConfigurationError):
            policy.with_no_export("XXX", [1])

    def test_default_announcement_has_no_communities(self):
        assert SiteAnnouncement("A", 1).no_export_to == ()


class TestNoExportSemantics:
    def test_blocking_all_upstream_neighbors_contains_announcement(
        self, tiny_internet, upstreams, config
    ):
        """Blocking export to every neighbour keeps the site's catchment
        to the upstream itself."""
        upstream_a = upstreams["A"]
        neighbors = (
            tiny_internet.graph.providers_of(upstream_a)
            + tiny_internet.graph.peers_of(upstream_a)
            + tiny_internet.graph.customers_of(upstream_a)
        )
        policy = AnnouncementPolicy.uniform(upstreams).with_no_export(
            "A", neighbors
        )
        outcome = BgpUpdateSimulator(tiny_internet, policy, config).run()
        a_holders = [
            asn for asn, s in outcome.selections.items() if s.site_code == "A"
        ]
        assert a_holders == [upstream_a]

    def test_partial_block_drains(self, tiny_internet, upstreams, config):
        """No-export to the upstream's providers shrinks the site's
        share, but routes still spread through the remaining neighbours
        (the mechanisms differ from prepending; which drains harder
        depends on the upstream's connectivity mix)."""
        base_policy = AnnouncementPolicy.uniform(upstreams)
        providers = tiny_internet.graph.providers_of(upstreams["A"])
        base = BgpUpdateSimulator(tiny_internet, base_policy, config).run()
        drained = BgpUpdateSimulator(
            tiny_internet, base_policy.with_no_export("A", providers), config
        ).run()
        base_share = base.block_weighted_fractions(tiny_internet).get("A", 0.0)
        drained_share = drained.block_weighted_fractions(tiny_internet).get("A", 0.0)
        assert drained_share < base_share

    def test_indirect_learning_still_possible(self, tiny_internet, upstreams, config):
        """A blocked neighbour can still learn the route via a third AS
        (one-hop no-export semantics)."""
        upstream_a = upstreams["A"]
        providers = tiny_internet.graph.providers_of(upstream_a)
        policy = AnnouncementPolicy.uniform(
            {"A": upstream_a}  # single site: everyone must end at A
        ).with_no_export("A", providers)
        outcome = BgpUpdateSimulator(tiny_internet, policy, config).run()
        # Providers of the upstream did not hear the route directly, yet
        # some still converge to A via other neighbours (or stay
        # routeless if A is unreachable for them).
        for provider in providers:
            selection = outcome.selection_of(provider)
            if selection is not None:
                assert selection.site_code == "A"
                assert selection.neighbor_asn != upstream_a

    def test_no_export_is_per_site(self, tiny_internet, upstreams, config):
        """Blocking site A's export leaves site B's propagation intact."""
        providers = tiny_internet.graph.providers_of(upstreams["A"])
        policy = AnnouncementPolicy.uniform(upstreams).with_no_export(
            "A", providers
        )
        outcome = BgpUpdateSimulator(tiny_internet, policy, config).run()
        assert len(outcome.selections) == len(tiny_internet.ases)
        sites = {s.site_code for s in outcome.selections.values()}
        assert sites == {"A", "B"}
