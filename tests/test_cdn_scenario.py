"""Tests for the CDN-scale scenario."""

from __future__ import annotations

import pytest

from repro.core.scenarios import cdn_like
from repro.core.verfploeter import Verfploeter


@pytest.fixture(scope="module")
def cdn():
    return cdn_like(scale="tiny", seed=4242)


class TestCdnScenario:
    def test_twenty_sites(self, cdn):
        assert len(cdn.service.sites) == 20

    def test_six_continents(self, cdn):
        from repro.geo.regions import country_by_code

        regions = {
            country_by_code(site.country_code).region for site in cdn.service.sites
        }
        assert len(regions) == 6

    def test_shared_upstreams(self, cdn):
        """Several sites per regional upstream, like a real CDN."""
        upstream_counts: dict = {}
        for site in cdn.service.sites:
            upstream_counts[site.upstream_asn] = (
                upstream_counts.get(site.upstream_asn, 0) + 1
            )
        assert max(upstream_counts.values()) >= 3
        assert len(upstream_counts) == 7

    def test_scan_spreads_over_sites(self, cdn):
        verfploeter = Verfploeter(cdn.internet, cdn.service)
        scan = verfploeter.run_scan(wire_level=False)
        active = [
            site for site, fraction in scan.catchment.fractions().items()
            if fraction > 0.01
        ]
        assert len(active) >= 5

    def test_deterministic(self):
        first = cdn_like(scale="tiny", seed=4242)
        second = cdn_like(scale="tiny", seed=4242)
        assert first.internet.summary() == second.internet.summary()
