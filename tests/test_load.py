"""Tests for load estimation, weighting, and prediction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anycast.catchment import CatchmentMap
from repro.load.estimator import LoadEstimate
from repro.load.prediction import compare_prediction, measured_site_load
from repro.load.weighting import UNKNOWN, weight_catchment
from repro.traffic.ditl import build_day_load
from repro.traffic.logs import DayLoad, HOURS, LoadKind
from repro.traffic.workload import root_profile


def make_load():
    blocks = [1, 2, 3, 4]
    queries = np.ones((4, HOURS))
    queries[0] *= 100.0  # block 1 is heavy
    return DayLoad("svc", "d", blocks, queries,
                   np.array([0.5, 0.5, 0.5, 0.5]), np.full(4, 0.9))


class TestLoadEstimate:
    def test_of_block(self):
        estimate = LoadEstimate(make_load())
        assert estimate.of_block(1) == pytest.approx(2400.0)
        assert estimate.of_block(99) == 0.0

    def test_total(self):
        estimate = LoadEstimate(make_load())
        assert estimate.total() == pytest.approx(2400 + 3 * 24)

    def test_kinds(self):
        good = LoadEstimate(make_load(), LoadKind.GOOD_REPLIES)
        assert good.of_block(1) == pytest.approx(1200.0)
        replies = LoadEstimate(make_load(), LoadKind.ALL_REPLIES)
        assert replies.of_block(1) == pytest.approx(2160.0)

    def test_bad_kind(self):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            LoadEstimate(make_load(), "nope")

    def test_hourly_of_block(self):
        estimate = LoadEstimate(make_load(), LoadKind.GOOD_REPLIES)
        hourly = estimate.hourly_of_block(1)
        assert hourly.shape == (HOURS,)
        assert hourly[0] == pytest.approx(50.0)
        assert estimate.hourly_of_block(99).sum() == 0.0

    def test_heaviest(self):
        estimate = LoadEstimate(make_load())
        assert estimate.heaviest(1)[0][0] == 1

    def test_as_dict(self):
        mapping = LoadEstimate(make_load()).as_dict()
        assert set(mapping) == {1, 2, 3, 4}


def make_tied_load(n=64):
    """Many blocks sharing only three distinct load values.

    Dense ties are exactly the input where an unkeyed float argsort
    leaves the order to quicksort partitioning.
    """
    blocks = list(range(1, n + 1))
    queries = np.zeros((n, HOURS))
    for i in range(n):
        queries[i, 0] = float(i % 3)
    return DayLoad("svc", "d", blocks, queries, np.full(n, 0.5), np.full(n, 0.9))


class TestHeaviestTies:
    @pytest.mark.parametrize("kind", ["quicksort", "stable"])
    def test_heaviest_matches_keyed_reference(self, kind):
        estimate = LoadEstimate(make_tied_load())
        daily = estimate.source.daily_queries()
        blocks = estimate.blocks
        # The composite key is unique per block (loads are small, block
        # ids distinct), so this reference order — load descending,
        # block id ascending — is identical under every sort kind.
        reference = np.argsort(daily * -1000.0 + blocks, kind=kind)
        expected = [(int(blocks[i]), float(daily[i])) for i in reference]
        assert estimate.heaviest(len(blocks)) == expected

    def test_unkeyed_argsort_kinds_disagree(self):
        # Documents the original bug: on tied loads, quicksort and
        # stable argsort genuinely return different permutations, so
        # heaviest() must not rely on an unkeyed argsort.
        daily = make_tied_load().daily_queries()
        quick = np.argsort(-daily, kind="quicksort")
        stable = np.argsort(-daily, kind="stable")
        assert not np.array_equal(quick, stable)

    def test_tied_prefix_breaks_toward_lower_block(self):
        estimate = LoadEstimate(make_tied_load())
        top = estimate.heaviest(4)
        # The heaviest value (2.0) belongs to blocks 3, 6, 9, 12, ...
        assert [block for block, _ in top] == [3, 6, 9, 12]
        assert all(value == 2.0 for _, value in top)


class TestWeighting:
    def test_attribution(self):
        catchment = CatchmentMap(["A", "B"], {1: "A", 2: "B", 3: "A"})
        site_load = weight_catchment(catchment, LoadEstimate(make_load()))
        assert site_load.daily_of("A") == pytest.approx(2400 + 24)
        assert site_load.daily_of("B") == pytest.approx(24)
        assert site_load.daily_of(UNKNOWN) == pytest.approx(24)  # block 4

    def test_unknown_fraction(self):
        catchment = CatchmentMap(["A"], {1: "A"})
        site_load = weight_catchment(catchment, LoadEstimate(make_load()))
        assert site_load.unknown_fraction() == pytest.approx(72 / 2472)

    def test_fractions_exclude_unknown_by_default(self):
        catchment = CatchmentMap(["A", "B"], {1: "A", 2: "B"})
        site_load = weight_catchment(catchment, LoadEstimate(make_load()))
        fractions = site_load.fractions()
        assert fractions["A"] + fractions["B"] == pytest.approx(1.0)

    def test_hourly_sums_match_daily(self):
        catchment = CatchmentMap(["A"], {1: "A", 2: "A", 3: "A", 4: "A"})
        site_load = weight_catchment(catchment, LoadEstimate(make_load()))
        assert site_load.hourly_of("A").sum() == pytest.approx(
            site_load.daily_of("A")
        )

    def test_empty_estimate_rejected(self):
        from repro.errors import DatasetError

        empty = DayLoad("s", "d", [], np.zeros((0, HOURS)), np.zeros(0), np.zeros(0))
        with pytest.raises(DatasetError):
            weight_catchment(CatchmentMap(["A"], {}), LoadEstimate(empty))


class TestPrediction:
    def test_prediction_tracks_actual(self, tiny_internet, two_site_routing):
        load = build_day_load(tiny_internet, root_profile(), "d")
        estimate = LoadEstimate(load)
        # "Perfect" catchment: ground truth for every block.
        truth = two_site_routing.catchment_map()
        predicted = weight_catchment(truth, estimate)
        measured = measured_site_load(two_site_routing, estimate)
        comparison = compare_prediction(predicted, measured)
        assert comparison.max_error() < 1e-9  # identical by construction

    def test_partial_catchment_close(self, tiny_internet, two_site_routing):
        load = build_day_load(tiny_internet, root_profile(), "d")
        estimate = LoadEstimate(load)
        truth = two_site_routing.catchment_map()
        # Drop every 5th block to simulate unmappable blocks.
        partial = CatchmentMap(
            truth.site_codes,
            {b: s for i, (b, s) in enumerate(sorted(truth.items())) if i % 5},
        )
        predicted = weight_catchment(partial, estimate)
        measured = measured_site_load(two_site_routing, estimate)
        comparison = compare_prediction(predicted, measured)
        # Paper §5.5: the error introduced by unmappable blocks is at
        # most their load share (they re-normalise over known sites).
        # At this tiny scale one whale block can carry ~25% of all
        # load, so the bound — not a fixed small threshold — is the
        # meaningful invariant.
        assert comparison.max_error() <= predicted.unknown_fraction() + 0.02

    def test_measured_load_has_no_unknown(self, tiny_internet, two_site_routing):
        load = build_day_load(tiny_internet, root_profile(), "d")
        measured = measured_site_load(two_site_routing, LoadEstimate(load))
        assert measured.daily_of(UNKNOWN) == 0.0
