"""Tests for recorded AS paths: structure and valley-freedom."""

from __future__ import annotations

import pytest

from repro.bgp.route import RouteClass


@pytest.fixture(scope="module")
def selections(tiny_internet, two_site_routing):
    return {
        asn: two_site_routing.selection_of(asn) for asn in tiny_internet.asns()
    }


class TestPathStructure:
    def test_starts_with_self_ends_at_service(self, selections):
        for asn, selection in selections.items():
            assert selection.as_path[0] == asn
            assert selection.as_path[-1] == 0  # the service sentinel

    def test_prepending_visible_in_origin_path(self, tiny_internet):
        from repro.bgp.policy import AnnouncementPolicy
        from repro.bgp.propagation import compute_routes

        upstream = tiny_internet.find_asn_by_name("UP-A")
        policy = AnnouncementPolicy.uniform({"A": upstream}, prepends={"A": 2})
        routing = compute_routes(tiny_internet, policy)
        origin_path = routing.selection_of(upstream).as_path
        assert origin_path == (upstream, 0, 0, 0)  # 1 + 2 prepends

    def test_no_as_loops(self, selections):
        for selection in selections.values():
            real_hops = [hop for hop in selection.as_path if hop != 0]
            assert len(real_hops) == len(set(real_hops)), selection.as_path

    def test_consecutive_hops_are_adjacent(self, tiny_internet, selections):
        graph = tiny_internet.graph
        for selection in selections.values():
            hops = [hop for hop in selection.as_path if hop != 0]
            for a, b in zip(hops, hops[1:]):
                assert graph.has_link(a, b), f"non-adjacent hop {a}->{b}"

    def test_path_consistent_with_neighbor(self, selections):
        """Each AS's path is itself prepended to its primary neighbour's."""
        for selection in selections.values():
            hops = selection.as_path
            if len(hops) >= 2 and hops[1] != 0:
                neighbor_path = selections[hops[1]].as_path
                assert hops[1:] == neighbor_path


class TestValleyFreedom:
    def test_paths_are_valley_free(self, tiny_internet, selections):
        """Walking toward the origin: up (providers), at most one peer
        crossing, then down (customers) — the Gao-Rexford invariant."""
        graph = tiny_internet.graph
        for selection in selections.values():
            hops = [hop for hop in selection.as_path if hop != 0]
            phase = "up"
            for a, b in zip(hops, hops[1:]):
                relation = graph.relationship(a, b)
                if phase == "up":
                    if relation == "provider":
                        continue
                    phase = "peer" if relation == "peer" else "down"
                elif phase == "peer":
                    assert relation == "customer", (
                        f"valley after peer crossing: {selection.as_path}"
                    )
                    phase = "down"
                else:
                    assert relation == "customer", (
                        f"path climbs after descending: {selection.as_path}"
                    )

    def test_route_class_matches_first_hop(self, tiny_internet, selections):
        graph = tiny_internet.graph
        class_names = {
            RouteClass.CUSTOMER: "customer",
            RouteClass.PEER: "peer",
            RouteClass.PROVIDER: "provider",
        }
        for selection in selections.values():
            hops = [hop for hop in selection.as_path if hop != 0]
            if len(hops) < 2:
                continue  # route heard directly from the service
            assert graph.relationship(hops[0], hops[1]) == class_names[
                selection.route_class
            ]
