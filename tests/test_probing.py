"""Tests for hitlists, probe ordering, and the prober."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DatasetError, MeasurementError
from repro.probing.hitlist import Hitlist, HitlistEntry, build_hitlist
from repro.probing.order import PseudorandomOrder
from repro.probing.prober import Prober, ProberConfig


class TestHitlist:
    def test_covers_all_blocks(self, tiny_internet):
        hitlist = build_hitlist(tiny_internet)
        assert hitlist.blocks == sorted(tiny_internet.blocks)

    def test_addresses_inside_blocks(self, tiny_internet):
        for entry in build_hitlist(tiny_internet):
            assert entry.address >> 8 == entry.block
            assert 1 <= entry.address & 0xFF <= 254

    def test_entry_for(self, tiny_internet):
        hitlist = build_hitlist(tiny_internet)
        block = hitlist.blocks[3]
        assert hitlist.entry_for(block).block == block
        assert hitlist.entry_for(0xFFFFFF) is None

    def test_scores_track_responsiveness(self, tiny_internet):
        hitlist = build_hitlist(tiny_internet)
        model = tiny_internet.host_model
        for entry in hitlist:
            country = tiny_internet.country_of_block(entry.block)
            if model.is_stable_responder(entry.block, country):
                assert entry.score >= 0.55
            else:
                assert entry.score < 0.55

    def test_subset(self, tiny_internet):
        subset = list(tiny_internet.blocks)[:10]
        hitlist = build_hitlist(tiny_internet, subset)
        assert len(hitlist) == 10

    def test_unknown_block_rejected(self, tiny_internet):
        with pytest.raises(DatasetError):
            build_hitlist(tiny_internet, [0xFFFFFF])

    def test_duplicate_blocks_rejected(self):
        entries = [HitlistEntry(1, 256 + 1, 0.5), HitlistEntry(1, 256 + 2, 0.5)]
        with pytest.raises(DatasetError):
            Hitlist(entries)

    def test_top_scoring(self, tiny_internet):
        hitlist = build_hitlist(tiny_internet)
        top = hitlist.top_scoring(5)
        assert len(top) == 5
        assert all(
            top[i].score >= top[i + 1].score for i in range(len(top) - 1)
        )

    def test_deterministic(self, tiny_internet):
        first = [(e.block, e.address) for e in build_hitlist(tiny_internet)]
        second = [(e.block, e.address) for e in build_hitlist(tiny_internet)]
        assert first == second


class TestPseudorandomOrder:
    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=0, max_value=(1 << 63)),
    )
    def test_is_permutation(self, n, seed):
        order = PseudorandomOrder(n, seed)
        values = list(order)
        assert sorted(values) == list(range(n))

    def test_deterministic(self):
        assert list(PseudorandomOrder(100, 7)) == list(PseudorandomOrder(100, 7))

    def test_seed_changes_order(self):
        assert list(PseudorandomOrder(100, 7)) != list(PseudorandomOrder(100, 8))

    def test_not_identity(self):
        assert list(PseudorandomOrder(1000, 7)) != list(range(1000))

    def test_index_bounds_checked(self):
        order = PseudorandomOrder(10, 1)
        with pytest.raises(ConfigurationError):
            order.index(10)
        with pytest.raises(ConfigurationError):
            order.index(-1)

    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            PseudorandomOrder(0, 1)

    def test_scatters_consecutive_probes(self):
        order = PseudorandomOrder(4096, 3)
        sequence = [order.index(i) for i in range(64)]
        jumps = [abs(b - a) for a, b in zip(sequence, sequence[1:])]
        assert sum(jumps) / len(jumps) > 100, "consecutive probes too close"


class TestProber:
    def test_rate_spacing(self, tiny_internet):
        hitlist = build_hitlist(tiny_internet)
        prober = Prober(hitlist, ProberConfig(source_address=1, rate_pps=100.0), seed=1)
        schedule = prober.schedule_round(0)
        probes = list(schedule)
        assert probes[1].send_time - probes[0].send_time == pytest.approx(0.01)
        assert schedule.duration_seconds == pytest.approx(len(hitlist) / 100.0)

    def test_identifier_tracks_round(self, tiny_internet):
        hitlist = build_hitlist(tiny_internet)
        prober = Prober(hitlist, ProberConfig(source_address=1), seed=1)
        assert prober.schedule_round(5).identifier == 5
        assert prober.schedule_round(0x1_0005).identifier == 5  # wraps to 16 bits

    def test_each_block_probed_once(self, tiny_internet):
        hitlist = build_hitlist(tiny_internet)
        prober = Prober(hitlist, ProberConfig(source_address=1), seed=1)
        destinations = [probe.destination for probe in prober.schedule_round(0)]
        assert len(destinations) == len(set(destinations)) == len(hitlist)

    def test_rounds_have_different_orders(self, tiny_internet):
        hitlist = build_hitlist(tiny_internet)
        prober = Prober(hitlist, ProberConfig(source_address=1), seed=1)
        first = [probe.destination for probe in prober.schedule_round(0)]
        second = [probe.destination for probe in prober.schedule_round(1)]
        assert first != second
        assert sorted(first) == sorted(second)

    def test_pseudorandom_order_spreads_bursts(self, tiny_internet):
        hitlist = build_hitlist(tiny_internet)
        prober = Prober(
            hitlist, ProberConfig(source_address=1, rate_pps=500.0), seed=1
        )
        _, shuffled_worst = prober.schedule_round(0).max_burst_per_prefix(
            prefix_bits=16
        )
        # Sequential-order baseline: probes sorted by address, same rate.
        sequential_worst = 0
        per_second_prefix: dict = {}
        for position, entry in enumerate(hitlist):
            key = (int(position / 500.0), entry.address >> 16)
            per_second_prefix[key] = per_second_prefix.get(key, 0) + 1
            sequential_worst = max(sequential_worst, per_second_prefix[key])
        assert shuffled_worst < sequential_worst

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ProberConfig(source_address=1, rate_pps=0)
        with pytest.raises(ConfigurationError):
            ProberConfig(source_address=-1)

    def test_empty_hitlist_rejected(self, tiny_internet):
        empty = Hitlist([])
        prober = Prober(empty, ProberConfig(source_address=1), seed=1)
        with pytest.raises(MeasurementError):
            prober.schedule_round(0)
