"""Tests for the RIPE Atlas simulation."""

from __future__ import annotations

import pytest

from repro.atlas.platform import AtlasPlatform
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def platform(tiny_internet):
    return AtlasPlatform(tiny_internet, vp_count=120)


class TestDeployment:
    def test_vp_count(self, platform):
        assert len(platform.vps) == 120

    def test_vps_in_topology_blocks(self, tiny_internet, platform):
        for vp in platform.vps:
            assert tiny_internet.has_block(vp.block)

    def test_vps_have_geolocation(self, tiny_internet, platform):
        for vp in platform.vps:
            assert tiny_internet.geodb.country_of(vp.block) == vp.country_code

    def test_europe_skew(self, tiny_internet):
        platform = AtlasPlatform(tiny_internet, vp_count=300)
        from repro.geo.regions import country_by_code

        europe = sum(
            1 for vp in platform.vps
            if country_by_code(vp.country_code).region == "EU"
        )
        # Europe holds well under half the Internet's users but most
        # Atlas probes (the paper's documented deployment skew).
        assert europe / len(platform.vps) > 0.5

    def test_deterministic(self, tiny_internet):
        first = AtlasPlatform(tiny_internet, vp_count=50)
        second = AtlasPlatform(tiny_internet, vp_count=50)
        assert [vp.block for vp in first.vps] == [vp.block for vp in second.vps]

    def test_rejects_zero_vps(self, tiny_internet):
        with pytest.raises(ConfigurationError):
            AtlasPlatform(tiny_internet, vp_count=0)

    def test_rejects_bad_downtime(self, tiny_internet):
        with pytest.raises(ConfigurationError):
            AtlasPlatform(tiny_internet, vp_count=5, unavailable_fraction=1.0)


class TestMeasurement:
    def test_sites_match_routing(self, tiny_internet, platform, two_site_routing):
        # Build a service around the same upstreams as the routing fixture.
        from repro.anycast.service import AnycastService
        from repro.anycast.site import AnycastSite
        from repro.netaddr.prefix import Prefix

        service = AnycastService(
            "svc.example",
            Prefix("192.0.2.0/24"),
            [
                AnycastSite("A", "A", "US", 0, 0,
                            tiny_internet.find_asn_by_name("UP-A")),
                AnycastSite("B", "B", "DE", 0, 0,
                            tiny_internet.find_asn_by_name("UP-B")),
            ],
        )
        measurement = platform.measure(two_site_routing, service, measurement_id=3)
        assert measurement.considered_vps == 120
        assert 0 < measurement.responding_vps <= 120
        for result in measurement.responding:
            assert result.site_code == two_site_routing.site_of_block(
                result.vp.block, 3
            )
            assert result.hostname.startswith(result.site_code.lower())
        # Some VPs should be down (4.6% default).
        assert measurement.responding_vps < measurement.considered_vps

        fractions = measurement.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

        blocks = measurement.responding_blocks()
        assert blocks <= measurement.considered_blocks()
        catchments = measurement.block_catchments()
        assert set(catchments) == blocks
