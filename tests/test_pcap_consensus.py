"""Tests for binary pcap capture and multi-scan consensus."""

from __future__ import annotations

import io
import struct

import pytest

from repro.analysis.consensus import agreement_scores, coverage_gain, merge_scans
from repro.collector.pcap import PcapCapture, PcapReader, PcapWriter
from repro.errors import DatasetError, MeasurementError
from repro.icmp.network import DeliveredReply
from repro.icmp.packets import build_probe


class TestPcapFormat:
    def test_roundtrip(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        packet = build_probe(0x0A000001, 0xC0000201, 7, 9)
        writer.write_packet(packet, 1234.567891)
        stream.seek(0)
        records = list(PcapReader(stream))
        assert len(records) == 1
        timestamp, restored = records[0]
        assert restored == packet
        assert timestamp == pytest.approx(1234.567891, abs=1e-6)

    def test_global_header_fields(self):
        stream = io.BytesIO()
        PcapWriter(stream)
        header = stream.getvalue()
        magic, major, minor, _, _, snaplen, network = struct.unpack(
            "<IHHiIII", header
        )
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)
        assert snaplen == 65_535
        assert network == 101  # LINKTYPE_RAW

    def test_rejects_bad_magic(self):
        with pytest.raises(DatasetError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_rejects_truncated_header(self):
        with pytest.raises(DatasetError):
            PcapReader(io.BytesIO(b"\x00" * 5))

    def test_rejects_truncated_record(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        writer.write_packet(b"\x45" + b"\x00" * 30, 1.0)
        data = stream.getvalue()[:-4]  # chop the packet tail
        reader = PcapReader(io.BytesIO(data))
        with pytest.raises(DatasetError):
            list(reader)

    def test_microsecond_carry(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        writer.write_packet(b"xx", 1.9999999)  # rounds to 2.000000
        stream.seek(0)
        (timestamp, _), = list(PcapReader(stream))
        assert timestamp == pytest.approx(2.0, abs=1e-6)


class TestPcapCapture:
    def test_reply_roundtrip(self):
        capture = PcapCapture("LAX", io.BytesIO(), measurement_address=0xC7090E01)
        original = DeliveredReply("LAX", 0x0A000001, 5, 42, 12.25)
        capture.record(original)
        (restored,) = capture.drain()
        assert restored.source_address == original.source_address
        assert restored.identifier == original.identifier
        assert restored.sequence == original.sequence
        assert restored.timestamp == pytest.approx(original.timestamp, abs=1e-6)
        assert restored.site_code == "LAX"

    def test_wrong_site_rejected(self):
        capture = PcapCapture("LAX", io.BytesIO(), measurement_address=1)
        with pytest.raises(MeasurementError):
            capture.record(DeliveredReply("MIA", 1, 1, 1, 1.0))

    def test_drain_resets(self):
        capture = PcapCapture("LAX", io.BytesIO(), measurement_address=1)
        capture.record(DeliveredReply("LAX", 2, 1, 1, 1.0))
        assert len(capture.drain()) == 1
        assert capture.drain() == []
        capture.record(DeliveredReply("LAX", 3, 1, 1, 2.0))
        assert len(capture.drain()) == 1

    def test_full_scan_through_pcap(self, broot_tiny, broot_routing):
        """A scan whose every reply crossed the binary pcap format."""
        from repro.collector.aggregate import CentralCollector
        from repro.icmp.network import SimulatedDataplane

        dataplane = SimulatedDataplane(broot_routing)
        address = broot_tiny.service.measurement_address
        collector = CentralCollector([
            PcapCapture(site.code, io.BytesIO(), address)
            for site in broot_tiny.service.sites
        ])
        delivered_count = 0
        for block in list(broot_tiny.internet.blocks)[:300]:
            for reply in dataplane.send_probe_fast((block << 8) | 1, 1, 0, 0.0, 0):
                collector.ingest(reply)
                delivered_count += 1
        collected = collector.collect()
        assert len(collected) == delivered_count


def _scan_like(round_id, mapping):
    from repro.anycast.catchment import CatchmentMap
    from repro.core.verfploeter import ScanResult, ScanStats

    return ScanResult(
        dataset_id=f"s{round_id}",
        round_id=round_id,
        start_time=0.0,
        duration_seconds=1.0,
        catchment=CatchmentMap(["A", "B"], mapping),
        stats=ScanStats(0, 0, 0, 0, 0, 0, len(mapping)),
        rtts={},
    )


class TestConsensus:
    def test_merge_majority(self):
        scans = [
            _scan_like(0, {1: "A", 2: "A"}),
            _scan_like(1, {1: "A", 2: "B"}),
            _scan_like(2, {1: "B", 2: "B"}),
        ]
        merged = merge_scans(scans)
        assert merged.site_of(1) == "A"  # 2 votes A vs 1 B
        assert merged.site_of(2) == "B"

    def test_merge_tie_prefers_latest(self):
        scans = [_scan_like(0, {1: "A"}), _scan_like(1, {1: "B"})]
        assert merge_scans(scans).site_of(1) == "B"

    def test_merge_raises_on_empty(self):
        with pytest.raises(DatasetError):
            merge_scans([])

    def test_merge_covers_union(self, broot_verfploeter, broot_routing):
        first = broot_verfploeter.run_scan(
            routing=broot_routing, round_id=20, wire_level=False
        )
        second = broot_verfploeter.run_scan(
            routing=broot_routing, round_id=21, wire_level=False
        )
        merged = merge_scans([first, second])
        union = set(first.catchment.blocks()) | set(second.catchment.blocks())
        assert set(merged.blocks()) == union
        assert len(merged) >= max(len(first.catchment), len(second.catchment))

    def test_agreement_scores(self):
        scans = [
            _scan_like(0, {1: "A", 2: "A"}),
            _scan_like(1, {1: "A", 2: "B"}),
        ]
        scores = agreement_scores(scans)
        assert scores[1] == 1.0
        assert scores[2] == 0.5

    def test_coverage_gain_monotone(self, broot_verfploeter, broot_routing):
        scans = [
            broot_verfploeter.run_scan(
                routing=broot_routing, round_id=30 + i, wire_level=False
            )
            for i in range(3)
        ]
        series = coverage_gain(scans)
        counts = [count for _, count in series]
        assert counts == sorted(counts)
        # Marginal gain shrinks: the second round adds less than the
        # first round found.
        assert counts[1] - counts[0] < counts[0]
