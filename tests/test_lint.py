"""reprolint: fixture corpus, suppressions, JSON output, and the real tree."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.lint import all_rules, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.engine import classify_kind, infer_package
from repro.lint.layers import LAYERS, layer_of
from repro.lint.violations import register_rule

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")

#: fixture file -> (rule id, marker substring, expected count for that rule)
FIXTURE_EXPECTATIONS = [
    ("d101_global_random.py", "D101", "# MARK", 1),
    ("d102_unseeded_random.py", "D102", "# MARK", 1),
    ("d103_numpy_random.py", "D103", "# MARK", 1),
    ("d104_wall_clock.py", "D104", "# MARK", 1),
    ("d105_os_entropy.py", "D105", "# MARK", 1),
    ("d106_builtin_hash.py", "D106", "# MARK", 1),
    ("d107_set_order.py", "D107", "# MARK", 1),
    ("d108_set_pop.py", "D108", "# MARK", 1),
    ("d109_instance_default.py", "D109", "# MARK", 2),  # call + literal
    ("d110_hot_loop_accumulation.py", "D110", "# MARK", 2),  # dict + set; disabled line exempt
    ("d111_missing_docstring.py", "D111", "# MARK", 3),  # function + class + method
    ("d112_pool_hygiene.py", "D112", "# MARK", 3),  # two imports + nested-def target
    ("s201_duplicate_label.py", "S201", "# MARK", 2),  # both sites flagged
    ("s202_colliding_label.py", "S202", "# MARK", 1),
    ("e301_foreign_raise.py", "E301", "# MARK", 1),
    ("e302_broad_except.py", "E302", "# MARK", 1),
    (
        os.path.join("layering", "repro", "geo", "l401_upward_import.py"),
        "L401",
        "# MARK",
        1,
    ),
    (
        os.path.join("layering", "repro", "mystery", "l402_undeclared.py"),
        "L402",
        None,  # reported at line 1 (the package itself is undeclared)
        1,
    ),
]


#: Whole-program fixture trees: (case dir, rule id, file carrying the
#: marker (positive cases) or None (suppressed/clean), expected count).
W_FIXTURE_EXPECTATIONS = [
    ("w501_collision", "W501", os.path.join("repro", "beta.py"), 1),
    ("w501_collision_suppressed", "W501", None, 0),
    ("w501_collision_clean", "W501", None, 0),
    ("w501_entropy", "W501", os.path.join("repro", "sched.py"), 1),
    ("w501_entropy_suppressed", "W501", None, 0),
    ("w501_entropy_clean", "W501", None, 0),
    ("w502_escape", "W502", os.path.join("repro", "pool.py"), 1),
    ("w502_escape_suppressed", "W502", None, 0),
    ("w502_escape_clean", "W502", None, 0),
    ("w503_accum", "W503", os.path.join("repro", "pool.py"), 1),
    ("w503_accum_suppressed", "W503", None, 0),
    ("w503_accum_clean", "W503", None, 0),
]


def _marker_line(path: str, marker: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            if marker in line:
                return line_number
    raise AssertionError(f"no {marker!r} marker in {path}")


@pytest.mark.parametrize(
    "fixture,rule_id,marker,count",
    FIXTURE_EXPECTATIONS,
    ids=[rule for _, rule, _, _ in FIXTURE_EXPECTATIONS],
)
def test_fixture_triggers_rule_at_marked_line(fixture, rule_id, marker, count):
    path = os.path.join(FIXTURES, fixture)
    result = lint_paths([path], force_kind="library", rule_ids=[rule_id])
    assert len(result.violations) == count, result.to_text()
    expected_line = 1 if marker is None else _marker_line(path, marker)
    violation = result.violations[0]
    assert violation.rule == rule_id
    assert violation.path == path
    assert violation.line == expected_line


@pytest.mark.parametrize(
    "fixture,rule_id",
    [(fixture, rule) for fixture, rule, _, _ in FIXTURE_EXPECTATIONS],
    ids=[rule for _, rule, _, _ in FIXTURE_EXPECTATIONS],
)
def test_fixture_flagged_under_full_rule_set(fixture, rule_id):
    path = os.path.join(FIXTURES, fixture)
    result = lint_paths([path], force_kind="library")
    assert rule_id in {violation.rule for violation in result.violations}


@pytest.mark.parametrize(
    "case,rule_id,marked_file,count",
    W_FIXTURE_EXPECTATIONS,
    ids=[case for case, _, _, _ in W_FIXTURE_EXPECTATIONS],
)
def test_interproc_fixture_tree(case, rule_id, marked_file, count):
    """Each W-rule fixture tree flags exactly its marked line (or nothing).

    These hazards span two files (or a call chain within one), so the
    whole *directory* is linted — no single-file pass can reproduce
    them.
    """
    tree = os.path.join(FIXTURES, "interproc", case)
    result = lint_paths([tree], force_kind="library", rule_ids=[rule_id])
    assert len(result.violations) == count, result.to_text()
    if count:
        marked_path = os.path.join(tree, marked_file)
        violation = result.violations[0]
        assert violation.rule == rule_id
        assert violation.path == marked_path
        assert violation.line == _marker_line(marked_path, "# MARK")


@pytest.mark.parametrize(
    "case,rule_id",
    [(case, rule) for case, rule, marked, _ in W_FIXTURE_EXPECTATIONS if marked],
    ids=[case for case, _, marked, _ in W_FIXTURE_EXPECTATIONS if marked],
)
def test_interproc_fixture_flagged_under_full_rule_set(case, rule_id):
    tree = os.path.join(FIXTURES, "interproc", case)
    result = lint_paths([tree], force_kind="library")
    assert rule_id in {violation.rule for violation in result.violations}


def test_parse_error_reported_as_p001():
    path = os.path.join(FIXTURES, "p001_parse_error.py.txt")
    result = lint_paths([path], force_kind="library")
    assert [violation.rule for violation in result.violations] == ["P001"]
    assert result.violations[0].path == path


def test_clean_fixture_has_zero_findings():
    """Sanctioned patterns pass, including the in-file D101 suppression."""
    path = os.path.join(FIXTURES, "clean.py")
    result = lint_paths([path], force_kind="library")
    assert result.ok, result.to_text()


def test_suppression_is_line_and_rule_scoped():
    path = os.path.join(FIXTURES, "clean.py")
    # The suppressed D101 call resurfaces if we ask for a rule the
    # comment does not name ... (no other rule fires there, so check
    # the opposite: removing the only suppressed rule finds nothing).
    result = lint_paths([path], force_kind="library", rule_ids=["D101"])
    assert result.ok
    # ... and the same code in a fixture without the comment is caught.
    bad = os.path.join(FIXTURES, "d101_global_random.py")
    assert not lint_paths([bad], force_kind="library", rule_ids=["D101"]).ok


def test_d110_requires_hot_path_tag(tmp_path):
    """The same accumulation loop in an untagged file passes D110."""
    tagged = os.path.join(FIXTURES, "d110_hot_loop_accumulation.py")
    with open(tagged, "r", encoding="utf-8") as handle:
        text = handle.read()
    untagged = tmp_path / "cold_module.py"
    untagged.write_text(text.replace("# reprolint: hot-path", ""), encoding="utf-8")
    result = lint_paths([str(untagged)], force_kind="library", rule_ids=["D110"])
    assert result.ok, result.to_text()


def test_fixture_corpus_is_skipped_when_walking_tests():
    """Directory walks prune lint_fixtures; only explicit paths lint them."""
    result = lint_paths([os.path.dirname(__file__)])
    fixture_paths = [
        violation.path
        for violation in result.violations
        if "lint_fixtures" in violation.path
    ]
    assert fixture_paths == []


def test_real_tree_is_clean():
    """The acceptance gate: zero findings over the entire repository."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = [
        os.path.join(root, name)
        for name in ("src", "tests", "benchmarks", "examples", "tools")
    ]
    result = lint_paths([path for path in paths if os.path.isdir(path)])
    assert result.ok, result.to_text()


def test_json_output_is_stable_and_parseable():
    path = os.path.join(FIXTURES, "d104_wall_clock.py")
    first = lint_paths([path], force_kind="library")
    second = lint_paths([path], force_kind="library")
    assert first.to_json() == second.to_json()
    payload = json.loads(first.to_json())
    assert payload["version"] == 1
    assert payload["violation_count"] == len(payload["violations"])
    entry = payload["violations"][0]
    assert list(entry) == ["rule", "name", "path", "line", "col", "message"]
    assert entry["rule"] == "D104"


def test_cli_exit_codes(capsys):
    bad = os.path.join(FIXTURES, "d101_global_random.py")
    assert lint_main([bad, "--kind=library", "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"][0]["rule"] == "D101"
    clean = os.path.join(FIXTURES, "clean.py")
    assert lint_main([clean, "--kind=library"]) == 0
    assert lint_main(["--list-rules"]) == 0


def test_kind_classification_and_package_inference():
    assert classify_kind(os.path.join("tests", "test_x.py")) == "tests"
    assert classify_kind(os.path.join("benchmarks", "bench.py")) == "benchmarks"
    assert classify_kind(os.path.join("src", "repro", "rng.py")) == "library"
    assert infer_package(os.path.join("src", "repro", "bgp", "updates.py")) == "bgp"
    assert infer_package(os.path.join("src", "repro", "rng.py")) == "rng"
    assert infer_package(os.path.join("tests", "test_x.py")) is None


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError):
        lint_paths(["src"], force_kind="nonsense")


def test_nonexistent_path_rejected(capsys):
    missing = os.path.join(FIXTURES, "no_such_file.py")
    with pytest.raises(ConfigurationError, match="no such file"):
        lint_paths([missing])
    with pytest.raises(SystemExit) as excinfo:
        lint_main([missing])
    assert excinfo.value.code == 2
    assert "no such file" in capsys.readouterr().err


def test_unknown_rule_id_rejected(capsys):
    clean = os.path.join(FIXTURES, "clean.py")
    with pytest.raises(ConfigurationError, match="Z999"):
        lint_paths([clean], rule_ids=["Z999"])
    with pytest.raises(SystemExit) as excinfo:
        lint_main([clean, "--rule=Z999"])
    assert excinfo.value.code == 2
    assert "Z999" in capsys.readouterr().err


def test_every_repro_package_is_declared_in_some_layer():
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
        "repro",
    )
    for entry in sorted(os.listdir(src)):
        package = entry[:-3] if entry.endswith(".py") else entry
        if package.startswith((".", "__pycache__")):
            continue
        if entry.endswith(".py") and package in ("__init__", "__main__"):
            assert layer_of(package) is not None
            continue
        assert layer_of(package) is not None, f"{package} missing from LAYERS"


def test_layer_dag_is_well_formed():
    seen = set()
    for members in LAYERS:
        for member in members:
            assert member not in seen, f"{member} declared twice"
            seen.add(member)


def test_rule_registry_rejects_duplicates_and_bad_rules():
    rules = all_rules()
    assert len({rule.rule_id for rule in rules}) == len(rules)
    existing = rules[0].rule_id

    with pytest.raises(ConfigurationError):

        @register_rule
        class Duplicate:
            rule_id = existing
            name = "duplicate"
            description = "clashes with a built-in"
            scope = "file"
            kinds = ("library",)

            def check(self, files):
                return []

    with pytest.raises(ConfigurationError):

        @register_rule
        class Incomplete:
            rule_id = "X999"

    # A well-formed plugin registers (and is immediately visible).
    @register_rule
    class PluginProbe:
        rule_id = "X901"
        name = "plugin-probe"
        description = "registration smoke test"
        scope = "file"
        kinds = ("library",)

        def check(self, files):
            return []

    assert "X901" in {rule.rule_id for rule in all_rules()}
